"""The run ledger: durable run identity and live run introspection.

Every engine run — a CLI ``refute``/``trace``/``stats`` pipeline, a
serve job, a ``repro sim`` run, a fuzz campaign, a benchmark row — mints
a **run id** at start and appends :class:`RunRecord` lines to a JSONL
ledger (``<dir>/ledger.jsonl``): one ``status="running"`` record when
the run opens, one terminal record when it finishes.  The latest record
per run id wins, so the ledger is append-only and crash-safe — a run
that dies mid-flight simply never writes its terminal record, and the
reader derives ``status="interrupted"`` from the stale heartbeat.

The **heartbeat** is a small JSON file
(``<dir>/heartbeats/<run_id>.json``) rewritten atomically on the
engine's flush/progress cadence with the live counters an external
process needs to watch a run: states, states/sec, frontier size, phase
breakdown, last store-flush latency, spilled digests.  ``repro runs
tail`` follows it from another process; ``repro runs show`` reads it to
decide whether a "running" record is live, interrupted, or hung.

Run ids thread end-to-end from here: the CLI installs them on the
:class:`~repro.obs.sinks.Tracer` (every :class:`~repro.obs.events
.TraceEvent` carries ``run``), the engine writes them into checkpoint
and segment metadata, the serve layer links ``job_id <-> run_id``, and
the Prometheus exporter renders them as a ``run`` label.

Nothing here ever sits on a hot loop: records are two writes per run,
and :meth:`RunHandle.heartbeat` self-throttles to its interval, so the
cost of a heartbeat call site is one monotonic-clock comparison.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable naming the default ledger directory.
REPRO_RUNS_DIR = "REPRO_RUNS_DIR"

#: Ledger directory used when neither a flag nor the environment names one.
DEFAULT_RUNS_DIR = ".repro/runs"

#: Values that disable the ledger when given as a directory.
_DISABLED = frozenset({"", "0", "none", "off"})

#: The one non-terminal recorded status.
RUNNING = "running"

#: Derived (never recorded) status of a run whose process died mid-flight.
INTERRUPTED = "interrupted"

#: Seconds between heartbeat rewrites unless the opener chooses otherwise.
DEFAULT_HEARTBEAT_INTERVAL = 1.0


def new_run_id(kind: str) -> str:
    """A sortable, filesystem-safe run id: ``<kind>-<utc stamp>-<token>``."""
    stamp = time.strftime("%Y%m%d%H%M%S", time.gmtime())
    safe_kind = "".join(ch if ch.isalnum() else "-" for ch in kind) or "run"
    return f"{safe_kind}-{stamp}-{secrets.token_hex(3)}"


def resolve_runs_dir(value=None, environ=None) -> Path | None:
    """The ledger directory from a flag value or the environment.

    Precedence: explicit ``value`` (a CLI flag), then ``$REPRO_RUNS_DIR``,
    then :data:`DEFAULT_RUNS_DIR`.  Any of the :data:`_DISABLED` spellings
    (``none``, ``off``, ``0``, empty) at either level disables the ledger
    and returns ``None``.
    """
    if value is None:
        value = (environ if environ is not None else os.environ).get(
            REPRO_RUNS_DIR, DEFAULT_RUNS_DIR
        )
    if str(value).strip().lower() in _DISABLED:
        return None
    return Path(value)


def _pid_alive(pid) -> bool:
    if not pid:
        return False
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError, TypeError):
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


@dataclass
class RunRecord:
    """One ledger line: the durable identity and outcome of a run.

    ``status`` is whatever the writer recorded — :data:`RUNNING` at open,
    a terminal word (``completed``, ``exhausted``, ``failed``,
    ``violation``, ...) at finish.  Readers derive the effective status
    (including :data:`INTERRUPTED`) via :meth:`RunLedger.status_of`.
    ``artifacts`` holds paths (trace file, checkpoint dir, store URI,
    resume command); ``links`` holds cross-system identity (``job_id``,
    campaign descriptions); ``counters``/``phases`` are the final metric
    counters and phase-seconds breakdown a terminal record carries.
    """

    run_id: str
    kind: str
    instance: str = ""
    status: str = RUNNING
    started_at: float = 0.0
    finished_at: float | None = None
    pid: int = 0
    workers: int = 1
    budget: dict | None = None
    store: str | None = None
    verdict: dict | None = None
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    peak_rss_kb: int = 0
    artifacts: dict = field(default_factory=dict)
    links: dict = field(default_factory=dict)
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    error: str | None = None

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "instance": self.instance,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "pid": self.pid,
            "workers": self.workers,
            "budget": self.budget,
            "store": self.store,
            "verdict": self.verdict,
            "phases": self.phases,
            "counters": self.counters,
            "peak_rss_kb": self.peak_rss_kb,
            "artifacts": self.artifacts,
            "links": self.links,
            "heartbeat_interval": self.heartbeat_interval,
            "error": self.error,
        }

    @staticmethod
    def from_json(document: dict) -> "RunRecord":
        return RunRecord(
            run_id=document["run_id"],
            kind=document.get("kind", "run"),
            instance=document.get("instance", ""),
            status=document.get("status", RUNNING),
            started_at=document.get("started_at", 0.0),
            finished_at=document.get("finished_at"),
            pid=document.get("pid", 0),
            workers=document.get("workers", 1),
            budget=document.get("budget"),
            store=document.get("store"),
            verdict=document.get("verdict"),
            phases=document.get("phases") or {},
            counters=document.get("counters") or {},
            peak_rss_kb=document.get("peak_rss_kb", 0),
            artifacts=document.get("artifacts") or {},
            links=document.get("links") or {},
            heartbeat_interval=document.get(
                "heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL
            ),
            error=document.get("error"),
        )


class RunLedger:
    """One ledger directory: the JSONL record stream plus heartbeats."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "ledger.jsonl"
        self.heartbeat_dir = self.directory / "heartbeats"

    # -- writing ---------------------------------------------------------------

    def append(self, record: RunRecord) -> None:
        """Append one record line (atomic at the line level: one write)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record.to_json(), sort_keys=True) + "\n")

    def open(
        self,
        kind: str,
        instance: str = "",
        *,
        budget: dict | None = None,
        store: str | None = None,
        workers: int = 1,
        artifacts: dict | None = None,
        links: dict | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        run_id: str | None = None,
    ) -> "RunHandle":
        """Mint a run id, append its ``running`` record, return the handle."""
        record = RunRecord(
            run_id=new_run_id(kind) if run_id is None else run_id,
            kind=kind,
            instance=instance,
            status=RUNNING,
            started_at=time.time(),
            pid=os.getpid(),
            workers=workers,
            budget=budget,
            store=store,
            artifacts=dict(artifacts or {}),
            links=dict(links or {}),
            heartbeat_interval=heartbeat_interval,
        )
        self.append(record)
        return RunHandle(self, record)

    def record(
        self,
        kind: str,
        instance: str = "",
        *,
        status: str = "completed",
        counters: dict | None = None,
        phases: dict | None = None,
        verdict: dict | None = None,
        artifacts: dict | None = None,
        links: dict | None = None,
    ) -> RunRecord:
        """Append one already-finished run (benchmark rows, one-shot runs)."""
        now = time.time()
        record = RunRecord(
            run_id=new_run_id(kind),
            kind=kind,
            instance=instance,
            status=status,
            started_at=now,
            finished_at=now,
            pid=os.getpid(),
            counters=dict(counters or {}),
            phases=dict(phases or {}),
            verdict=verdict,
            artifacts=dict(artifacts or {}),
            links=dict(links or {}),
        )
        self.append(record)
        return record

    # -- heartbeats ------------------------------------------------------------

    def heartbeat_path(self, run_id: str) -> Path:
        return self.heartbeat_dir / f"{run_id}.json"

    def write_heartbeat(self, run_id: str, document: dict) -> None:
        """Atomic rewrite (temp + ``os.replace``): readers never see a torn file."""
        self.heartbeat_dir.mkdir(parents=True, exist_ok=True)
        path = self.heartbeat_path(run_id)
        temporary = path.with_suffix(f".tmp{os.getpid()}")
        with open(temporary, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(document, sort_keys=True))
        os.replace(temporary, path)

    def read_heartbeat(self, run_id: str) -> dict | None:
        try:
            text = self.heartbeat_path(run_id).read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:  # pragma: no cover - torn pre-rename read
            return None
        return document if isinstance(document, dict) else None

    # -- reading ---------------------------------------------------------------

    def records(self) -> list[RunRecord]:
        """Every readable ledger line, in append order (torn tails skipped)."""
        try:
            stream = open(self.path, "r", encoding="utf-8")
        except (FileNotFoundError, OSError):
            return []
        out = []
        with stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_json(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # a torn tail from a crash is expected
        return out

    def latest(self) -> dict[str, RunRecord]:
        """Latest record per run id, in first-seen order."""
        table: dict[str, RunRecord] = {}
        for record in self.records():
            table[record.run_id] = record
        return table

    def find(self, run_id: str) -> RunRecord:
        """The latest record matching ``run_id`` exactly or by unique prefix."""
        table = self.latest()
        record = table.get(run_id)
        if record is not None:
            return record
        matches = [r for rid, r in table.items() if rid.startswith(run_id)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        raise KeyError(
            f"run id prefix {run_id!r} is ambiguous: "
            + ", ".join(sorted(r.run_id for r in matches))
        )

    def heartbeat_stale(
        self, record: RunRecord, heartbeat: dict | None, now: float | None = None
    ) -> bool:
        """Whether the run's heartbeat has missed its refresh window."""
        now = time.time() if now is None else now
        interval = (heartbeat or {}).get("interval", record.heartbeat_interval)
        last = (heartbeat or {}).get("t", record.started_at)
        return (now - last) > max(3.0 * float(interval or 1.0), 5.0)

    def status_of(
        self,
        record: RunRecord,
        heartbeat: dict | None = None,
        *,
        now: float | None = None,
    ) -> str:
        """The effective status: recorded when terminal, else derived.

        A ``running`` record stays ``running`` only while its process is
        alive *and* its heartbeat (when one exists) is fresh; a dead pid
        or a stale heartbeat derives :data:`INTERRUPTED`.  The pid check
        makes a SIGKILLed run show as interrupted immediately, without
        waiting out the staleness window.
        """
        if record.status != RUNNING:
            return record.status
        if heartbeat is None:
            heartbeat = self.read_heartbeat(record.run_id)
        pid = (heartbeat or {}).get("pid", record.pid)
        if not _pid_alive(pid):
            return INTERRUPTED
        if heartbeat is not None and self.heartbeat_stale(record, heartbeat, now):
            return INTERRUPTED
        return RUNNING

    # -- maintenance -----------------------------------------------------------

    def gc(self, keep: int | None = None) -> dict:
        """Compact the ledger: latest record per run, newest ``keep`` runs.

        Derived-interrupted runs are finalized (their kept record gets
        ``status="interrupted"`` written down), terminal runs lose their
        heartbeat files, and older-than-``keep`` terminal runs drop out of
        the ledger entirely.  Returns a summary dict.
        """
        table = self.latest()
        finalized = 0
        for record in table.values():
            if record.status == RUNNING:
                status = self.status_of(record)
                if status == INTERRUPTED:
                    record.status = INTERRUPTED
                    record.error = "process died without a terminal record"
                    finalized += 1
        ordered = sorted(table.values(), key=lambda r: r.started_at)
        dropped = 0
        if keep is not None and keep >= 0:
            terminal = [r for r in ordered if r.status != RUNNING]
            victims = {r.run_id for r in terminal[: max(0, len(terminal) - keep)]}
            dropped = len(victims)
            ordered = [r for r in ordered if r.run_id not in victims]
        if self.path.exists() or ordered:
            self.directory.mkdir(parents=True, exist_ok=True)
            temporary = self.path.with_suffix(f".tmp{os.getpid()}")
            with open(temporary, "w", encoding="utf-8") as stream:
                for record in ordered:
                    stream.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            os.replace(temporary, self.path)
        pruned_heartbeats = 0
        kept_ids = {r.run_id for r in ordered if r.status == RUNNING}
        if self.heartbeat_dir.is_dir():
            for path in self.heartbeat_dir.glob("*.json"):
                if path.stem not in kept_ids:
                    try:
                        path.unlink()
                        pruned_heartbeats += 1
                    except OSError:  # pragma: no cover - concurrent unlink
                        pass
        return {
            "runs": len(ordered),
            "dropped": dropped,
            "finalized_interrupted": finalized,
            "pruned_heartbeats": pruned_heartbeats,
        }


class RunHandle:
    """The writer side of one live run: throttled heartbeats + the finish.

    Thread-confined to whichever thread drives the run (the serve fleet
    hands one handle to one worker thread); the heartbeat throttle means
    call sites can fire it on every progress tick for the cost of one
    monotonic comparison.
    """

    __slots__ = ("ledger", "record", "run_id", "_last_beat", "_interval")

    def __init__(self, ledger: RunLedger, record: RunRecord) -> None:
        self.ledger = ledger
        self.record = record
        self.run_id = record.run_id
        self._interval = record.heartbeat_interval
        self._last_beat = -1e12  # first heartbeat always writes

    def add_artifact(self, name: str, value) -> None:
        self.record.artifacts[name] = str(value)

    def link(self, name: str, value) -> None:
        self.record.links[name] = value

    def heartbeat(self, *, force: bool = False, **fields) -> bool:
        """Rewrite the heartbeat file if the interval has passed.

        ``fields`` are whatever live counters the driver has (``states``,
        ``transitions``, ``frontier``, ``elapsed``, ``flush_ms``,
        ``spilled``, ``phases``, ...); ``states_per_sec`` is derived when
        ``states`` and ``elapsed`` are both present.  Returns True when a
        file was actually written.
        """
        now = time.monotonic()
        if not force and now - self._last_beat < self._interval:
            return False
        self._last_beat = now
        document = {
            "run": self.run_id,
            "t": time.time(),
            "pid": os.getpid(),
            "interval": self._interval,
        }
        for name, value in fields.items():
            if value is not None:
                document[name] = value
        states = document.get("states")
        elapsed = document.get("elapsed")
        if states is not None and elapsed:
            document["states_per_sec"] = round(states / elapsed, 1)
        try:
            self.ledger.write_heartbeat(self.run_id, document)
        except OSError:  # pragma: no cover - ledger dir vanished mid-run
            return False
        return True

    def finish(
        self,
        status: str,
        *,
        verdict: dict | None = None,
        phases: dict | None = None,
        counters: dict | None = None,
        peak_rss_kb: int = 0,
        error: str | None = None,
    ) -> RunRecord:
        """Append the terminal record (idempotent fields, one line)."""
        record = self.record
        record.status = status
        record.finished_at = time.time()
        if verdict is not None:
            record.verdict = verdict
        if phases:
            record.phases = dict(phases)
        if counters:
            record.counters = dict(counters)
        if peak_rss_kb:
            record.peak_rss_kb = peak_rss_kb
        if error is not None:
            record.error = error
        self.ledger.append(record)
        return record


def diff_runs(before: RunRecord, after: RunRecord) -> list[dict]:
    """Compare two terminal records' counters and phase breakdowns.

    One row per metric name present in either run: ``{"metric", "before",
    "after", "delta", "ratio"}``, counters first, then phases (prefixed
    ``phase.``), sorted by name within each group.  This is what ``repro
    runs diff`` renders for regression triage across the perf trajectory.
    """
    rows: list[dict] = []
    for prefix, table_a, table_b in (
        ("", before.counters, after.counters),
        ("phase.", before.phases, after.phases),
    ):
        for name in sorted(set(table_a) | set(table_b)):
            a = table_a.get(name)
            b = table_b.get(name)
            numeric = isinstance(a, (int, float)) and isinstance(b, (int, float))
            rows.append(
                {
                    "metric": prefix + str(name),
                    "before": a,
                    "after": b,
                    "delta": (b - a) if numeric else None,
                    "ratio": (b / a) if numeric and a else None,
                }
            )
    return rows
