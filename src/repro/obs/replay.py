"""Replay observed runs from JSONL traces (bit-for-bit).

Instrumented drivers (:func:`repro.ioa.scheduler.run`,
:func:`repro.analysis.refutation.run_silenced`) emit a uniform event
protocol per run:

* ``run_start`` / ``run_end`` bracket the run;
* one ``task_chosen`` event per scheduled step, carrying the chosen
  :class:`~repro.ioa.automaton.Task`, the :class:`~repro.ioa.actions.Action`
  it fired, and the step index;
* one ``action_fired`` event per externally supplied input action (e.g.
  the leading ``fail_i`` inputs of a Lemma 6/7 failing extension),
  carrying the action and the step index it was applied before.

This module inverts that protocol: from a trace it reconstructs the task
script as a :class:`~repro.ioa.scheduler.ScriptedScheduler`, the input
schedule, and a transition chooser that re-selects the *recorded* action
whenever a task has several enabled transitions (a round-robin silencing
run prefers dummy transitions, which are not first in the enabled list —
replaying tasks alone would diverge there).  :func:`replay_execution`
then re-drives the automaton to the identical execution, so any observed
run — including an adversary counterexample — is reproducible from its
trace plus its start state.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State, Task
from ..ioa.execution import Execution
from ..ioa.scheduler import ScriptedScheduler, run
from .events import (
    ACTION_FIRED,
    RUN_END,
    RUN_START,
    TASK_CHOSEN,
    TraceEvent,
)


def load_events(path) -> list[TraceEvent]:
    """Parse a JSONL trace file back into events, in sequence order."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(line))
    events.sort(key=lambda event: event.seq)
    return events


def split_runs(events: Iterable[TraceEvent]) -> list[list[TraceEvent]]:
    """Slice an event stream into per-run segments.

    Each segment starts at a ``run_start`` and ends at the matching
    ``run_end`` (inclusive).  Events outside any run bracket — pipeline
    phases, exploration progress — are not part of any segment.  Nested
    runs do not occur: every instrumented driver brackets exactly its
    own loop.
    """
    runs: list[list[TraceEvent]] = []
    current: list[TraceEvent] | None = None
    for event in events:
        if event.kind == RUN_START:
            current = [event]
        elif current is not None:
            current.append(event)
            if event.kind == RUN_END:
                runs.append(current)
                current = None
    if current is not None:
        runs.append(current)  # truncated trace: keep the partial run
    return runs


def task_sequence(events: Iterable[TraceEvent]) -> list[Task]:
    """The scheduled task sequence recorded in ``events``."""
    return [
        event.data["task"] for event in events if event.kind == TASK_CHOSEN
    ]


def action_sequence(events: Iterable[TraceEvent]) -> list[Action]:
    """The action fired by each scheduled step, in step order."""
    return [
        event.data["action"] for event in events if event.kind == TASK_CHOSEN
    ]


def input_schedule(events: Iterable[TraceEvent]) -> list[tuple[int, Action]]:
    """The externally supplied inputs as ``(step_index, action)`` pairs."""
    return [
        (event.data["step"], event.data["action"])
        for event in events
        if event.kind == ACTION_FIRED
    ]


def scheduler_from_events(
    events: Iterable[TraceEvent], strict: bool = True
) -> ScriptedScheduler:
    """A :class:`ScriptedScheduler` replaying the recorded task sequence."""
    return ScriptedScheduler(task_sequence(events), strict=strict)


def scheduler_from_trace(path, strict: bool = True) -> ScriptedScheduler:
    """Load a JSONL trace and script its task sequence."""
    return scheduler_from_events(load_events(path), strict=strict)


def _chooser_for(actions: Sequence[Action]):
    """A transition chooser that re-selects the recorded actions in order."""
    iterator = iter(actions)

    def choose(transitions) -> int:
        expected = next(iterator, None)
        if expected is not None:
            for index, transition in enumerate(transitions):
                if transition.action == expected:
                    return index
        return 0

    return choose


def replay_execution(
    automaton: Automaton,
    events: Iterable[TraceEvent],
    start: State,
    strict: bool = True,
) -> Execution:
    """Re-drive ``automaton`` from ``start`` along a recorded run.

    ``events`` is one run's segment (see :func:`split_runs`; a whole
    single-run trace works directly).  Inputs are re-applied at their
    recorded step indices, the task script is replayed in order, and
    each step re-selects the recorded action among the enabled
    transitions — reproducing the original execution exactly, which the
    round-trip tests assert state-for-state.
    """
    events = list(events)
    script = task_sequence(events)
    return run(
        automaton,
        ScriptedScheduler(script, strict=strict),
        max_steps=len(script) + 1,
        start=start,
        inputs=input_schedule(events),
        transition_chooser=_chooser_for(action_sequence(events)),
    )


def replay_trace(
    automaton: Automaton, path, start: State, strict: bool = True
) -> Execution:
    """Load a single-run JSONL trace and replay it (see
    :func:`replay_execution`)."""
    return replay_execution(automaton, load_events(path), start, strict=strict)
