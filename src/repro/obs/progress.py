"""Live exploration progress on stderr.

A :class:`ProgressReporter` renders one-line status updates —
``states/s``, frontier size, worker count, and ETA against the run's
:class:`~repro.engine.budget.Budget` — while an exploration runs.  On a
TTY the line is redrawn in place (carriage return, no scrollback spam);
on a pipe it degrades to one plain line per report interval, so CI logs
stay readable.

The reporter throttles itself (``interval_seconds`` between renders)
and is driven by the engine's drivers: per round in parallel runs, every
few hundred expansions sequentially.  It is pure presentation — nothing
reads it back — so it deliberately lives in ``repro.obs`` next to the
other observers rather than in the engine.

Enable it per run (``ExplorationEngine(progress=ProgressReporter())``),
via the CLI ``--progress`` flag, or process-wide with the
``REPRO_PROGRESS`` environment variable (any non-empty value other than
``0``; :func:`progress_from_env`).
"""

from __future__ import annotations

import os
import sys
import time

#: Environment variable consulted by :func:`progress_from_env`.
REPRO_PROGRESS = "REPRO_PROGRESS"


class ProgressReporter:
    """Throttled one-line progress rendering for exploration runs."""

    def __init__(
        self,
        stream=None,
        interval_seconds: float = 0.25,
        clock=time.monotonic,
    ) -> None:
        self.stream = sys.stderr if stream is None else stream
        self.interval_seconds = interval_seconds
        self._clock = clock
        self._last_render = -interval_seconds  # first update always renders
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._dirty = False
        self.renders = 0

    # -- driving --------------------------------------------------------------

    def update(
        self,
        *,
        states: int,
        frontier: int,
        workers: int,
        elapsed: float,
        budget=None,
        force: bool = False,
        spilled: int | None = None,
        flush_ms: float | None = None,
    ) -> bool:
        """Render a progress line if the throttle interval has passed.

        ``spilled``/``flush_ms`` are the store columns — digests spilled
        to disk and the last store-flush latency — supplied only by
        store-backed runs.  Returns True when a line was actually
        written (tests hook this).
        """
        now = self._clock()
        if not force and now - self._last_render < self.interval_seconds:
            return False
        self._last_render = now
        self._write(
            self.format_line(
                states,
                frontier,
                workers,
                elapsed,
                budget,
                spilled=spilled,
                flush_ms=flush_ms,
            )
        )
        self.renders += 1
        return True

    def finish(self) -> None:
        """Terminate the in-place line (no-op if nothing was rendered)."""
        if self._tty and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
        self._dirty = False

    # -- formatting -----------------------------------------------------------

    def format_line(
        self,
        states: int,
        frontier: int,
        workers: int,
        elapsed: float,
        budget,
        *,
        spilled: int | None = None,
        flush_ms: float | None = None,
    ) -> str:
        rate = states / elapsed if elapsed > 0 else 0.0
        parts = [
            f"{states} states",
            f"{rate:,.0f} st/s",
            f"frontier {frontier}",
            f"workers {workers}",
        ]
        if spilled is not None:
            parts.append(f"spilled {spilled}")
        if flush_ms is not None:
            parts.append(f"flush {flush_ms:.1f}ms")
        eta = self._eta(states, rate, elapsed, budget)
        if eta:
            parts.append(eta)
        return "[repro] " + " | ".join(parts)

    @staticmethod
    def _eta(states: int, rate: float, elapsed: float, budget) -> str:
        """ETA-vs-Budget: time to the binding limit, whichever is nearer."""
        if budget is None:
            return ""
        clauses = []
        max_states = getattr(budget, "max_states", None)
        if max_states:
            if rate > 0:
                remaining = max(0, max_states - states) / rate
                clauses.append(
                    f"{100 * states / max_states:.0f}% of {max_states} states,"
                    f" ~{remaining:.0f}s to cap"
                )
            else:
                clauses.append(f"{states}/{max_states} states")
        deadline = getattr(budget, "deadline_seconds", None)
        if deadline:
            clauses.append(f"deadline {max(0.0, deadline - elapsed):.0f}s left")
        return "; ".join(clauses)

    def _write(self, line: str) -> None:
        if self._tty:
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._dirty = True


def progress_from_env(environ=None) -> ProgressReporter | None:
    """A stderr reporter when ``REPRO_PROGRESS`` is set (and not ``0``)."""
    value = (environ if environ is not None else os.environ).get(REPRO_PROGRESS, "")
    if not value.strip() or value.strip() == "0":
        return None
    return ProgressReporter()
