"""repro.obs — tracing, metrics, and profiling for the runtime layers.

The observability subsystem reifies what the schedulers, the explorer,
and the adversary pipeline *do* as inspectable data:

* :mod:`repro.obs.events`  — typed, append-only :class:`TraceEvent`
  stream with monotonic sequence numbers and per-process Lamport tags;
* :mod:`repro.obs.sinks`   — pluggable sinks (ring buffer, JSONL file,
  null) behind a :class:`Tracer`, near-zero overhead when disabled;
* :mod:`repro.obs.metrics` — counters/gauges/histograms registry with a
  ``snapshot()`` dict export;
* :mod:`repro.obs.profile` — context-manager timers and a ``@profiled``
  decorator feeding the registry;
* :mod:`repro.obs.replay`  — reconstruct the task sequence of a JSONL
  trace as a :class:`~repro.ioa.scheduler.ScriptedScheduler` and replay
  any observed run bit-for-bit.

Instrumented call sites take ``tracer=`` / ``metrics=`` parameters
defaulting to the disabled singletons :data:`NULL_TRACER` /
:data:`NULL_METRICS`, so the subsystem costs nothing unless switched on.

``repro.obs.replay`` is re-exported lazily: it imports the scheduler
module, which itself imports this package — eager re-export would make
that a cycle.
"""

from .events import (
    ACTION_FIRED,
    CHECKPOINT_SAVED,
    FAILURE_INJECTED,
    HOOK_VERDICT,
    KINDS,
    PHASE,
    RUN_END,
    RUN_START,
    SERVICE_INVOCATION,
    SERVICE_RESPONSE,
    STATE_EXPLORED,
    TASK_CHOSEN,
    VALENCE_VERDICT,
    WORKER_ROUND,
    TraceEvent,
    decode_value,
    encode_value,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    default_registry,
    render_metrics_table,
    set_default_registry,
)
from .profile import Timer, profiled, timed
from .sinks import (
    JsonlSink,
    NULL_TRACER,
    NullSink,
    RingBufferSink,
    Sink,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)

_REPLAY_EXPORTS = frozenset(
    {
        "load_events",
        "split_runs",
        "task_sequence",
        "action_sequence",
        "input_schedule",
        "scheduler_from_events",
        "scheduler_from_trace",
        "replay_execution",
        "replay_trace",
    }
)


def __getattr__(name: str):
    if name == "replay" or name in _REPLAY_EXPORTS:
        import importlib

        replay_module = importlib.import_module(".replay", __name__)
        if name == "replay":
            return replay_module
        return getattr(replay_module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ACTION_FIRED",
    "CHECKPOINT_SAVED",
    "Counter",
    "FAILURE_INJECTED",
    "Gauge",
    "HOOK_VERDICT",
    "Histogram",
    "JsonlSink",
    "KINDS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullSink",
    "PHASE",
    "RUN_END",
    "RUN_START",
    "RingBufferSink",
    "SERVICE_INVOCATION",
    "SERVICE_RESPONSE",
    "STATE_EXPLORED",
    "Sink",
    "TASK_CHOSEN",
    "Timer",
    "TraceEvent",
    "Tracer",
    "VALENCE_VERDICT",
    "WORKER_ROUND",
    "current_tracer",
    "decode_value",
    "default_registry",
    "encode_value",
    "profiled",
    "render_metrics_table",
    "replay",
    "set_current_tracer",
    "set_default_registry",
    "timed",
    "use_tracer",
    # lazy re-exports from repro.obs.replay
    "load_events",
    "split_runs",
    "task_sequence",
    "action_sequence",
    "input_schedule",
    "scheduler_from_events",
    "scheduler_from_trace",
    "replay_execution",
    "replay_trace",
]
