"""repro.obs — tracing, metrics, and profiling for the runtime layers.

The observability subsystem reifies what the schedulers, the explorer,
and the adversary pipeline *do* as inspectable data:

* :mod:`repro.obs.events`  — typed, append-only :class:`TraceEvent`
  stream with monotonic sequence numbers and per-process Lamport tags;
* :mod:`repro.obs.sinks`   — pluggable sinks (ring buffer, JSONL file,
  null) behind a :class:`Tracer`, near-zero overhead when disabled;
* :mod:`repro.obs.metrics` — counters/gauges/histograms registry with a
  ``snapshot()`` dict export;
* :mod:`repro.obs.profile` — context-manager timers and a ``@profiled``
  decorator feeding the registry;
* :mod:`repro.obs.spans`   — hierarchical spans (wall + CPU time,
  parent links, attributes) layered on the event stream as
  ``span_start``/``span_end`` pairs, plus :class:`WorkerTelemetry`
  (worker-side buffering) and :func:`merge_worker_events` (ordered
  merge into the coordinator's trace), and offline tooling: assembly,
  latency profiles, folded flamegraph stacks, trace diffing;
* :mod:`repro.obs.progress` — throttled, TTY-aware live progress lines
  on stderr (``REPRO_PROGRESS=1`` or ``ExplorationEngine(progress=…)``);
* :mod:`repro.obs.ledger` — the run ledger: every run mints a
  ``run_id``, appends durable :class:`RunRecord` lines to a JSONL
  ledger, and refreshes an atomic heartbeat file so ``repro runs
  list/show/tail/diff/gc`` can inspect live, finished, and killed runs
  from another process;
* :mod:`repro.obs.export`  — Prometheus textfile and Chrome
  ``trace_event`` exporters for metrics snapshots and span traces;
* :mod:`repro.obs.replay`  — reconstruct the task sequence of a JSONL
  trace as a :class:`~repro.ioa.scheduler.ScriptedScheduler` and replay
  any observed run bit-for-bit.

Instrumented call sites take ``tracer=`` / ``metrics=`` parameters
defaulting to the disabled singletons :data:`NULL_TRACER` /
:data:`NULL_METRICS`, so the subsystem costs nothing unless switched on.

``repro.obs.replay`` is re-exported lazily: it imports the scheduler
module, which itself imports this package — eager re-export would make
that a cycle.
"""

from .events import (
    ACTION_FIRED,
    CHECKPOINT_SAVED,
    FAILURE_INJECTED,
    FAULT_FIRED,
    FUZZ_CANDIDATE,
    HOOK_VERDICT,
    KINDS,
    PHASE,
    RUN_END,
    RUN_START,
    SERVICE_INVOCATION,
    SERVICE_RESPONSE,
    SHRINK_STEP,
    SIM_RUN,
    SPAN_END,
    SPAN_START,
    STATE_EXPLORED,
    TASK_CHOSEN,
    VALENCE_VERDICT,
    WORKER_ROUND,
    TraceEvent,
    decode_value,
    encode_value,
)
from .export import (
    chrome_trace,
    prometheus_textfile,
    snapshot_from_trace,
    write_chrome_trace,
)
from .ledger import (
    RunHandle,
    RunLedger,
    RunRecord,
    diff_runs,
    new_run_id,
    resolve_runs_dir,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    default_registry,
    percentile,
    render_metrics_table,
    set_default_registry,
)
from .profile import Timer, profiled, timed
from .progress import ProgressReporter, progress_from_env
from .spans import (
    Span,
    SpanRecord,
    WorkerTelemetry,
    assemble_spans,
    current_span_id,
    diff_span_profiles,
    end_span,
    folded_stacks,
    merge_worker_events,
    record_span,
    render_folded_stacks,
    render_span_diff,
    render_span_table,
    span,
    start_span,
    summarize_spans,
)
from .sinks import (
    JsonlSink,
    NULL_TRACER,
    NullSink,
    RingBufferSink,
    Sink,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)

_REPLAY_EXPORTS = frozenset(
    {
        "load_events",
        "split_runs",
        "task_sequence",
        "action_sequence",
        "input_schedule",
        "scheduler_from_events",
        "scheduler_from_trace",
        "replay_execution",
        "replay_trace",
    }
)


def __getattr__(name: str):
    if name == "replay" or name in _REPLAY_EXPORTS:
        import importlib

        replay_module = importlib.import_module(".replay", __name__)
        if name == "replay":
            return replay_module
        return getattr(replay_module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ACTION_FIRED",
    "CHECKPOINT_SAVED",
    "Counter",
    "FAILURE_INJECTED",
    "FAULT_FIRED",
    "FUZZ_CANDIDATE",
    "Gauge",
    "HOOK_VERDICT",
    "Histogram",
    "JsonlSink",
    "KINDS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullSink",
    "PHASE",
    "ProgressReporter",
    "RUN_END",
    "RUN_START",
    "RingBufferSink",
    "RunHandle",
    "RunLedger",
    "RunRecord",
    "SERVICE_INVOCATION",
    "SERVICE_RESPONSE",
    "SHRINK_STEP",
    "SIM_RUN",
    "SPAN_END",
    "SPAN_START",
    "STATE_EXPLORED",
    "Sink",
    "Span",
    "SpanRecord",
    "TASK_CHOSEN",
    "Timer",
    "TraceEvent",
    "Tracer",
    "VALENCE_VERDICT",
    "WORKER_ROUND",
    "WorkerTelemetry",
    "assemble_spans",
    "chrome_trace",
    "current_span_id",
    "current_tracer",
    "decode_value",
    "default_registry",
    "diff_runs",
    "diff_span_profiles",
    "encode_value",
    "end_span",
    "folded_stacks",
    "merge_worker_events",
    "new_run_id",
    "percentile",
    "profiled",
    "progress_from_env",
    "prometheus_textfile",
    "record_span",
    "render_folded_stacks",
    "render_metrics_table",
    "render_span_diff",
    "render_span_table",
    "replay",
    "resolve_runs_dir",
    "set_current_tracer",
    "set_default_registry",
    "snapshot_from_trace",
    "span",
    "start_span",
    "summarize_spans",
    "timed",
    "use_tracer",
    "write_chrome_trace",
    # lazy re-exports from repro.obs.replay
    "load_events",
    "split_runs",
    "task_sequence",
    "action_sequence",
    "input_schedule",
    "scheduler_from_events",
    "scheduler_from_trace",
    "replay_execution",
    "replay_trace",
]
