"""Counters, gauges, and histograms for the runtime layers.

A :class:`MetricsRegistry` is a named collection of three instrument
kinds:

* :class:`Counter` — monotone accumulator (states explored, transitions
  taken, budget consumed, linearization checks);
* :class:`Gauge` — last-write-wins value (hook-search depth, frontier
  size);
* :class:`Histogram` — streaming count/total/min/max summary of observed
  samples (step durations from :mod:`repro.obs.profile`).

``snapshot()`` exports everything as a plain nested dict, ready for JSON
or table rendering (:func:`render_metrics_table`).  The disabled
singleton :data:`NULL_METRICS` hands out shared no-op instruments, so
uninstrumented callers pay one dict lookup and an empty method call at
most — instrumented hot loops additionally guard on ``metrics.enabled``.
"""

from __future__ import annotations

import math
from typing import Any, Dict


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value


def percentile(sorted_samples, q: float) -> float:
    """Linear-interpolated quantile ``q`` of an ascending sample list."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample list")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_samples[lower]
    weight = position - lower
    return sorted_samples[lower] * (1 - weight) + sorted_samples[upper] * weight


class Histogram:
    """A streaming summary of observed samples.

    Besides the exact count/total/min/max, the histogram retains a
    bounded sample set for quantiles: every ``_stride``-th observation
    is kept, and when the retained set hits :data:`SAMPLE_CAP` it is
    decimated (every other sample dropped, stride doubled).  Quantiles
    are therefore exact up to ``SAMPLE_CAP`` observations and a uniform
    thinning beyond — deterministic, no RNG involved.
    """

    SAMPLE_CAP = 8192

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_stride")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list = []
        self._stride = 1

    def observe(self, sample: float) -> None:
        if self.count % self._stride == 0:
            samples = self._samples
            samples.append(sample)
            if len(samples) >= self.SAMPLE_CAP:
                del samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Interpolated quantile from the retained samples (None if empty)."""
        if not self._samples:
            return None
        return percentile(sorted(self._samples), q)

    def summary(self) -> dict:
        retained = sorted(self._samples)
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": percentile(retained, 0.50) if retained else None,
            "p95": percentile(retained, 0.95) if retained else None,
            "p99": percentile(retained, 0.99) if retained else None,
        }


class MetricsRegistry:
    """A named registry of counters, gauges, and histograms.

    Instruments are created on first access and shared thereafter, so
    independent layers accumulate into the same counter by agreeing on a
    name (dotted names by convention: ``explore.states``,
    ``hook.outer_iterations``, ``refute.silenced_steps``).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict:
        """All instruments as a plain nested dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh registry without re-plumbing)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, sample: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram


#: The shared disabled registry; instrumentation parameters default to it.
NULL_METRICS: MetricsRegistry = NullMetricsRegistry()

#: Process-wide default registry used by :func:`repro.obs.profile.profiled`
#: when no registry is passed explicitly.
_DEFAULT: MetricsRegistry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous


def render_metrics_table(snapshot: dict) -> str:
    """Render a ``snapshot()`` dict as an aligned text table."""
    rows: list[tuple[str, str, str]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append(("counter", name, str(value)))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append(("gauge", name, str(value)))
    for name, summary in snapshot.get("histograms", {}).items():
        rendered = (
            f"count={summary['count']} total={summary['total']:.6g} "
            f"mean={summary['mean']:.6g}"
        )
        if summary.get("p50") is not None:
            rendered += (
                f" p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                f"p99={summary['p99']:.6g}"
            )
        rows.append(("histogram", name, rendered))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(name) for _, name, _ in rows)
    lines = [
        f"{kind:9}  {name:<{name_width}}  {value}" for kind, name, value in rows
    ]
    return "\n".join(lines)
