"""Timers feeding the metrics registry.

Two idioms cover the profiling needs of the analysis layers:

* :func:`timed` — a context manager observing the elapsed wall time of a
  block into a named histogram::

      with timed(metrics, "refute.seconds"):
          verdict = refute_candidate(system, metrics=metrics)

* :func:`profiled` — a decorator doing the same per call, defaulting the
  histogram name to the function's qualified name and the registry to
  the process-wide default (:func:`repro.obs.metrics.default_registry`),
  resolved at call time so tests can swap registries::

      @profiled("explore.seconds")
      def explore(...): ...

Elapsed time is observed even when the block raises, so budget-exhausted
runs still report how long they ran — the property the CLI's
budget-exhaustion path relies on.
"""

from __future__ import annotations

import contextlib
import functools
from time import perf_counter
from typing import Callable

from .metrics import Histogram, MetricsRegistry, default_registry


class Timer:
    """A reusable context-manager stopwatch.

    ``elapsed`` holds the duration of the most recent ``with`` block; if
    a histogram is attached, each block observes into it on exit
    (including exceptional exit).
    """

    __slots__ = ("histogram", "elapsed", "_started")

    def __init__(self, histogram: Histogram | None = None) -> None:
        self.histogram = histogram
        self.elapsed = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = perf_counter() - self._started
        if self.histogram is not None:
            self.histogram.observe(self.elapsed)


def timed(metrics: MetricsRegistry, name: str) -> Timer:
    """A timer observing into ``metrics.histogram(name)`` on block exit."""
    return Timer(metrics.histogram(name))


def profiled(
    name: str | None = None, metrics: MetricsRegistry | None = None
) -> Callable:
    """Decorator: observe each call's wall time into a histogram.

    ``name`` defaults to the wrapped function's qualified name; when
    ``metrics`` is ``None`` the process-wide default registry is looked
    up at **call** time.
    """

    def decorate(function: Callable) -> Callable:
        histogram_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            registry = metrics if metrics is not None else default_registry()
            started = perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                registry.histogram(histogram_name).observe(perf_counter() - started)

        return wrapper

    return decorate
