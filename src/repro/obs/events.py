"""Typed trace events and their JSON encoding.

Everything the runtime layers do — scheduling a task, firing an action,
exploring a state, dispatching a service invocation, injecting a failure,
classifying a valence, finding a hook — can be reified as a
:class:`TraceEvent`.  Events form an append-only stream with

* a **monotonic sequence number** ``seq`` assigned by the emitting
  :class:`~repro.obs.sinks.Tracer` (total order of emission), and
* a **per-process Lamport tag** ``lamport``: events attributed to the
  same process (via the ``process`` field) carry strictly increasing
  Lamport counters, giving the per-process causal order the
  failure-detector-style arguments need ("who saw what, when").

The payload of an event is a small dict of named fields.  Payload values
are encoded to JSON through a tagged encoding (:func:`encode_value` /
:func:`decode_value`) that round-trips the value types executions are
made of — :class:`~repro.ioa.automaton.Task`,
:class:`~repro.ioa.actions.Action`, tuples, and frozensets — exactly,
so a JSONL trace reconstructs the original task sequence bit-for-bit
(the contract :mod:`repro.obs.replay` relies on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from ..ioa.actions import Action
from ..ioa.automaton import Task

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

RUN_START = "run_start"
RUN_END = "run_end"
TASK_CHOSEN = "task_chosen"  # a scheduled step: the task and the action it fired
ACTION_FIRED = "action_fired"  # an externally supplied input action
STATE_EXPLORED = "state_explored"
SERVICE_INVOCATION = "service_invocation"
SERVICE_RESPONSE = "service_response"
FAILURE_INJECTED = "failure_injected"
VALENCE_VERDICT = "valence_verdict"
HOOK_VERDICT = "hook_verdict"
PHASE = "phase"
WORKER_ROUND = "worker_round"  # one frontier-exchange round of the parallel engine
CHECKPOINT_SAVED = "checkpoint_saved"  # the engine snapshotted its progress to disk
WORKER_LOST = "worker_lost"  # a pool worker died (crash or injected fault)
WORKER_RESPAWNED = "worker_respawned"  # a lost worker slot was restarted
STATE_QUARANTINED = "state_quarantined"  # a state repeatedly killed workers; skipped
SPAN_START = "span_start"  # a hierarchical span opened (see repro.obs.spans)
SPAN_END = "span_end"  # a span closed, carrying wall/CPU time and status
SIM_RUN = "sim_run"  # one seeded simulation finished (see repro.sim.harness)
FAULT_FIRED = "fault_fired"  # a network fault transition fired during a sim run
FUZZ_CANDIDATE = "fuzz_candidate"  # the fuzzer started attacking a candidate
SHRINK_STEP = "shrink_step"  # one successful ddmin reduction of a failing schedule

KINDS = frozenset(
    {
        RUN_START,
        RUN_END,
        TASK_CHOSEN,
        ACTION_FIRED,
        STATE_EXPLORED,
        SERVICE_INVOCATION,
        SERVICE_RESPONSE,
        FAILURE_INJECTED,
        VALENCE_VERDICT,
        HOOK_VERDICT,
        PHASE,
        WORKER_ROUND,
        CHECKPOINT_SAVED,
        WORKER_LOST,
        WORKER_RESPAWNED,
        STATE_QUARANTINED,
        SPAN_START,
        SPAN_END,
        SIM_RUN,
        FAULT_FIRED,
        FUZZ_CANDIDATE,
        SHRINK_STEP,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One event of the append-only trace stream.

    ``seq`` is the tracer-wide monotonic sequence number; ``lamport`` the
    per-process causal counter (0-based per process, ``seq``-aligned for
    unattributed events); ``process`` names the process/automaton the
    event is attributed to (``None`` for global events such as
    exploration progress); ``data`` holds the kind-specific payload;
    ``run`` carries the run ledger's run id when the emitting tracer has
    one installed (``None`` otherwise, and omitted from the JSON line so
    pre-ledger traces parse unchanged).
    """

    seq: int
    kind: str
    process: Hashable = None
    lamport: int = 0
    data: Mapping[str, Any] = field(default_factory=dict)
    run: str | None = None

    def to_json(self) -> str:
        """The event as one JSON line (no trailing newline)."""
        document = {
            "seq": self.seq,
            "kind": self.kind,
            "process": encode_value(self.process),
            "lamport": self.lamport,
            "data": {key: encode_value(value) for key, value in self.data.items()},
        }
        if self.run is not None:
            document["run"] = self.run
        return json.dumps(document, separators=(",", ":"), sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        """Parse one JSON line back into a :class:`TraceEvent`."""
        raw = json.loads(line)
        return TraceEvent(
            seq=raw["seq"],
            kind=raw["kind"],
            process=decode_value(raw.get("process")),
            lamport=raw.get("lamport", 0),
            data={key: decode_value(value) for key, value in raw.get("data", {}).items()},
            run=raw.get("run"),
        )


# ---------------------------------------------------------------------------
# Tagged value encoding
# ---------------------------------------------------------------------------
#
# JSON cannot distinguish tuples from lists nor represent frozensets,
# Tasks, or Actions; the replay contract needs all four back exactly.
# Compound values are wrapped in single-key tag objects.

_TUPLE = "__tuple__"
_FROZENSET = "__frozenset__"
_DICT = "__dict__"
_TASK = "__task__"
_ACTION = "__action__"
_REPR = "__repr__"
_TAGS = (_TUPLE, _FROZENSET, _DICT, _TASK, _ACTION, _REPR)


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-serializable form, losslessly where possible.

    Scalars pass through; tuples, frozensets, dicts, Tasks, and Actions
    are tagged; anything else degrades to a tagged ``repr`` (inspectable
    but not reconstructible — fine for diagnostic payloads, never used
    for the replay-critical task/action fields).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Task):
        return {_TASK: [value.owner, encode_value(value.name)]}
    if isinstance(value, Action):
        return {_ACTION: [value.kind, encode_value(tuple(value.args))]}
    if isinstance(value, tuple):
        return {_TUPLE: [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {_FROZENSET: sorted((encode_value(item) for item in value), key=repr)}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {_DICT: [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    return {_REPR: repr(value)}


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (tagged-``repr`` values stay strings)."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag, payload = next(iter(value.items()))
            if tag == _TUPLE:
                return tuple(decode_value(item) for item in payload)
            if tag == _FROZENSET:
                return frozenset(decode_value(item) for item in payload)
            if tag == _DICT:
                return {decode_value(k): decode_value(v) for k, v in payload}
            if tag == _TASK:
                owner, name = payload
                return Task(owner, decode_value(name))
            if tag == _ACTION:
                kind, args = payload
                return Action(kind, decode_value(args))
            if tag == _REPR:
                return payload
        return {key: decode_value(item) for key, item in value.items()}
    return value
