"""Pluggable trace sinks and the process-wide :class:`Tracer`.

A *sink* receives :class:`~repro.obs.events.TraceEvent` values in
emission order.  Three implementations cover the observability
workflows:

* :class:`RingBufferSink` — keeps the last ``capacity`` events in
  memory; the default for interactive inspection and tests;
* :class:`JsonlSink` — appends one JSON line per event to a file,
  producing the machine-readable traces :mod:`repro.obs.replay`
  consumes;
* :class:`NullSink` — drops everything.

A :class:`Tracer` stamps events with monotonic sequence numbers and
per-process Lamport tags before forwarding them to its sink.  The
disabled singleton :data:`NULL_TRACER` short-circuits ``emit`` entirely;
instrumented call sites hoist the ``tracer.enabled`` check out of their
hot loops, so tracing costs one attribute test per loop when off.

The module also maintains the **process-wide current tracer**
(:data:`CURRENT`, read via :func:`current_tracer`), used by layers —
such as the canonical service automata — whose call signatures predate
observability and cannot thread a tracer explicitly.
"""

from __future__ import annotations

import contextlib
from collections import deque
from typing import Hashable, Iterable, Iterator

from .events import TraceEvent


class Sink:
    """Interface of a trace sink: consume events, optionally close."""

    def append(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op for in-memory sinks)."""


class NullSink(Sink):
    """Drop every event."""

    def append(self, event: TraceEvent) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65_536) -> None:
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)


class JsonlSink(Sink):
    """Write one JSON line per event to ``path`` (append-only stream).

    Usable as a context manager; ``events_written`` counts the lines
    emitted through this sink instance.

    The stream is line-buffered and each event is a single complete
    write, so the OS-level buffer is empty between appends.  That makes
    the sink fork-safe: a forked pool worker inheriting the open file
    has nothing buffered to re-flush at exit (a block-buffered stream
    here produced duplicated partial lines — corrupt JSONL — whenever a
    worker process exited while the coordinator's buffer was dirty).
    It also means a crashed run keeps every event emitted before the
    crash.
    """

    def __init__(self, path, mode: str = "w") -> None:
        self.path = path
        self._file = open(path, mode, encoding="utf-8", buffering=1)
        self.events_written = 0

    def append(self, event: TraceEvent) -> None:
        self._file.write(event.to_json() + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Tracer:
    """Stamps and forwards events; the single producer of a trace stream.

    ``emit(kind, process=..., **data)`` builds a
    :class:`~repro.obs.events.TraceEvent` carrying the next sequence
    number and, when ``process`` is given, that process's next Lamport
    counter, then appends it to the sink.

    ``span_stack`` and ``_span_counter`` belong to :mod:`repro.obs.spans`:
    the stack of currently-open span ids (parent links) and the id
    allocator.  They live on the tracer so every instrumented layer
    sharing a tracer shares one span hierarchy.

    ``run_id`` is the run ledger identity (see :mod:`repro.obs.ledger`):
    when set, every event stamped by this tracer carries it in its
    ``run`` field — including worker telemetry re-emitted through
    :func:`~repro.obs.spans.merge_worker_events`, which goes through
    this same ``emit``.
    """

    __slots__ = (
        "sink",
        "enabled",
        "_seq",
        "_lamport",
        "span_stack",
        "_span_counter",
        "run_id",
    )

    def __init__(
        self, sink: Sink, enabled: bool = True, run_id: str | None = None
    ) -> None:
        self.sink = sink
        self.enabled = enabled
        self._seq = 0
        self._lamport: dict[Hashable, int] = {}
        self.span_stack: list[str] = []
        self._span_counter = 0
        self.run_id = run_id

    def next_span_id(self) -> str:
        """Allocate the next span id of this tracer's stream."""
        self._span_counter += 1
        return f"s{self._span_counter}"

    def emit(self, kind: str, process: Hashable = None, **data) -> None:
        """Append one event to the stream (no-op when disabled)."""
        if not self.enabled:
            return
        seq = self._seq
        self._seq = seq + 1
        if process is None:
            lamport = seq
        else:
            lamport = self._lamport.get(process, -1) + 1
            self._lamport[process] = lamport
        self.sink.append(
            TraceEvent(
                seq=seq,
                kind=kind,
                process=process,
                lamport=lamport,
                data=data,
                run=self.run_id,
            )
        )

    @property
    def events_emitted(self) -> int:
        """How many events this tracer has stamped so far."""
        return self._seq

    def close(self) -> None:
        self.sink.close()


class _NullTracer(Tracer):
    """The disabled no-op tracer; ``emit`` returns immediately."""

    def __init__(self) -> None:
        super().__init__(NullSink(), enabled=False)

    def emit(self, kind: str, process: Hashable = None, **data) -> None:
        pass


#: The shared disabled tracer; instrumentation parameters default to it.
NULL_TRACER: Tracer = _NullTracer()

#: The process-wide current tracer, consulted by layers that cannot
#: thread a tracer parameter (e.g. service invocation dispatch).  Read
#: it via :func:`current_tracer`; hot paths may read the module
#: attribute directly and guard on ``.enabled``.
CURRENT: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The process-wide tracer (``NULL_TRACER`` unless one is installed)."""
    return CURRENT


def set_current_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous tracer."""
    global CURRENT
    previous = CURRENT
    CURRENT = NULL_TRACER if tracer is None else tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer):
    """Context manager: install ``tracer`` process-wide, restore on exit."""
    previous = set_current_tracer(tracer)
    try:
        yield tracer
    finally:
        set_current_tracer(previous)
