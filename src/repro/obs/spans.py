"""Hierarchical spans layered on the :class:`TraceEvent` stream.

A *span* is a named interval of work with a parent link, wall and CPU
time, and arbitrary attributes — the unit the ``obs`` CLI, the Chrome
``trace_event`` exporter, and the flamegraph output all consume.  Spans
are not a new wire format: each span is exactly two ordinary trace
events,

* ``span_start`` — ``{"span": id, "parent": id|None, "name": ..., "t":
  perf_counter, **attrs}``, and
* ``span_end``   — ``{"span": id, "name": ..., "status": ...,
  "wall_seconds": ..., "cpu_seconds": ..., "t": ..., **attrs}``,

so existing sinks, replay segmentation, and the JSONL codec all apply
unchanged.  Parent links come from a per-tracer stack
(:attr:`~repro.obs.sinks.Tracer.span_stack`): every layer that shares a
tracer shares one hierarchy, which is how the engine pipeline composes
``engine.run > round[k] > partition[w] > expand/fingerprint`` across
modules without threading span objects through call signatures.

Worker-side spans
-----------------

Worker subprocesses cannot emit into the parent tracer, so they buffer
into a :class:`WorkerTelemetry` — a miniature tracer plus counter map —
whose batches ride the existing result pipe and are merged into the
parent tracer by :func:`merge_worker_events` in the coordinator's
single-threaded ingest loop.  The merge guarantee (documented in
``docs/observability.md``): parent ``seq`` stays monotonic, each
worker's buffer order is preserved, and per-process Lamport tags are
re-stamped by the parent tracer, so the merged trace is seq/lamport
consistent even though workers raced in real time.  Worker span ids are
namespaced by pid (``w<pid>:<n>``) so respawned incarnations can never
collide with the parent's ``s<n>`` ids or each other.

Assembly
--------

:func:`assemble_spans` folds any event iterable back into
:class:`SpanRecord` values (a started-but-never-ended span becomes
``status="open"`` — the chaos tests assert a merged trace contains
none).  On top of records sit :func:`summarize_spans` (per-name latency
profile with p50/p95/p99), :func:`folded_stacks` (flamegraph.pl input,
self-time weighted), and :func:`diff_span_profiles` (A/B comparison).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping

from .events import SPAN_END, SPAN_START, TraceEvent
from .metrics import percentile
from .sinks import Tracer


class Span:
    """One open span: identity, parent link, and start timestamps."""

    __slots__ = ("span_id", "name", "parent_id", "process", "_wall0", "_cpu0")

    def __init__(
        self,
        span_id: str,
        name: str,
        parent_id: str | None,
        process: Hashable = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.process = process
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()


def current_span_id(tracer: Tracer) -> str | None:
    """The id of the innermost open span of ``tracer``, or ``None``."""
    stack = tracer.span_stack
    return stack[-1] if stack else None


def start_span(
    tracer: Tracer, name: str, process: Hashable = None, **attrs
) -> Span | None:
    """Open a span under the tracer's current innermost span.

    Returns ``None`` (and emits nothing) when the tracer is disabled —
    :func:`end_span` accepts that ``None`` back, so call sites need no
    enabled-guard of their own beyond the usual hoisted check.
    """
    if not tracer.enabled:
        return None
    span = Span(tracer.next_span_id(), name, current_span_id(tracer), process)
    tracer.span_stack.append(span.span_id)
    tracer.emit(
        SPAN_START,
        process=process,
        span=span.span_id,
        parent=span.parent_id,
        name=name,
        t=span._wall0,
        **attrs,
    )
    return span


def end_span(tracer: Tracer, span: Span | None, status: str = "ok", **attrs) -> None:
    """Close ``span``, emitting wall/CPU time and ``status``."""
    if span is None or not tracer.enabled:
        return
    now = time.perf_counter()
    if tracer.span_stack and tracer.span_stack[-1] == span.span_id:
        tracer.span_stack.pop()
    elif span.span_id in tracer.span_stack:  # out-of-order close: still unwind
        tracer.span_stack.remove(span.span_id)
    tracer.emit(
        SPAN_END,
        process=span.process,
        span=span.span_id,
        name=span.name,
        status=status,
        wall_seconds=now - span._wall0,
        cpu_seconds=time.process_time() - span._cpu0,
        t=now,
        **attrs,
    )


@contextlib.contextmanager
def span(tracer: Tracer, name: str, process: Hashable = None, **attrs):
    """Context manager: a span around the block, ``status="error"`` on raise."""
    opened = start_span(tracer, name, process=process, **attrs)
    try:
        yield opened
    except BaseException:
        end_span(tracer, opened, status="error")
        raise
    else:
        end_span(tracer, opened)


def record_span(
    tracer: Tracer,
    name: str,
    wall_seconds: float,
    cpu_seconds: float = 0.0,
    *,
    parent_id: str | None = None,
    status: str = "ok",
    process: Hashable = None,
    **attrs,
) -> None:
    """Emit an already-measured span as a matched start/end pair.

    For work whose duration was accumulated elsewhere (per-phase worker
    timings, a partition that died with the worker): the start ``t`` is
    back-computed as ``now - wall_seconds`` so exporters still get a
    plausible interval.  The span never joins the open stack.
    """
    if not tracer.enabled:
        return
    span_id = tracer.next_span_id()
    now = time.perf_counter()
    parent = parent_id if parent_id is not None else current_span_id(tracer)
    tracer.emit(
        SPAN_START,
        process=process,
        span=span_id,
        parent=parent,
        name=name,
        t=now - wall_seconds,
        **attrs,
    )
    tracer.emit(
        SPAN_END,
        process=process,
        span=span_id,
        name=name,
        status=status,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        t=now,
        **attrs,
    )


# ---------------------------------------------------------------------------
# Worker-side telemetry
# ---------------------------------------------------------------------------


class WorkerTelemetry:
    """Event/counter buffer for one worker subprocess.

    Mirrors the tracer's span API but appends ``(kind, process, data)``
    triples to an in-memory batch instead of a sink; :meth:`flush`
    hands the batch to the reply pipe and resets.  Span ids are
    ``<label>:<n>`` with ``label`` unique per incarnation (pid-based by
    default), so merged ids never collide across workers or respawns.
    """

    __slots__ = ("label", "events", "counters", "_stack", "_ids")

    def __init__(self, label: str) -> None:
        self.label = label
        self.events: list = []
        self.counters: dict[str, float] = {}
        self._stack: list[str] = []
        self._ids = 0

    def emit(self, kind: str, process: Hashable = None, **data) -> None:
        self.events.append((kind, process, data))

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def start_span(self, name: str, **attrs) -> Span:
        self._ids += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(f"{self.label}:{self._ids}", name, parent, process=self.label)
        self._stack.append(span.span_id)
        self.emit(
            SPAN_START,
            process=self.label,
            span=span.span_id,
            parent=parent,
            name=name,
            t=span._wall0,
            **attrs,
        )
        return span

    def end_span(self, span: Span, status: str = "ok", **attrs) -> None:
        now = time.perf_counter()
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self.emit(
            SPAN_END,
            process=self.label,
            span=span.span_id,
            name=span.name,
            status=status,
            wall_seconds=now - span._wall0,
            cpu_seconds=time.process_time() - span._cpu0,
            t=now,
            **attrs,
        )

    def record_span(
        self,
        name: str,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        *,
        parent: Span | None = None,
        **attrs,
    ) -> None:
        """A pre-measured child span (phase timings inside a partition)."""
        self._ids += 1
        span_id = f"{self.label}:{self._ids}"
        parent_id = (
            parent.span_id
            if parent is not None
            else (self._stack[-1] if self._stack else None)
        )
        now = time.perf_counter()
        self.emit(
            SPAN_START,
            process=self.label,
            span=span_id,
            parent=parent_id,
            name=name,
            t=now - wall_seconds,
            **attrs,
        )
        self.emit(
            SPAN_END,
            process=self.label,
            span=span_id,
            name=name,
            status="ok",
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
            t=now,
            **attrs,
        )

    def flush(self):
        """The buffered ``(events, counters)`` batch, or ``None`` if empty.

        Open spans are *not* flushed half-way: a span started in this
        batch window is always closed before the reply is sent (the
        worker loop brackets each chunk), so every batch is
        self-contained — the property that makes a dead worker's last
        flushed batch directly mergeable.
        """
        if not self.events and not self.counters:
            return None
        batch = (self.events, self.counters)
        self.events = []
        self.counters = {}
        return batch


def merge_worker_events(
    tracer: Tracer,
    events: Iterable[tuple],
    *,
    parent_id: str | None = None,
    attach: Mapping[str, Any] | None = None,
) -> int:
    """Re-emit one worker batch through the parent tracer, in batch order.

    Top-level worker spans (``parent is None``) are re-parented under
    ``parent_id`` (the coordinator's current round span), and ``attach``
    entries (e.g. ``worker``/``round``) are folded into every
    ``span_start`` payload.  The parent tracer re-stamps ``seq`` and
    per-process ``lamport``, giving the merged stream one consistent
    order.  Returns the number of events merged.
    """
    if not tracer.enabled:
        return 0
    merged = 0
    for kind, process, data in events:
        if kind == SPAN_START:
            if data.get("parent") is None and parent_id is not None:
                data = {**data, "parent": parent_id}
            if attach:
                data = {**attach, **data}
        tracer.emit(kind, process=process, **data)
        merged += 1
    return merged


# ---------------------------------------------------------------------------
# Assembly: events -> SpanRecords -> profiles
# ---------------------------------------------------------------------------


@dataclass
class SpanRecord:
    """One assembled span (``status="open"`` when the end never arrived)."""

    span_id: str
    name: str
    parent_id: str | None
    process: Hashable
    start_seq: int
    start_t: float
    attrs: dict = field(default_factory=dict)
    end_seq: int | None = None
    end_t: float | None = None
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    status: str = "open"


_SPAN_META = frozenset(
    {"span", "parent", "name", "t", "status", "wall_seconds", "cpu_seconds"}
)


def assemble_spans(events: Iterable[TraceEvent]) -> list[SpanRecord]:
    """Fold a trace's span events into records, in start order.

    Tolerates end-without-start (dropped prefix of a rotated trace):
    such ends are ignored.  Duplicate ids keep the first start.
    """
    records: dict[str, SpanRecord] = {}
    order: list[SpanRecord] = []
    for event in events:
        if event.kind == SPAN_START:
            data = event.data
            span_id = data["span"]
            if span_id in records:
                continue
            record = SpanRecord(
                span_id=span_id,
                name=data.get("name", "?"),
                parent_id=data.get("parent"),
                process=event.process,
                start_seq=event.seq,
                start_t=data.get("t", 0.0),
                attrs={k: v for k, v in data.items() if k not in _SPAN_META},
            )
            records[span_id] = record
            order.append(record)
        elif event.kind == SPAN_END:
            data = event.data
            record = records.get(data["span"])
            if record is None or record.status != "open":
                continue
            record.end_seq = event.seq
            record.end_t = data.get("t")
            record.wall_seconds = data.get("wall_seconds", 0.0)
            record.cpu_seconds = data.get("cpu_seconds", 0.0)
            record.status = data.get("status", "ok")
            for key, value in data.items():
                if key not in _SPAN_META:
                    record.attrs.setdefault(key, value)
    return order


def summarize_spans(records: Iterable[SpanRecord]) -> dict[str, dict]:
    """Per-span-name latency profile: count, wall/cpu totals, quantiles."""
    samples: dict[str, list[float]] = {}
    cpu: dict[str, float] = {}
    statuses: dict[str, dict[str, int]] = {}
    for record in records:
        samples.setdefault(record.name, []).append(record.wall_seconds)
        cpu[record.name] = cpu.get(record.name, 0.0) + record.cpu_seconds
        by_status = statuses.setdefault(record.name, {})
        by_status[record.status] = by_status.get(record.status, 0) + 1
    profile: dict[str, dict] = {}
    for name in sorted(samples, key=lambda n: -sum(samples[n])):
        walls = sorted(samples[name])
        total = sum(walls)
        profile[name] = {
            "count": len(walls),
            "wall_seconds": total,
            "cpu_seconds": cpu[name],
            "mean": total / len(walls),
            "p50": percentile(walls, 0.50),
            "p95": percentile(walls, 0.95),
            "p99": percentile(walls, 0.99),
            "max": walls[-1],
            "statuses": statuses[name],
        }
    return profile


def render_span_table(profile: Mapping[str, dict]) -> str:
    """The ``obs summarize`` table: one aligned row per span name."""
    if not profile:
        return "(no spans in trace)"
    header = (
        f"{'span':<24} {'count':>7} {'wall_s':>10} {'cpu_s':>10} "
        f"{'mean_ms':>9} {'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}  status"
    )
    lines = [header, "-" * len(header)]
    for name, row in profile.items():
        status = ",".join(
            f"{key}={count}"
            for key, count in sorted(row["statuses"].items())
            if key != "ok"
        ) or "ok"
        lines.append(
            f"{name:<24} {row['count']:>7} {row['wall_seconds']:>10.4f} "
            f"{row['cpu_seconds']:>10.4f} {row['mean'] * 1e3:>9.3f} "
            f"{row['p50'] * 1e3:>9.3f} {row['p95'] * 1e3:>9.3f} "
            f"{row['p99'] * 1e3:>9.3f}  {status}"
        )
    return "\n".join(lines)


def folded_stacks(records: Iterable[SpanRecord]) -> dict[str, int]:
    """Semicolon-folded stacks weighted by self-time in microseconds.

    The format flamegraph.pl (and speedscope) consume: one
    ``root;child;leaf <count>`` line per distinct stack.  Self time is a
    span's wall time minus its children's, floored at zero (children
    overlapping their parent — merged worker spans under a round —
    cannot push a parent negative).
    """
    records = list(records)
    by_id = {record.span_id: record for record in records}
    child_wall: dict[str, float] = {}
    for record in records:
        if record.parent_id is not None and record.parent_id in by_id:
            child_wall[record.parent_id] = (
                child_wall.get(record.parent_id, 0.0) + record.wall_seconds
            )
    folded: dict[str, int] = {}
    for record in records:
        path: list[str] = []
        cursor: SpanRecord | None = record
        hops = 0
        while cursor is not None and hops < 64:  # cycle guard
            path.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
            hops += 1
        stack = ";".join(reversed(path))
        self_us = int(
            max(0.0, record.wall_seconds - child_wall.get(record.span_id, 0.0)) * 1e6
        )
        if self_us:
            folded[stack] = folded.get(stack, 0) + self_us
    return folded


def render_folded_stacks(folded: Mapping[str, int]) -> str:
    """Folded stacks as flamegraph.pl input lines."""
    return "\n".join(f"{stack} {weight}" for stack, weight in sorted(folded.items()))


def diff_span_profiles(
    before: Mapping[str, dict], after: Mapping[str, dict]
) -> list[dict]:
    """Per-name comparison rows of two :func:`summarize_spans` profiles."""
    rows = []
    for name in sorted(set(before) | set(after)):
        a = before.get(name)
        b = after.get(name)
        wall_a = a["wall_seconds"] if a else 0.0
        wall_b = b["wall_seconds"] if b else 0.0
        rows.append(
            {
                "name": name,
                "count_a": a["count"] if a else 0,
                "count_b": b["count"] if b else 0,
                "wall_a": wall_a,
                "wall_b": wall_b,
                "delta_seconds": wall_b - wall_a,
                "ratio": (wall_b / wall_a) if wall_a else None,
            }
        )
    rows.sort(key=lambda row: -abs(row["delta_seconds"]))
    return rows


def render_span_diff(rows: list[dict]) -> str:
    """The ``obs diff`` table."""
    if not rows:
        return "(no spans in either trace)"
    header = (
        f"{'span':<24} {'count A':>8} {'count B':>8} {'wall A s':>10} "
        f"{'wall B s':>10} {'delta s':>10} {'ratio':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ratio = "n/a" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        lines.append(
            f"{row['name']:<24} {row['count_a']:>8} {row['count_b']:>8} "
            f"{row['wall_a']:>10.4f} {row['wall_b']:>10.4f} "
            f"{row['delta_seconds']:>+10.4f} {ratio:>7}"
        )
    return "\n".join(lines)
