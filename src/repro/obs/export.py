"""Exporters: Prometheus textfiles and Chrome ``trace_event`` JSON.

Two one-way bridges out of the observability subsystem:

* :func:`prometheus_textfile` renders a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict in the
  Prometheus text exposition format (node_exporter's textfile collector
  consumes it as-is): counters become ``repro_<name>_total``, gauges
  ``repro_<name>``, histograms a ``_count``/``_sum`` pair plus
  p50/p95/p99 quantile gauges.  Dots and other non-metric characters in
  instrument names become underscores.

* :func:`chrome_trace` converts the span events of any trace (see
  :mod:`repro.obs.spans`) into the Chrome ``trace_event`` JSON object
  format, loadable in ``chrome://tracing`` and Perfetto.  Each emitting
  process (coordinator, each worker incarnation) becomes a track;
  timestamps are each track's own ``perf_counter`` values, normalized so
  the earliest span in the trace sits at zero.  Cross-track alignment is
  therefore approximate (different processes, different clock origins —
  worker tracks are additionally pinned to the first merge point), which
  is fine for the intended use: seeing where the time went, per track.

* :func:`snapshot_from_trace` builds a metrics-style snapshot from a raw
  trace — event counts per kind, span-latency histogram summaries per
  span name — so ``obs prom`` can serve either input kind.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Mapping

from .events import TraceEvent
from .metrics import percentile
from .spans import SpanRecord, assemble_spans


def _metric_name(name: str) -> str:
    """A Prometheus-legal metric name from a dotted instrument name."""
    cleaned = [
        ch if ch.isalnum() or ch in ("_", ":") else "_" for ch in name
    ]
    if cleaned and cleaned[0].isdigit():
        cleaned.insert(0, "_")
    return "".join(cleaned)


_LABELLED = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>[^{}]*)\}$")


def _split_labels(name: str) -> tuple[str, str]:
    """Split an instrument name into ``(base, label-clause)``.

    Instrument names may embed Prometheus labels directly —
    ``serve.admitted{tenant="alice"}`` — which keeps the
    :class:`~repro.obs.metrics.MetricsRegistry` label-free (each
    labelled series is simply its own instrument) while letting the
    exporter render proper labelled series instead of mangling the
    braces into underscores.  Names without a well-formed label clause
    come back with an empty clause.
    """
    match = _LABELLED.match(name)
    if match is None:
        return name, ""
    return match.group("base"), "{" + match.group("labels") + "}"


def _merge_labels(clause: str, extra: str) -> str:
    """Merge an extra ``key="value"`` pair into a label clause."""
    if not clause:
        return "{" + extra + "}"
    return clause[:-1] + "," + extra + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    return "NaN"


def prometheus_textfile(
    snapshot: Mapping, prefix: str = "repro", labels: Mapping | None = None
) -> str:
    """Render a metrics snapshot in the Prometheus text format.

    Instrument names carrying an embedded label clause (see
    :func:`_split_labels`) render as labelled series; the ``# TYPE``
    header is emitted once per base metric, so per-tenant counters like
    ``serve.admitted{tenant="a"}`` / ``serve.admitted{tenant="b"}``
    form one metric family.  ``labels`` adds constant labels — run
    identity, most importantly: ``labels={"run": run_id}`` — to every
    series, merged after any embedded clause.
    """
    lines: list[str] = []
    typed: set[str] = set()
    constant = ",".join(
        f'{key}="{value}"' for key, value in (labels or {}).items()
    )

    def with_constant(clause: str) -> str:
        if not constant:
            return clause
        return _merge_labels(clause, constant)

    def declare(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        base, clause = _split_labels(name)
        metric = f"{prefix}_{_metric_name(base)}_total"
        declare(metric, "counter")
        lines.append(f"{metric}{with_constant(clause)} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        base, clause = _split_labels(name)
        metric = f"{prefix}_{_metric_name(base)}"
        declare(metric, "gauge")
        lines.append(f"{metric}{with_constant(clause)} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        base, clause = _split_labels(name)
        metric = f"{prefix}_{_metric_name(base)}"
        declare(metric, "summary")
        for quantile_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            value = summary.get(quantile_key)
            if value is not None:
                quantile = 'quantile="%s"' % q
                lines.append(
                    f"{metric}{_merge_labels(with_constant(clause), quantile)} "
                    f"{_format_value(value)}"
                )
        lines.append(
            f"{metric}_sum{with_constant(clause)} "
            f"{_format_value(summary.get('total', 0.0))}"
        )
        lines.append(f"{metric}_count{with_constant(clause)} {summary.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_from_trace(events: Iterable[TraceEvent]) -> dict:
    """A metrics-style snapshot derived from a raw event trace.

    Counters: ``trace.events.<kind>`` per event kind.  Histograms:
    ``span.<name>`` wall-time summaries per span name (same keys as
    :meth:`~repro.obs.metrics.Histogram.summary`).

    Fuzz traces (any trace carrying a ``fuzz_candidate`` event)
    additionally derive the campaign counters the live registry records
    — ``sim.fuzz.schedules`` (one per simulated schedule),
    ``sim.fuzz.violations``, ``sim.fuzz.shrink_steps`` — so ``repro obs
    summarize``/``prom`` report the same numbers from a trace file as
    from a live run.
    """
    events = list(events)
    counters: dict[str, int] = {}
    for event in events:
        key = f"trace.events.{event.kind}"
        counters[key] = counters.get(key, 0) + 1
    if counters.get("trace.events.fuzz_candidate"):
        for event in events:
            if event.kind == "sim_run":
                counters["sim.fuzz.schedules"] = (
                    counters.get("sim.fuzz.schedules", 0) + 1
                )
                if event.data.get("violations"):
                    counters["sim.fuzz.violations"] = (
                        counters.get("sim.fuzz.violations", 0) + 1
                    )
            elif event.kind == "shrink_step":
                counters["sim.fuzz.shrink_steps"] = (
                    counters.get("sim.fuzz.shrink_steps", 0) + 1
                )
    histograms: dict[str, dict] = {}
    samples: dict[str, list[float]] = {}
    for record in assemble_spans(events):
        samples.setdefault(f"span.{record.name}", []).append(record.wall_seconds)
    for name, walls in samples.items():
        walls.sort()
        histograms[name] = {
            "count": len(walls),
            "total": sum(walls),
            "mean": sum(walls) / len(walls),
            "min": walls[0],
            "max": walls[-1],
            "p50": percentile(walls, 0.50),
            "p95": percentile(walls, 0.95),
            "p99": percentile(walls, 0.99),
        }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {},
        "histograms": dict(sorted(histograms.items())),
    }


def _track_name(record: SpanRecord) -> str:
    process = record.process
    return "coordinator" if process is None else str(process)


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """The trace's spans as a Chrome ``trace_event`` JSON object.

    Every span becomes one complete (``ph="X"``) event; open spans
    (never closed — should not exist in a well-formed merged trace) are
    skipped.  ``args`` carries the span's attributes plus its id/parent
    so Perfetto's query panel can reconstruct the hierarchy.
    """
    records = assemble_spans(events)
    tracks: dict[str, int] = {}
    origin: dict[str, float] = {}
    for record in records:
        track = _track_name(record)
        if track not in tracks:
            tracks[track] = len(tracks) + 1
        origin[track] = min(origin.get(track, record.start_t), record.start_t)
    trace_events: list[dict] = []
    for track, tid in tracks.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for record in records:
        if record.status == "open":
            continue
        track = _track_name(record)
        trace_events.append(
            {
                "name": record.name,
                "cat": "span",
                "ph": "X",
                "pid": 1,
                "tid": tracks[track],
                "ts": round((record.start_t - origin[track]) * 1e6, 3),
                "dur": round(record.wall_seconds * 1e6, 3),
                "args": {
                    "span": record.span_id,
                    "parent": record.parent_id,
                    "status": record.status,
                    **{
                        key: value
                        for key, value in record.attrs.items()
                        if isinstance(value, (str, int, float, bool, type(None)))
                    },
                },
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns event count."""
    document = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, separators=(",", ":"))
        stream.write("\n")
    return len(document["traceEvents"])
