"""repro — an executable reproduction of
"The Impossibility of Boosting Distributed Service Resilience"
(Attie, Guerraoui, Kuznetsov, Lynch, Rajsbaum; ICDCS 2005 / I&C 2011).

The library implements the paper's full formal framework over I/O
automata, every canonical service the paper defines, the proof machinery
of the three impossibility theorems as runnable analysis code, and the
two possibility constructions as concrete protocols.

Layering (bottom to top):

* :mod:`repro.ioa`       — I/O automata: actions, composition, executions,
  fairness, schedulers (Section 2.1.1);
* :mod:`repro.types`     — sequential types and service types
  (Sections 2.1.2, 5.1, 6.1);
* :mod:`repro.services`  — canonical atomic objects, registers,
  failure-oblivious services, totally ordered broadcast, general
  services, failure detectors (Figs. 1, 4-11);
* :mod:`repro.system`    — process automata, the complete system ``C``,
  failure schedules (Section 2.2);
* :mod:`repro.analysis`  — valence, bivalent initializations, the hook
  construction, similarity, the constructive refutation engine, and the
  end-to-end boosting adversary (Sections 3, 5.3, 6.3); re-exported as
  :mod:`repro.core`;
* :mod:`repro.engine`    — the parallel exploration engine behind the
  analysis layer: state fingerprinting, frontier-partitioned worker
  pools, checkpoints with resume, and unified budgets;
* :mod:`repro.obs`       — tracing, metrics, profiling, and trace replay
  for every layer above (disabled by default, zero-overhead when off);
* :mod:`repro.protocols` — the Section 4 and Section 6.3 possibility
  constructions, plus the doomed candidates the adversary refutes;
* :mod:`repro.sim`       — deterministic network-fault simulation
  (:class:`~repro.sim.FaultyNetwork`, seeded harness, bit-for-bit
  replay scripts) and the adversary fuzzer with counterexample
  shrinking.

Quickstart::

    from repro import Budget, refute_candidate
    from repro.protocols import delegation_consensus_system

    system = delegation_consensus_system(n=3, resilience=1)
    verdict = refute_candidate(system, budget=Budget(max_states=100_000))
    assert verdict.refuted  # Theorem 2, witnessed on this instance

Stable top-level surface: the names re-exported below (the analysis
entry points, :class:`Budget`, :class:`ReductionConfig`,
:class:`ExplorationEngine`, the :class:`StateStore` /
:class:`StoreConfig` storage-backend surface, and the
:class:`RunLedger` / :class:`RunRecord` run-ledger surface) are the
supported public API; everything else is importable from its subpackage
but may move between minor versions.  See ``docs/api.md``.
"""

from . import (
    analysis,
    core,
    engine,
    ioa,
    obs,
    protocols,
    services,
    sim,
    system,
    types,
)
from .analysis import analyze_valence, explore, find_hook, refute_candidate
from .engine import (
    Budget,
    ExplorationEngine,
    ReductionConfig,
    StateStore,
    StoreConfig,
)
from .obs import RunLedger, RunRecord

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "ExplorationEngine",
    "ReductionConfig",
    "RunLedger",
    "RunRecord",
    "StateStore",
    "StoreConfig",
    "analysis",
    "analyze_valence",
    "core",
    "engine",
    "explore",
    "find_hook",
    "ioa",
    "obs",
    "protocols",
    "refute_candidate",
    "services",
    "sim",
    "system",
    "types",
    "__version__",
]
