"""The paper's primary contribution, as a package (alias of ``repro.analysis``).

The primary contribution of the paper is its impossibility *argument* —
valence, the hook construction, similarity, and the boosting adversary
built from them — implemented in :mod:`repro.analysis`.  This package
re-exports that machinery under the conventional ``core`` name, so that
``from repro.core import refute_candidate`` reads the way the repository
layout advertises.
"""

from ..analysis import *  # noqa: F401,F403
from ..analysis import __all__  # noqa: F401
