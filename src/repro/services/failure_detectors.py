"""Failure detectors as general services (Section 6.2).

The paper models two of the classical Chandra-Toueg failure detectors as
canonical general services.  Both have an *empty* invocation set — their
only inputs are ``fail_i`` actions — and push ``suspect(J')`` responses
spontaneously through global compute tasks.

As the paper notes, these automaton-based detectors capture the
"time-independent" (realistic) subset of the classical model: output can
depend only on the *order* of failures, never on timing or on future
inputs.

* **Perfect failure detector P** (Fig. 9): trivial internal value; one
  global task per endpoint ``i``, whose compute step puts
  ``suspect(failed)`` — the exact current failed set — into ``i``'s
  response buffer.  P therefore never suspects a non-failed process
  (strong accuracy) and, by task fairness, eventually reports every
  failed process to every live endpoint (strong completeness), as long
  as no more than ``f`` endpoints fail.

* **Eventually perfect failure detector <>P** (Figs. 10-11): the value
  is a ``mode`` in ``{imperfect, perfect}``, initially ``imperfect``.
  While imperfect, the per-endpoint tasks may emit *arbitrary* suspect
  sets; a background global task ``g`` eventually (by fairness) switches
  the mode to ``perfect``, after which all reports are exact.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import FrozenSet, Hashable, Sequence

from ..types.service_type import (
    GeneralServiceType,
    ServiceResult,
    single_response,
)
from .general import CanonicalGeneralService

IMPERFECT = "imperfect"
PERFECT = "perfect"

#: The mode-switching background task of <>P (Fig. 11).
MODE_SWITCH_TASK = "g"


def suspect(endpoints: FrozenSet | Sequence) -> tuple:
    """The ``suspect(J')`` response carrying a set of suspected endpoints."""
    return ("suspect", frozenset(endpoints))


def _subsets(endpoints: Sequence) -> list[frozenset]:
    """All subsets of ``endpoints`` (for <>P's arbitrary suspicions)."""
    items = tuple(endpoints)
    return [
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(items, size) for size in range(len(items) + 1)
        )
    ]


def _no_invocations(name: str):
    def delta1(invocation, endpoint, value, failed) -> Sequence[ServiceResult]:
        raise ValueError(f"{name} has no invocations (invs is empty)")

    return delta1


def perfect_failure_detector_type(endpoints: Sequence) -> GeneralServiceType:
    """The service type of the perfect failure detector P (Fig. 9).

    ``V`` contains one trivial state; ``glob = J``; ``delta2(i, v,
    failed)`` puts ``suspect(failed)`` into ``i``'s response buffer and
    nothing anywhere else.
    """
    endpoints = tuple(endpoints)

    def delta2(global_task, value, failed) -> Sequence[ServiceResult]:
        if global_task not in endpoints:
            raise ValueError(f"P: unknown global task {global_task!r}")
        return ((single_response(global_task, suspect(failed)), value),)

    return GeneralServiceType(
        name="perfect-failure-detector",
        initial_values=("trivial",),
        invocations=(),
        responses=tuple(suspect(subset) for subset in _subsets(endpoints)),
        global_tasks=endpoints,
        delta1=_no_invocations("P"),
        delta2=delta2,
        contains_invocation=lambda invocation: False,
    )


def eventually_perfect_failure_detector_type(
    endpoints: Sequence,
    arbitrary_suspicions: Sequence[frozenset] | None = None,
) -> GeneralServiceType:
    """The service type of the eventually perfect detector <>P (Figs. 10-11).

    ``val`` is the ``mode`` variable, initially ``imperfect``.  Task
    ``i`` (one per endpoint) emits ``suspect(failed)`` when the mode is
    perfect, and an arbitrary ``suspect(J')`` when imperfect
    (``arbitrary_suspicions`` bounds the nondeterministic choice;
    default: every subset of ``J``).  Task ``g`` switches the mode to
    perfect; under task fairness the switch eventually happens, after
    which all reports are recent and accurate.
    """
    endpoints = tuple(endpoints)
    if arbitrary_suspicions is None:
        arbitrary_suspicions = _subsets(endpoints)
    arbitrary_suspicions = tuple(arbitrary_suspicions)

    def delta2(global_task, value, failed) -> Sequence[ServiceResult]:
        if global_task == MODE_SWITCH_TASK:
            # Fig. 11: the background task's only job is the mode switch.
            return (({}, PERFECT),)
        if global_task not in endpoints:
            raise ValueError(f"<>P: unknown global task {global_task!r}")
        if value == PERFECT:
            return ((single_response(global_task, suspect(failed)), value),)
        # Imperfect mode: any suspicion set is allowed.
        return tuple(
            (single_response(global_task, suspect(subset)), value)
            for subset in arbitrary_suspicions
        )

    return GeneralServiceType(
        name="eventually-perfect-failure-detector",
        initial_values=(IMPERFECT,),
        invocations=(),
        responses=tuple(suspect(subset) for subset in _subsets(endpoints)),
        global_tasks=endpoints + (MODE_SWITCH_TASK,),
        delta1=_no_invocations("<>P"),
        delta2=delta2,
        contains_invocation=lambda invocation: False,
    )


class PerfectFailureDetector(CanonicalGeneralService):
    """An f-resilient perfect failure detector for ``J`` and ``k``."""

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        resilience: int,
        name: str | None = None,
    ) -> None:
        endpoints = tuple(endpoints)
        super().__init__(
            service_type=perfect_failure_detector_type(endpoints),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"P[{service_id}]",
        )


class EventuallyPerfectFailureDetector(CanonicalGeneralService):
    """An f-resilient eventually perfect failure detector (<>P)."""

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        resilience: int,
        arbitrary_suspicions: Sequence[frozenset] | None = None,
        name: str | None = None,
    ) -> None:
        endpoints = tuple(endpoints)
        super().__init__(
            service_type=eventually_perfect_failure_detector_type(
                endpoints, arbitrary_suspicions
            ),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"evP[{service_id}]",
        )


def suspicions_in_trace(trace, endpoint, service_id) -> list[frozenset]:
    """All suspect sets delivered to ``endpoint`` by detector ``service_id``."""
    reports = []
    for action in trace:
        if action.kind != "respond":
            continue
        service, target, response = action.args
        if service != service_id or target != endpoint:
            continue
        if isinstance(response, tuple) and response[0] == "suspect":
            reports.append(response[1])
    return reports


#: Response kind emitted by the Omega leader oracle.
LEADER = "leader"


def leader_of(endpoints, failed) -> Hashable:
    """The stable-leader rule: the least non-failed endpoint.

    Failures only accumulate, so once the mode is perfect the reported
    leader changes at most once per further failure and eventually
    stabilizes on the least *correct* endpoint.
    """
    alive = [endpoint for endpoint in endpoints if endpoint not in failed]
    if not alive:
        return None
    return min(alive, key=str)


def omega_type(
    endpoints: Sequence,
    arbitrary_leaders: Sequence | None = None,
) -> GeneralServiceType:
    """The Omega leader oracle as a general service type.

    Omega eventually reports the same correct process to every endpoint
    — the weakest failure detector for consensus [Chandra-Hadzilacos-
    Toueg].  Modeled like <>P (Figs. 10-11): a ``mode`` value starts
    ``imperfect`` (arbitrary leaders may be reported), and a background global
    task switches it to ``perfect``, after which every report is the
    least non-failed endpoint — which stabilizes because failures only
    accumulate.

    ``arbitrary_leaders`` bounds the imperfect-mode nondeterminism
    (default: every endpoint).
    """
    endpoints = tuple(endpoints)
    if arbitrary_leaders is None:
        arbitrary_leaders = endpoints
    arbitrary_leaders = tuple(arbitrary_leaders)

    def delta2(global_task, value, failed) -> Sequence[ServiceResult]:
        if global_task == MODE_SWITCH_TASK:
            return (({}, PERFECT),)
        if global_task not in endpoints:
            raise ValueError(f"Omega: unknown global task {global_task!r}")
        if value == PERFECT:
            report = (LEADER, leader_of(endpoints, failed))
            return ((single_response(global_task, report), value),)
        return tuple(
            (single_response(global_task, (LEADER, candidate)), value)
            for candidate in arbitrary_leaders
        )

    return GeneralServiceType(
        name="omega",
        initial_values=(IMPERFECT,),
        invocations=(),
        responses=tuple((LEADER, e) for e in endpoints) + ((LEADER, None),),
        global_tasks=endpoints + (MODE_SWITCH_TASK,),
        delta1=_no_invocations("Omega"),
        delta2=delta2,
        contains_invocation=lambda invocation: False,
    )


class OmegaFailureDetector(CanonicalGeneralService):
    """An f-resilient Omega leader oracle for ``J`` and ``k``."""

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        resilience: int,
        arbitrary_leaders: Sequence | None = None,
        name: str | None = None,
    ) -> None:
        endpoints = tuple(endpoints)
        super().__init__(
            service_type=omega_type(endpoints, arbitrary_leaders),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"Omega[{service_id}]",
        )


def leaders_in_trace(trace, endpoint, service_id) -> list:
    """All leader reports delivered to ``endpoint`` by ``service_id``."""
    reports = []
    for action in trace:
        if action.kind != "respond":
            continue
        service, target, response = action.args
        if service != service_id or target != endpoint:
            continue
        if isinstance(response, tuple) and response[0] == LEADER:
            reports.append(response[1])
    return reports
