"""Asynchronous reliable message passing as a failure-oblivious service.

The paper's basic results first appeared in a technical report titled
"Boosting Fault-tolerance in Asynchronous Message Passing Systems is
Impossible" [Attie-Lynch-Rajsbaum 2002].  This module instantiates that
original setting inside the unified framework: an asynchronous reliable
FIFO network is a *failure-oblivious service* —

* an invocation ``send(j, m)`` at endpoint ``i`` is performed by
  appending a ``deliver(i, m)`` response to ``j``'s response buffer
  (``delta1`` uses the invoking endpoint: precisely the extra power
  failure-oblivious services have over atomic objects);
* asynchrony comes for free from the model: the delay between ``send``
  and ``deliver`` is the scheduling of the network's perform and output
  tasks, so messages between different pairs race arbitrarily while each
  ``(sender, receiver)`` pair stays FIFO (per-endpoint buffers are FIFO);
* an ``f``-resilient network may fall silent once more than ``f`` of its
  endpoints crash — and Theorem 9 therefore applies verbatim: processes
  communicating only through an ``f``-resilient network (with any
  reliable registers on the side) cannot solve ``(f+1)``-resilient
  consensus, which is the 2002 report's claim as a corollary.

The module also provides pairwise channels (one service per ordered
pair), for topologies where different links have different resilience.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..types.service_type import FailureObliviousServiceType, ServiceResult
from .oblivious import CanonicalFailureObliviousService


def send(target: Hashable, message: Hashable) -> tuple:
    """The ``send(j, m)`` invocation: transmit ``m`` to endpoint ``j``."""
    return ("send", target, message)


def deliver(sender: Hashable, message: Hashable) -> tuple:
    """The ``deliver(i, m)`` response: receipt of ``m`` from ``i``."""
    return ("deliver", sender, message)


def network_type(
    endpoints: Sequence, messages: Sequence, *, strict: bool = False
) -> FailureObliviousServiceType:
    """The service type of the asynchronous reliable FIFO network.

    **Unknown targets.**  By default (``strict=False``) a
    ``send(j, m)`` whose target ``j`` is not in ``endpoints`` is
    *accepted and silently discarded*: the invocation set contains every
    3-tuple starting with ``"send"``, and ``delta1`` performs the send
    as a legal, total step that delivers nothing.  This mirrors a
    datagram network that routes to nowhere, and keeps the type total —
    but it can hide protocol bugs (a typoed endpoint never errors).

    With ``strict=True`` the endpoint set is treated as static and
    closed: sends to unknown targets are **not invocations of the
    type** (``contains_invocation`` rejects them, so the service never
    accepts the ``invoke`` as an input), and a stray one reaching
    ``delta1`` anyway raises ``ValueError``.  :class:`Channel` uses
    strict mode — a directed channel's two endpoints are fixed at
    construction, so an unknown target is always a bug.
    """
    endpoints = tuple(endpoints)
    messages = tuple(messages)

    def delta1(invocation, endpoint, value) -> Sequence[ServiceResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "send"):
            raise ValueError(f"network: unknown invocation {invocation!r}")
        _, target, message = invocation
        if target not in endpoints:
            if strict:
                raise ValueError(
                    f"network: send to unknown target {target!r} "
                    f"(endpoints are {endpoints!r})"
                )
            # Sends to unknown targets vanish (still a legal, total step).
            return (({}, value),)
        return (({target: (deliver(endpoint, message),)}, value),)

    def delta2(global_task, value) -> Sequence[ServiceResult]:
        raise ValueError("network has no global tasks")

    def member(invocation) -> bool:
        if not (
            isinstance(invocation, tuple)
            and len(invocation) == 3
            and invocation[0] == "send"
        ):
            return False
        return invocation[1] in endpoints if strict else True

    return FailureObliviousServiceType(
        name="async-network",
        initial_values=((),),  # the network keeps no value state
        invocations=tuple(
            send(target, message) for target in endpoints for message in messages
        ),
        responses=tuple(
            deliver(sender, message)
            for sender in endpoints
            for message in messages
        ),
        global_tasks=(),
        delta1=delta1,
        delta2=delta2,
        contains_invocation=member,
    )


class AsynchronousNetwork(CanonicalFailureObliviousService):
    """An f-resilient asynchronous reliable FIFO network service."""

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        messages: Sequence,
        resilience: int,
        name: str | None = None,
    ) -> None:
        endpoints = tuple(endpoints)
        super().__init__(
            service_type=network_type(endpoints, messages),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"net[{service_id}]",
        )


def channel_id(sender: Hashable, receiver: Hashable) -> tuple:
    """The id of the directed channel ``sender -> receiver``."""
    return ("chan", sender, receiver)


class Channel(CanonicalFailureObliviousService):
    """A single directed FIFO channel as a 2-endpoint network.

    Pairwise channels let a system give different links different
    resilience — the "arbitrary connection pattern" freedom Theorems 2
    and 9 explicitly allow.

    The endpoint set of a channel is static (fixed at construction), so
    the channel uses the network type's *strict* mode: a send addressed
    to anything but the channel's two endpoints is rejected as a
    non-invocation instead of silently vanishing.
    """

    def __init__(
        self,
        sender: Hashable,
        receiver: Hashable,
        messages: Sequence,
        resilience: int = 1,
        name: str | None = None,
    ) -> None:
        endpoints = (sender, receiver)
        super().__init__(
            service_type=network_type(endpoints, messages, strict=True),
            endpoints=endpoints,
            resilience=resilience,
            service_id=channel_id(sender, receiver),
            name=name if name is not None else f"chan[{sender}->{receiver}]",
        )


def deliveries_in_trace(trace, endpoint, service_id) -> list[tuple]:
    """The ``(sender, message)`` pairs delivered to ``endpoint``."""
    received = []
    for action in trace:
        if action.kind != "respond":
            continue
        service, target, response = action.args
        if service != service_id or target != endpoint:
            continue
        if isinstance(response, tuple) and response[0] == "deliver":
            received.append((response[1], response[2]))
    return received
