"""The canonical f-resilient failure-oblivious service (Fig. 4, Section 5.1).

A failure-oblivious service generalizes an atomic object in three ways:

* a ``perform`` step may depend on *which* endpoint's invocation buffer
  is being serviced (``delta1`` takes the endpoint);
* a ``perform`` step may place any number of responses in any subset of
  the response buffers (its result is a *response map*), instead of just
  one response to the invoker;
* the service has spontaneous ``compute`` steps driven by *global
  tasks*, not triggered by any invocation, which may likewise deliver
  responses to any endpoints.

The key constraint — the defining property of the class — is that no
``perform`` or ``compute`` outcome may depend on knowledge of failure
events: ``delta1`` and ``delta2`` do not see the ``failed`` set.  The
``failed`` set influences only the *dummy* actions that let the service
fall silent once resilience is exceeded (Fig. 4): a ``dummy_compute`` is
enabled when more than ``f`` endpoints have failed or all endpoints have
failed.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from ..types.service_type import (
    FailureObliviousServiceType,
    ResponseMap,
    from_sequential,
)
from ..types.sequential import SequentialType
from .base import CanonicalServiceBase, ServiceState


class CanonicalFailureObliviousService(CanonicalServiceBase):
    """The canonical f-resilient failure-oblivious service of Fig. 4."""

    def __init__(
        self,
        service_type: FailureObliviousServiceType,
        endpoints: Sequence,
        resilience: int,
        service_id: Hashable,
        name: str | None = None,
    ) -> None:
        super().__init__(
            service_id=service_id,
            endpoints=endpoints,
            resilience=resilience,
            name=name if name is not None else f"oblivious[{service_id}]",
        )
        self.service_type = service_type
        self._response_set = frozenset(service_type.responses)

    # -- subclass contract -----------------------------------------------------

    def initial_values(self) -> Iterable[Hashable]:
        return self.service_type.initial_values

    def accepts_invocation(self, invocation: Any) -> bool:
        return self.service_type.is_invocation(invocation)

    def accepts_response(self, response: Any) -> bool:
        return response in self._response_set

    def global_task_names(self) -> tuple[Hashable, ...]:
        return self.service_type.global_tasks

    def perform_results(
        self, state: ServiceState, endpoint, invocation
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Apply ``delta1(a, i, val)`` — failure-oblivious by construction.

        Note that ``state.failed`` is deliberately not passed: the class
        constraint is enforced structurally, not by convention.
        """
        return self.service_type.apply_perform(invocation, endpoint, state.val)

    def compute_results(
        self, state: ServiceState, global_task
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Apply ``delta2(g, val)`` — again without the failed set."""
        return self.service_type.apply_compute(global_task, state.val)


def atomic_object_as_oblivious_service(
    sequential_type: SequentialType,
    endpoints: Sequence,
    resilience: int,
    service_id: Hashable,
    name: str | None = None,
) -> CanonicalFailureObliviousService:
    """The atomic object of type ``T`` as a failure-oblivious service.

    Section 5.1 observes that ``CanonicalAtomicObject(T, J, f, k)`` is a
    special case of ``CanonicalFailureObliviousService(U, J, f, k)`` where
    ``U`` is derived from ``T`` by :func:`repro.types.from_sequential`.
    The test suite verifies that the two automata are step-for-step
    equivalent.
    """
    return CanonicalFailureObliviousService(
        service_type=from_sequential(sequential_type),
        endpoints=endpoints,
        resilience=resilience,
        service_id=service_id,
        name=name,
    )
