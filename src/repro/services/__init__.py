"""Canonical services (paper Figs. 1, 4-11).

Every service automaton the paper defines, implemented over the I/O
automaton substrate: atomic objects, reliable registers, failure-
oblivious services (with totally ordered broadcast as the worked
example), general services, and the two failure detectors P and <>P.
"""

from .atomic import CanonicalAtomicObject, wait_free_atomic_object
from .base import CanonicalServiceBase, ServiceState
from .broadcast import (
    DELIVERY_TASK,
    TotallyOrderedBroadcast,
    bcast,
    delivered_sequence,
    is_prefix,
    rcv,
    totally_ordered_broadcast_type,
)
from .failure_detectors import (
    IMPERFECT,
    LEADER,
    MODE_SWITCH_TASK,
    PERFECT,
    EventuallyPerfectFailureDetector,
    OmegaFailureDetector,
    PerfectFailureDetector,
    eventually_perfect_failure_detector_type,
    leader_of,
    leaders_in_trace,
    omega_type,
    perfect_failure_detector_type,
    suspect,
    suspicions_in_trace,
)
from .general import CanonicalGeneralService, oblivious_service_as_general
from .network import (
    AsynchronousNetwork,
    Channel,
    channel_id,
    deliver,
    deliveries_in_trace,
    network_type,
    send,
)
from .oblivious import (
    CanonicalFailureObliviousService,
    atomic_object_as_oblivious_service,
)
from .register import CanonicalRegister, read, write

__all__ = [
    "AsynchronousNetwork",
    "CanonicalAtomicObject",
    "CanonicalFailureObliviousService",
    "CanonicalGeneralService",
    "CanonicalRegister",
    "CanonicalServiceBase",
    "Channel",
    "DELIVERY_TASK",
    "EventuallyPerfectFailureDetector",
    "IMPERFECT",
    "LEADER",
    "MODE_SWITCH_TASK",
    "OmegaFailureDetector",
    "PERFECT",
    "PerfectFailureDetector",
    "ServiceState",
    "TotallyOrderedBroadcast",
    "atomic_object_as_oblivious_service",
    "bcast",
    "channel_id",
    "deliver",
    "deliveries_in_trace",
    "delivered_sequence",
    "eventually_perfect_failure_detector_type",
    "is_prefix",
    "leader_of",
    "leaders_in_trace",
    "network_type",
    "oblivious_service_as_general",
    "omega_type",
    "perfect_failure_detector_type",
    "rcv",
    "send",
    "read",
    "suspect",
    "suspicions_in_trace",
    "totally_ordered_broadcast_type",
    "wait_free_atomic_object",
    "write",
]
