"""Canonical reliable registers (Section 2.1.3).

A *canonical register* is a canonical atomic object whose sequential
type is read/write; the paper assumes registers to be reliable, i.e.
wait-free: ``(|J| - 1)``-resilient multi-writer multi-reader registers.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..types.registry import read_write_type
from ..types.sequential import Value
from .atomic import CanonicalAtomicObject


class CanonicalRegister(CanonicalAtomicObject):
    """A canonical wait-free multi-writer multi-reader register.

    ``values`` is the *sample* of the value domain used for enumerating
    analyses; writes of any hashable value are always accepted (the
    read/write type's invocation set is open).  With ``open_domain=True``
    the response signature is opened too, so registers can carry
    structured values (sequence-numbered records, embedded views, ...)
    without enumerating the full domain — used by constructions like the
    atomic snapshot whose register contents grow structurally.
    """

    def __init__(
        self,
        register_id: Hashable,
        endpoints: Sequence,
        values: Sequence[Value],
        initial: Value | None = None,
        name: str | None = None,
        open_domain: bool = False,
    ) -> None:
        endpoints = tuple(endpoints)
        self.open_domain = open_domain
        super().__init__(
            sequential_type=read_write_type(values, initial),
            endpoints=endpoints,
            resilience=len(endpoints) - 1,
            service_id=register_id,
            name=name if name is not None else f"register[{register_id}]",
        )

    def accepts_response(self, response) -> bool:
        if self.open_domain:
            return response == ("ack",) or (
                isinstance(response, tuple)
                and len(response) == 2
                and response[0] == "value"
            )
        return super().accepts_response(response)


def read() -> tuple:
    """The ``read`` invocation of a register."""
    return ("read",)


def write(value: Value) -> tuple:
    """The ``write(v)`` invocation of a register."""
    return ("write", value)
