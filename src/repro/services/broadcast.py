"""Totally ordered broadcast as a failure-oblivious service (Section 5.2).

The paper's worked example of a failure-oblivious service that is *not*
an atomic object: one ``bcast(m)`` invocation produces ``rcv(m, i)``
responses at *every* endpoint, which no atomic object can express (one
invocation, many responses).

The service type ``U`` (Figs. 5-7):

* ``val`` is a single ``msgs`` queue of ``(message, sender)`` pairs that
  have been totally ordered; initially empty (Fig. 5);
* ``delta1`` (Fig. 6) processes ``bcast(m)`` from endpoint ``i`` by
  appending ``(m, i)`` to ``msgs`` — no responses yet;
* ``delta2`` (Fig. 7) has a single global task ``g``: if ``msgs`` is
  nonempty it pops the head ``(m, i)`` and appends ``rcv(m, i)`` to every
  endpoint's response buffer; if empty it is a no-op (keeping ``delta2``
  total).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..types.service_type import (
    FailureObliviousServiceType,
    ServiceResult,
    broadcast_response,
)
from .oblivious import CanonicalFailureObliviousService

#: The single global task name of the totally ordered broadcast service.
DELIVERY_TASK = "g"


def bcast(message: Hashable) -> tuple:
    """The ``bcast(m)`` invocation."""
    return ("bcast", message)


def rcv(message: Hashable, sender) -> tuple:
    """The ``rcv(m, i)`` response: receipt of ``m`` from sender ``i``."""
    return ("rcv", message, sender)


def totally_ordered_broadcast_type(
    messages: Sequence[Hashable], endpoints: Sequence
) -> FailureObliviousServiceType:
    """The service type of Figs. 5-7 over a finite message alphabet ``M``."""
    messages = tuple(messages)
    endpoints = tuple(endpoints)

    def delta1(invocation, endpoint, value) -> Sequence[ServiceResult]:
        if not (isinstance(invocation, tuple) and invocation[0] == "bcast"):
            raise ValueError(f"to-broadcast: unknown invocation {invocation!r}")
        message = invocation[1]
        # Fig. 6: add (m, i) to the end of msgs; B(j) empty for all j.
        return (({}, value + ((message, endpoint),)),)

    def delta2(global_task, value) -> Sequence[ServiceResult]:
        if global_task != DELIVERY_TASK:
            raise ValueError(f"to-broadcast: unknown global task {global_task!r}")
        if not value:
            # Fig. 7 case (b): msgs empty — no-op, keeping delta2 total.
            return (({}, value),)
        # Fig. 7 case (a): deliver head(msgs) to every endpoint.
        message, sender = value[0]
        return ((broadcast_response(endpoints, rcv(message, sender)), value[1:]),)

    def member(invocation) -> bool:
        return (
            isinstance(invocation, tuple)
            and len(invocation) == 2
            and invocation[0] == "bcast"
        )

    return FailureObliviousServiceType(
        name="totally-ordered-broadcast",
        initial_values=((),),
        invocations=tuple(bcast(message) for message in messages),
        responses=tuple(
            rcv(message, endpoint)
            for message in messages
            for endpoint in endpoints
        ),
        global_tasks=(DELIVERY_TASK,),
        delta1=delta1,
        delta2=delta2,
        contains_invocation=member,
    )


class TotallyOrderedBroadcast(CanonicalFailureObliviousService):
    """The canonical f-resilient totally ordered broadcast service.

    An f-resilient failure-oblivious service for message alphabet ``M``,
    endpoint set ``J``, and index ``k`` (Section 5.2).
    """

    #: Endpoint permutations are sound once ``msgs`` entries and ``rcv``
    #: responses have their sender fields relabeled (the hooks below);
    #: ``delta1``/``delta2`` are otherwise endpoint-oblivious.
    supports_endpoint_symmetry = True

    #: ``delta1`` enqueues without responding and the single global task
    #: ``g`` delivers from the queue head — the FIFO-pipeline shape the
    #: partial-order reduction exploits.  Responses go to *every*
    #: endpoint, so ``por_responses_to_invoker_only`` stays ``False``.
    por_queue_pipeline = True

    def symmetry_relabel_val(self, val, perm: dict):
        return tuple((message, perm.get(sender, sender)) for message, sender in val)

    def symmetry_relabel_response(self, response, perm: dict):
        if isinstance(response, tuple) and response[0] == "rcv":
            return ("rcv", response[1], perm.get(response[2], response[2]))
        return response

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence,
        messages: Sequence[Hashable],
        resilience: int,
        name: str | None = None,
    ) -> None:
        endpoints = tuple(endpoints)
        super().__init__(
            service_type=totally_ordered_broadcast_type(messages, endpoints),
            endpoints=endpoints,
            resilience=resilience,
            service_id=service_id,
            name=name if name is not None else f"tob[{service_id}]",
        )


def delivered_sequence(trace, endpoint, service_id) -> tuple:
    """Extract the ``rcv`` responses delivered to ``endpoint`` from a trace.

    Helper used by the total-order property checks: in every execution,
    the sequences delivered at any two endpoints must be prefix-related
    (one is a prefix of the other), and each must be a prefix of the
    sequence in which messages were ordered.
    """
    deliveries = []
    for action in trace:
        if action.kind != "respond":
            continue
        service, target, response = action.args
        if service != service_id or target != endpoint:
            continue
        if isinstance(response, tuple) and response[0] == "rcv":
            deliveries.append((response[1], response[2]))
    return tuple(deliveries)


def is_prefix(shorter: Sequence, longer: Sequence) -> bool:
    """True iff ``shorter`` is a prefix of ``longer``."""
    return len(shorter) <= len(longer) and tuple(longer[: len(shorter)]) == tuple(
        shorter
    )
