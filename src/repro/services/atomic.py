"""The canonical f-resilient atomic object (Fig. 1, Section 2.1.3).

``CanonicalAtomicObject(T, J, f, k)`` exhibits *all* allowable behavior
of an ``f``-resilient atomic (linearizable) object of sequential type
``T`` at endpoint set ``J``:

* invocations at each endpoint queue in a FIFO ``inv_buffer``;
* an internal ``perform_{i,k}`` step consumes the head invocation at
  endpoint ``i``, applies ``T.delta`` to the current value ``val``, and
  queues the chosen response in ``resp_buffer(i)``;
* an output ``b_{i,k}`` delivers the head response;
* once endpoint ``i`` fails, or more than ``f`` endpoints fail, the
  ``dummy_perform_{i,k}`` and ``dummy_output_{i,k}`` actions become
  enabled, allowing (but not forcing) the object to stop serving —
  under the I/O automaton fairness rule this is exactly
  ``f``-resilience: the object may fall silent, but it never violates
  the sequential type.

The object is nondeterministic in two ways the paper points out:
interleavings of steps for different endpoints, and nondeterminism of
``T.delta`` itself (e.g. for k-set-consensus).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from ..types.sequential import SequentialType
from ..types.service_type import ResponseMap, single_response
from .base import CanonicalServiceBase, ServiceState


class CanonicalAtomicObject(CanonicalServiceBase):
    """The canonical f-resilient atomic object automaton of Fig. 1."""

    #: Endpoint permutations are sound: ``T.delta`` never inspects the
    #: endpoint identity (``perform_results`` passes only the invocation
    #: and the value), so buffers move with their endpoint unchanged.
    supports_endpoint_symmetry = True

    #: Every ``perform`` responds via ``single_response(endpoint, ...)``
    #: to the invoking endpoint only — the contract backing the
    #: endpoint-local ample sets of the partial-order reduction.
    por_responses_to_invoker_only = True

    def __init__(
        self,
        sequential_type: SequentialType,
        endpoints: Sequence,
        resilience: int,
        service_id: Hashable,
        name: str | None = None,
    ) -> None:
        super().__init__(
            service_id=service_id,
            endpoints=endpoints,
            resilience=resilience,
            name=name if name is not None else f"atomic[{service_id}]",
        )
        self.sequential_type = sequential_type
        self._response_set = frozenset(sequential_type.responses)

    # -- subclass contract -----------------------------------------------------

    def initial_values(self) -> Iterable[Hashable]:
        return self.sequential_type.initial_values

    def accepts_invocation(self, invocation: Any) -> bool:
        return self.sequential_type.is_invocation(invocation)

    def accepts_response(self, response: Any) -> bool:
        return response in self._response_set

    def perform_results(
        self, state: ServiceState, endpoint, invocation
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Apply ``T.delta``: one response to the invoking endpoint."""
        return tuple(
            (single_response(endpoint, response), new_value)
            for response, new_value in self.sequential_type.apply(
                invocation, state.val
            )
        )

    def compute_results(self, state: ServiceState, global_task):
        raise ValueError("atomic objects have no global tasks")


def wait_free_atomic_object(
    sequential_type: SequentialType,
    endpoints: Sequence,
    service_id: Hashable,
    name: str | None = None,
) -> CanonicalAtomicObject:
    """A wait-free (reliable) canonical atomic object.

    Wait-free means ``(|J| - 1)``-resilient (Section 2.1.3): the object
    keeps responding to every connected non-failed process regardless of
    how many other connected processes fail.
    """
    return CanonicalAtomicObject(
        sequential_type=sequential_type,
        endpoints=endpoints,
        resilience=len(tuple(endpoints)) - 1,
        service_id=service_id,
        name=name,
    )
