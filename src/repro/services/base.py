"""Shared machinery for canonical services.

Every canonical service in the paper — the atomic object of Fig. 1, the
failure-oblivious service of Fig. 4, and the general service of Fig. 8 —
has the same skeleton:

* per-endpoint FIFO *invocation buffers* and *response buffers*
  (``inv_buffer(i)``, ``resp_buffer(i)``);
* a ``val`` component holding the service-type value;
* a ``failed`` set recording which endpoints have received ``fail_i``;
* input actions ``a_{i,k}`` (enqueue an invocation) and ``fail_i``;
* output actions ``b_{i,k}`` (dequeue the head response);
* per-endpoint ``i``-perform and ``i``-output tasks, each containing a
  *dummy* action enabled once endpoint ``i`` has failed or more than
  ``f`` endpoints have failed — the device by which the basic I/O
  automaton fairness definition expresses ``f``-resilience
  (Section 2.1.3).

This module provides the common state value, the buffer mechanics, and
the signature/task plumbing; subclasses implement what a ``perform`` (and
possibly ``compute``) step does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from ..ioa.actions import (
    Action,
    dummy_output,
    dummy_perform,
)
from ..ioa.automaton import Automaton, State, Task, Transition
from ..obs import sinks as _obs
from ..obs.events import FAILURE_INJECTED, SERVICE_INVOCATION
from ..types.service_type import Endpoint, ResponseMap


@dataclass(frozen=True, slots=True)
class ServiceState:
    """State of a canonical service.

    ``val`` is the service-type value; ``inv_buffers`` and
    ``resp_buffers`` hold one FIFO tuple per endpoint (indexed by the
    service's endpoint ordering); ``failed`` is the set of endpoints that
    have received ``fail``.
    """

    val: Hashable
    inv_buffers: tuple[tuple, ...]
    resp_buffers: tuple[tuple, ...]
    failed: frozenset

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"val={self.val!r} inv={self.inv_buffers!r} "
            f"resp={self.resp_buffers!r} failed={sorted(self.failed)!r}"
        )


class CanonicalServiceBase(Automaton):
    """Common base of the three canonical service automata.

    Parameters mirror the paper: ``service_id`` is the unique index ``k``,
    ``endpoints`` the set ``J`` (given as a sequence to fix an ordering),
    and ``resilience`` the level ``f``.
    """

    def __init__(
        self,
        service_id: Hashable,
        endpoints: Sequence[Endpoint],
        resilience: int,
        name: str | None = None,
    ) -> None:
        if not endpoints:
            raise ValueError("endpoint set J must be nonempty")
        if len(set(endpoints)) != len(endpoints):
            raise ValueError("endpoints must be distinct")
        if resilience < 0:
            raise ValueError("resilience f must be nonnegative")
        self.service_id = service_id
        self.endpoints: tuple[Endpoint, ...] = tuple(endpoints)
        self.resilience = resilience
        self.name = name if name is not None else f"service[{service_id}]"
        self._endpoint_index = {
            endpoint: position for position, endpoint in enumerate(self.endpoints)
        }

    # -- reduction declarations (see repro.engine.reduction) -------------------

    #: Opt-in to endpoint symmetry reduction: declares that permuting the
    #: service's endpoints (via :meth:`permute_state`) maps executions to
    #: executions.  Refused by default — a subclass whose semantics are
    #: endpoint-sensitive must not set this.
    supports_endpoint_symmetry = False

    #: Declares that every ``perform`` responds only to the invoking
    #: endpoint (atomic objects).  Licenses the endpoint-local ample sets
    #: of the partial-order reduction; must stay ``False`` for services
    #: whose performs or computes respond at other endpoints (e.g.
    #: totally ordered broadcast).
    por_responses_to_invoker_only = False

    #: Declares the FIFO-pipeline shape: performs enqueue into ``val``
    #: without responding, and a single global task delivers from the
    #: queue head.  Licenses the pipeline ``compute`` ample singleton.
    por_queue_pipeline = False

    def symmetry_relabel_val(self, val: Hashable, perm: dict) -> Hashable:
        """Relabel endpoint identities inside ``val`` under ``perm``.

        Identity by default — correct whenever ``val`` never mentions
        endpoints.  Subclasses whose value embeds endpoint identities
        (e.g. the TOB message queue of ``(message, sender)`` pairs) must
        override.
        """
        return val

    def symmetry_relabel_invocation(self, invocation: Any, perm: dict) -> Any:
        """Relabel endpoint identities inside a buffered invocation."""
        return invocation

    def symmetry_relabel_response(self, response: Any, perm: dict) -> Any:
        """Relabel endpoint identities inside a buffered response."""
        return response

    def permute_state(self, state: ServiceState, perm: dict) -> ServiceState:
        """The action of endpoint permutation ``perm`` on a service state.

        Buffer contents move with their endpoint (the permuted state's
        buffers at ``perm[e]``'s position are the original buffers of
        ``e``), with entries relabeled via the ``symmetry_relabel_*``
        hooks; ``val`` is relabeled; the failed set is mapped through
        ``perm``.  Only meaningful when ``supports_endpoint_symmetry``
        and ``perm`` preserves this service's endpoint set.
        """
        inv = list(state.inv_buffers)
        resp = list(state.resp_buffers)
        for endpoint in self.endpoints:
            source = self.endpoint_position(endpoint)
            target = self.endpoint_position(perm.get(endpoint, endpoint))
            inv[target] = tuple(
                self.symmetry_relabel_invocation(entry, perm)
                for entry in state.inv_buffers[source]
            )
            resp[target] = tuple(
                self.symmetry_relabel_response(entry, perm)
                for entry in state.resp_buffers[source]
            )
        return ServiceState(
            val=self.symmetry_relabel_val(state.val, perm),
            inv_buffers=tuple(inv),
            resp_buffers=tuple(resp),
            failed=frozenset(perm.get(e, e) for e in state.failed),
        )

    # -- subclass contract ----------------------------------------------------

    def initial_values(self) -> Iterable[Hashable]:
        """The initial ``val`` values (``V0`` of the service type)."""
        raise NotImplementedError

    def accepts_invocation(self, invocation: Any) -> bool:
        """Membership in the type's invocation set."""
        raise NotImplementedError

    def accepts_response(self, response: Any) -> bool:
        """Membership in the type's response set."""
        raise NotImplementedError

    def perform_results(
        self, state: ServiceState, endpoint: Endpoint, invocation: Any
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Outcomes of performing ``invocation`` at ``endpoint``."""
        raise NotImplementedError

    def global_task_names(self) -> tuple[Hashable, ...]:
        """Names of global tasks (empty for atomic objects)."""
        return ()

    def compute_results(
        self, state: ServiceState, global_task: Hashable
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Outcomes of a spontaneous compute step for ``global_task``."""
        raise NotImplementedError

    # -- endpoints --------------------------------------------------------------

    def endpoint_position(self, endpoint: Endpoint) -> int:
        """Position of ``endpoint`` in the buffer tuples."""
        return self._endpoint_index[endpoint]

    def is_endpoint(self, endpoint: Endpoint) -> bool:
        """True iff ``endpoint`` belongs to ``J``."""
        return endpoint in self._endpoint_index

    @property
    def is_wait_free(self) -> bool:
        """Wait-free (reliable) means ``(|J| - 1)``-resilient (Section 2.1.3)."""
        return self.resilience >= len(self.endpoints) - 1

    # -- resilience conditions (Fig. 1 / Fig. 4 preconditions) -----------------

    def dummy_enabled(self, state: ServiceState, endpoint: Endpoint) -> bool:
        """Precondition of ``dummy_perform``/``dummy_output`` for ``endpoint``.

        Enabled when either ``endpoint`` has failed or strictly more than
        ``f`` endpoints of this service have failed (Fig. 1).
        """
        return endpoint in state.failed or len(state.failed) > self.resilience

    def dummy_compute_enabled(self, state: ServiceState) -> bool:
        """Precondition of ``dummy_compute`` (Fig. 4).

        Global tasks may fall silent once the total number of failures
        exceeds ``f``, or all of the endpoints have failed.
        """
        return len(state.failed) > self.resilience or all(
            endpoint in state.failed for endpoint in self.endpoints
        )

    # -- state helpers -----------------------------------------------------------

    def make_start_state(self, value: Hashable) -> ServiceState:
        """A start state with empty buffers, no failures, and ``val=value``."""
        empty = tuple(() for _ in self.endpoints)
        return ServiceState(
            val=value, inv_buffers=empty, resp_buffers=empty, failed=frozenset()
        )

    def start_states(self) -> Iterable[State]:
        return (self.make_start_state(value) for value in self.initial_values())

    def inv_buffer(self, state: ServiceState, endpoint: Endpoint) -> tuple:
        """The invocation buffer of ``endpoint``."""
        return state.inv_buffers[self.endpoint_position(endpoint)]

    def resp_buffer(self, state: ServiceState, endpoint: Endpoint) -> tuple:
        """The response buffer of ``endpoint``."""
        return state.resp_buffers[self.endpoint_position(endpoint)]

    def buffer(self, state: ServiceState, endpoint: Endpoint) -> tuple[tuple, tuple]:
        """The pair ``buffer(i) = (inv_buffer(i), resp_buffer(i))``."""
        return (
            self.inv_buffer(state, endpoint),
            self.resp_buffer(state, endpoint),
        )

    def _with_buffers(
        self,
        state: ServiceState,
        val: Hashable,
        inv_buffers: tuple[tuple, ...],
        resp_buffers: tuple[tuple, ...],
    ) -> ServiceState:
        return ServiceState(
            val=val,
            inv_buffers=inv_buffers,
            resp_buffers=resp_buffers,
            failed=state.failed,
        )

    def _append_responses(
        self, resp_buffers: tuple[tuple, ...], response_map: ResponseMap
    ) -> tuple[tuple, ...]:
        updated = list(resp_buffers)
        for endpoint, responses in response_map.items():
            if not responses:
                continue
            position = self.endpoint_position(endpoint)
            updated[position] = updated[position] + tuple(responses)
        return tuple(updated)

    # -- signature ----------------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        if action.kind == "invoke":
            service, endpoint, invocation = action.args
            return (
                service == self.service_id
                and self.is_endpoint(endpoint)
                and self.accepts_invocation(invocation)
            )
        if action.kind == "fail":
            return self.is_endpoint(action.args[0])
        return False

    def is_output(self, action: Action) -> bool:
        if action.kind != "respond":
            return False
        service, endpoint, response = action.args
        return (
            service == self.service_id
            and self.is_endpoint(endpoint)
            and self.accepts_response(response)
        )

    def is_internal(self, action: Action) -> bool:
        if action.kind in ("perform", "dummy_perform", "dummy_output"):
            service, endpoint = action.args
            return service == self.service_id and self.is_endpoint(endpoint)
        if action.kind in ("compute", "dummy_compute"):
            service, task_name = action.args
            return service == self.service_id and task_name in self.global_task_names()
        return False

    # -- tasks ---------------------------------------------------------------------

    def tasks(self) -> Sequence[Task]:
        per_endpoint = [
            Task(self.name, ("perform", endpoint)) for endpoint in self.endpoints
        ] + [Task(self.name, ("output", endpoint)) for endpoint in self.endpoints]
        global_tasks = [
            Task(self.name, ("compute", task_name))
            for task_name in self.global_task_names()
        ]
        return tuple(per_endpoint + global_tasks)

    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        assert isinstance(state, ServiceState)
        kind = task.name[0]
        if kind == "perform":
            return self._enabled_perform(state, task.name[1])
        if kind == "output":
            return self._enabled_output(state, task.name[1])
        if kind == "compute":
            return self._enabled_compute(state, task.name[1])
        raise KeyError(f"unknown task {task}")

    def _enabled_perform(
        self, state: ServiceState, endpoint: Endpoint
    ) -> list[Transition]:
        transitions: list[Transition] = []
        pending = self.inv_buffer(state, endpoint)
        if pending:
            invocation = pending[0]
            position = self.endpoint_position(endpoint)
            popped = list(state.inv_buffers)
            popped[position] = popped[position][1:]
            popped_buffers = tuple(popped)
            for response_map, new_value in self.perform_results(
                state, endpoint, invocation
            ):
                resp_buffers = self._append_responses(state.resp_buffers, response_map)
                post = self._with_buffers(state, new_value, popped_buffers, resp_buffers)
                transitions.append(
                    Transition(
                        Action("perform", (self.service_id, endpoint)), post
                    )
                )
        if self.dummy_enabled(state, endpoint):
            transitions.append(
                Transition(Action("dummy_perform", (self.service_id, endpoint)), state)
            )
        return transitions

    def _enabled_output(
        self, state: ServiceState, endpoint: Endpoint
    ) -> list[Transition]:
        transitions: list[Transition] = []
        pending = self.resp_buffer(state, endpoint)
        if pending:
            response = pending[0]
            position = self.endpoint_position(endpoint)
            popped = list(state.resp_buffers)
            popped[position] = popped[position][1:]
            post = self._with_buffers(
                state, state.val, state.inv_buffers, tuple(popped)
            )
            transitions.append(
                Transition(
                    Action("respond", (self.service_id, endpoint, response)), post
                )
            )
        if self.dummy_enabled(state, endpoint):
            transitions.append(
                Transition(Action("dummy_output", (self.service_id, endpoint)), state)
            )
        return transitions

    def _enabled_compute(
        self, state: ServiceState, task_name: Hashable
    ) -> list[Transition]:
        transitions: list[Transition] = []
        for response_map, new_value in self.compute_results(state, task_name):
            resp_buffers = self._append_responses(state.resp_buffers, response_map)
            post = self._with_buffers(
                state, new_value, state.inv_buffers, resp_buffers
            )
            transitions.append(
                Transition(Action("compute", (self.service_id, task_name)), post)
            )
        if self.dummy_compute_enabled(state):
            transitions.append(
                Transition(
                    Action("dummy_compute", (self.service_id, task_name)), state
                )
            )
        return transitions

    # -- inputs ----------------------------------------------------------------------

    def apply_input(self, state: State, action: Action) -> State:
        assert isinstance(state, ServiceState)
        if action.kind == "invoke":
            _, endpoint, invocation = action.args
            # Services receive inputs from composition plumbing that has no
            # tracer parameter to thread, so this layer reports through the
            # process-wide tracer (repro.obs.sinks.use_tracer) instead.
            if _obs.CURRENT.enabled:
                _obs.CURRENT.emit(
                    SERVICE_INVOCATION,
                    process=endpoint,
                    service=self.service_id,
                    invocation=invocation,
                )
            position = self.endpoint_position(endpoint)
            inv_buffers = list(state.inv_buffers)
            inv_buffers[position] = inv_buffers[position] + (invocation,)
            return ServiceState(
                val=state.val,
                inv_buffers=tuple(inv_buffers),
                resp_buffers=state.resp_buffers,
                failed=state.failed,
            )
        if action.kind == "fail":
            endpoint = action.args[0]
            if _obs.CURRENT.enabled:
                _obs.CURRENT.emit(
                    FAILURE_INJECTED,
                    process=endpoint,
                    service=self.service_id,
                    endpoint=endpoint,
                )
            return ServiceState(
                val=state.val,
                inv_buffers=state.inv_buffers,
                resp_buffers=state.resp_buffers,
                failed=state.failed | {endpoint},
            )
        raise ValueError(f"{self.name}: {action} is not an input of this service")
