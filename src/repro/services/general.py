"""The canonical f-resilient general service (Fig. 8, Section 6.1).

A *general*, or potentially failure-aware, service drops the defining
constraint of the failure-oblivious class: its ``delta1`` and ``delta2``
relations receive the current ``failed`` set, so ``perform`` and
``compute`` outcomes may depend on which processes have failed.  Failure
detectors (Section 6.2) are the motivating examples.

Everything else — buffers, dummy actions, the resilience semantics — is
exactly as in the failure-oblivious service of Fig. 4; the only code
difference is that the two transition relations are instantiated with
``failed`` (Fig. 8).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from ..types.service_type import (
    FailureObliviousServiceType,
    GeneralServiceType,
    ResponseMap,
    oblivious_as_general,
)
from .base import CanonicalServiceBase, ServiceState


class CanonicalGeneralService(CanonicalServiceBase):
    """The canonical f-resilient general service of Fig. 8."""

    def __init__(
        self,
        service_type: GeneralServiceType,
        endpoints: Sequence,
        resilience: int,
        service_id: Hashable,
        name: str | None = None,
    ) -> None:
        super().__init__(
            service_id=service_id,
            endpoints=endpoints,
            resilience=resilience,
            name=name if name is not None else f"general[{service_id}]",
        )
        self.service_type = service_type
        self._response_set = frozenset(service_type.responses)

    # -- subclass contract -----------------------------------------------------

    def initial_values(self) -> Iterable[Hashable]:
        return self.service_type.initial_values

    def accepts_invocation(self, invocation: Any) -> bool:
        return self.service_type.is_invocation(invocation)

    def accepts_response(self, response: Any) -> bool:
        return response in self._response_set

    def global_task_names(self) -> tuple[Hashable, ...]:
        return self.service_type.global_tasks

    def perform_results(
        self, state: ServiceState, endpoint, invocation
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Apply ``delta1(a, i, val, failed)`` — failure-aware (Fig. 8)."""
        return self.service_type.apply_perform(
            invocation, endpoint, state.val, state.failed
        )

    def compute_results(
        self, state: ServiceState, global_task
    ) -> Sequence[tuple[ResponseMap, Hashable]]:
        """Apply ``delta2(g, val, failed)`` — failure-aware (Fig. 8)."""
        return self.service_type.apply_compute(global_task, state.val, state.failed)


def oblivious_service_as_general(
    service_type: FailureObliviousServiceType,
    endpoints: Sequence,
    resilience: int,
    service_id: Hashable,
    name: str | None = None,
) -> CanonicalGeneralService:
    """A failure-oblivious service embedded as a general service.

    Section 6.1 observes that ``CanonicalFailureObliviousService(U, ...)``
    is the special case of ``CanonicalGeneralService(U', ...)`` in which
    the lifted relations ignore the failed set.  The test suite verifies
    step-for-step equivalence of the two automata.
    """
    return CanonicalGeneralService(
        service_type=oblivious_as_general(service_type),
        endpoints=endpoints,
        resilience=resilience,
        service_id=service_id,
        name=name,
    )
