"""Exhaustive exploration of failure-free state spaces.

The valence notions of Section 3.2 quantify over *all* failure-free
extensions of an execution.  For the finite-state instances this library
analyzes, that quantification is decided exactly by exhausting the
reachable task-transition graph.  This module provides:

* :func:`explore` — breadth-first reachability from a root state under
  the deterministic task semantics, producing a :class:`StateGraph`;
* :class:`StateGraph` — the explored graph with task-labeled edges;
* :func:`reachable_decision_sets` — for every explored state, the set of
  values decided in *some* failure-free extension; computed as a
  backward fixpoint over the graph (sound for cyclic graphs), this is
  precisely the semantic ingredient of valence.

Budgets: exploration takes a ``max_states`` bound and raises
:class:`ExplorationBudget` when exceeded, so callers can distinguish
"exhausted the space" from "the space is too large" — the latter is the
signal to switch to the bounded adversary of
:mod:`repro.analysis.adversary`.

:func:`explore` is now a thin compatibility wrapper over
:class:`repro.engine.ExplorationEngine` (one worker, ``max_states``
budget) — the engine adds worker-pool parallelism, fingerprint visited
sets, checkpoints, and deadlines behind the same semantics, and its
budget error :class:`~repro.engine.budget.BudgetExhausted` subclasses
:class:`ExplorationBudget`, so existing handlers keep working while the
message now reports the progress made before exhaustion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator

from ..ioa.actions import Action
from ..ioa.automaton import State, Task
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from .view import DeterministicSystemView


class ExplorationBudget(RuntimeError):
    """The reachable state space exceeded the caller's budget."""


class StateSet:
    """An insertion-ordered set of states.

    Iteration follows first-discovery order, so every consumer that
    walks ``graph.states`` — witness searches, similarity scans, valence
    histograms — is deterministic across runs instead of following the
    salted iteration order of a builtin ``set``.  Equality is
    order-insensitive set equality, including against plain
    ``set``/``frozenset`` values.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[State] = ()) -> None:
        self._items: dict = dict.fromkeys(items)

    def add(self, state: State) -> None:
        self._items[state] = None

    def update(self, items: Iterable[State]) -> None:
        self._items.update(dict.fromkeys(items))

    def __contains__(self, state: object) -> bool:
        return state in self._items

    def __iter__(self) -> Iterator[State]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StateSet):
            return self._items.keys() == other._items.keys()
        if isinstance(other, (set, frozenset)):
            return self._items.keys() == other
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateSet({list(self._items)!r})"

    def __reduce__(self):
        return (StateSet, (list(self._items),))


@dataclass
class StateGraph:
    """An explored failure-free task-transition graph.

    ``edges[s]`` lists the outgoing ``(task, action, successor)`` triples
    of ``s``; ``states`` is the insertion-ordered :class:`StateSet` of
    explored states (discovery order).  The graph is exactly the
    reachable fragment of the paper's ``G(C)`` collapsed from executions
    to states — sound because, under the determinism assumptions,
    valence is a function of the final state (two executions ending in
    the same state have the same failure-free extensions).
    """

    root: State
    states: StateSet = field(default_factory=StateSet)
    edges: dict = field(default_factory=dict)

    def successors(self, state: State) -> list[tuple[Task, Action, State]]:
        """Outgoing edges of ``state``."""
        return self.edges.get(state, [])

    def __len__(self) -> int:
        return len(self.states)

    def edge_count(self) -> int:
        """Total number of transitions in the graph."""
        return sum(len(out) for out in self.edges.values())


def explore(
    view: DeterministicSystemView,
    root: State,
    max_states: int | None = None,
    prune: Callable[[State], bool] | None = None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    *,
    budget=None,
    store=None,
) -> StateGraph:
    """Breadth-first exploration of the failure-free reachable graph.

    ``budget`` is a :class:`repro.engine.Budget` bounding the search
    (defaulting to the historical ``Budget(max_states=200_000)``);
    ``max_states`` survives as a deprecated alias for
    ``budget=Budget(max_states=...)`` and emits a
    :class:`DeprecationWarning`.

    ``store`` selects a :mod:`repro.engine.store` backend for the
    run's states — a URI string (``"sqlite:/path"``, ``"mmap:/path"``,
    ``"memory"``), a :class:`repro.engine.StoreConfig`, or a
    :class:`repro.engine.StateStore` instance.  ``None`` (the default)
    keeps the classic in-RAM exploration.  Note this function still
    returns the fully materialized graph; for disk-bound runs that must
    not decode every state back into RAM, use
    :meth:`repro.engine.ExplorationEngine.scan`.

    ``prune`` may cut off exploration below selected states (used, e.g.,
    to stop below states where every process has decided — their
    extensions cannot change any decision set).  Pruned states are kept
    in the graph but get no outgoing edges.

    With ``tracer`` enabled, one ``state_explored`` event is emitted per
    expanded state; ``metrics`` accumulates the ``explore.*`` counters
    (states, transitions, runs, budget exhaustions) either way — the
    counters survive an :class:`ExplorationBudget` raise, so budget
    failures still report how much work was done.

    This is a compatibility wrapper: the actual search lives in
    :class:`repro.engine.ExplorationEngine`, driven here with one worker.
    Callers needing parallelism, checkpoints, or resume should construct
    an engine directly.
    """
    # Imported lazily: repro.engine imports this module at load time.
    from ..engine import ExplorationEngine
    from ..engine.budget import resolve_budget

    engine = ExplorationEngine(
        workers=1, budget=resolve_budget(budget, max_states), store=store
    )
    return engine.explore(view, root, prune=prune, tracer=tracer, metrics=metrics)


def reachable_decision_sets(
    graph: StateGraph, view: DeterministicSystemView
) -> dict[State, frozenset]:
    """For each state, the union of decision values over all extensions.

    A value ``v`` is in the set of ``s`` iff some failure-free extension
    of an execution ending in ``s`` contains a ``decide(v)`` — i.e. some
    state reachable from ``s`` records ``v``.  Computed as a backward
    fixpoint: start from each state's own recorded decisions and
    propagate along reversed edges until stable.  Fixpoint iteration (as
    opposed to a DAG pass) is required because protocol graphs contain
    cycles (processes spin on dummy steps).
    """
    local: dict[State, frozenset] = {
        state: view.decision_values(state) for state in graph.states
    }
    # Build the reverse adjacency once.
    predecessors: dict[State, list[State]] = {state: [] for state in graph.states}
    for state, out in graph.edges.items():
        for _, _, successor in out:
            predecessors[successor].append(state)
    result = dict(local)
    worklist: deque = deque(graph.states)
    queued = set(graph.states)
    while worklist:
        state = worklist.popleft()
        queued.discard(state)
        for predecessor in predecessors[state]:
            merged = result[predecessor] | result[state]
            if merged != result[predecessor]:
                result[predecessor] = merged
                if predecessor not in queued:
                    worklist.append(predecessor)
                    queued.add(predecessor)
    return result


def find_state(
    graph: StateGraph, predicate: Callable[[State], bool]
) -> State | None:
    """Some explored state satisfying ``predicate``, or ``None``."""
    for state in graph.states:
        if predicate(state):
            return state
    return None


def shortest_task_path(
    graph: StateGraph, source: State, target_predicate: Callable[[State], bool]
) -> list[tuple[Task, Action, State]] | None:
    """BFS for the shortest edge path from ``source`` to a target state.

    Returns the list of ``(task, action, state)`` edges, or ``None`` when
    no target is reachable within the explored graph.
    """
    if target_predicate(source):
        return []
    parents: dict[State, tuple[State, Task, Action]] = {}
    frontier: deque = deque([source])
    seen = {source}
    while frontier:
        state = frontier.popleft()
        for task, action, successor in graph.successors(state):
            if successor in seen:
                continue
            seen.add(successor)
            parents[successor] = (state, task, action)
            if target_predicate(successor):
                # Reconstruct the path.
                path: list[tuple[Task, Action, State]] = []
                cursor = successor
                while cursor != source:
                    previous, task_used, action_used = parents[cursor]
                    path.append((task_used, action_used, cursor))
                    cursor = previous
                path.reverse()
                return path
            frontier.append(successor)
    return None
