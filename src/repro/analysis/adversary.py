"""The end-to-end boosting adversary (Theorems 2, 9, 10, executable).

Given a *candidate* system — processes plus canonical ``f``-resilient
services and reliable registers that claims to solve
``(f+1)``-resilient consensus — :func:`refute_candidate` runs the
paper's whole argument as a pipeline and returns a machine-checkable
verdict:

1. **Lemma 4**: construct the initialization chain and find a bivalent
   initialization (or, failing that, a directly broken one: a blocked
   initialization is already a failure-free termination violation).
2. **Lemma 5 / Fig. 3**: run the hook construction from the bivalent
   initialization.  On a finite instance the construction either finds a
   hook or finds a (state, cursor) cycle — an infinite *fair*,
   *failure-free* execution through bivalent (hence undecided) states,
   i.e. a termination violation with zero failures.
3. **Lemma 8**: if a hook was found, execute the case analysis, which on
   canonical services always lands in a similarity case, producing a
   pair of similar states of opposite valence.
4. **Lemmas 6/7**: run the constructive refutation from the similar
   pair: fail ``f + 1`` processes, silence the exceeded services, run
   fairly — and certify either a termination violation or a decision
   contradiction.

For systems too large to explore exhaustively,
:func:`bounded_undecided_run` provides the bounded adversary used by the
benchmarks: a fair decision-avoiding scheduler that keeps the candidate
undecided for as many steps as the budget allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Hashable

from ..ioa.automaton import State, Task
from ..obs.events import PHASE
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..obs.spans import end_span, span as _span, start_span
from ..system.system import DistributedSystem
from .hook import FairCycle, Hook, Lemma8Report, find_hook, lemma8_case_analysis
from .refutation import (
    DecisionContradiction,
    RefutationOutcome,
    TerminationViolation,
    refute_from_similarity,
)
from .valence import (
    Lemma4Result,
    Valence,
    analyze_valence,
    lemma4_bivalent_initialization,
)
from .view import DeterministicSystemView


@dataclass
class Verdict:
    """The outcome of the full adversary pipeline on a candidate.

    ``refuted`` is True when the pipeline produced a concrete violation
    of the candidate's (f+1)-resilient consensus claim.  ``mechanism``
    names which stage produced it:

    * ``"blocked-initialization"`` — some initialization has no deciding
      failure-free extension at all;
    * ``"fair-bivalent-cycle"`` — the Fig. 3 construction runs forever
      (failure-free fair undecided execution);
    * ``"similarity-termination"`` — Lemma 6/7 attack: survivors of
      ``f + 1`` failures never decide;
    * ``"similarity-contradiction"`` — Lemma 6/7 replay produced
      contradictory decisions (a safety-level break).
    """

    refuted: bool
    mechanism: str
    lemma4: Lemma4Result | None = None
    hook: Hook | None = None
    fair_cycle: FairCycle | None = None
    lemma8: Lemma8Report | None = None
    refutation: RefutationOutcome | None = None
    detail: str = ""

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        status = "refuted" if self.refuted else "not refuted"
        return f"verdict: {status} via {self.mechanism}: {self.detail}"

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol).

        Nested stage results are included through their own ``to_json``
        whenever the stage ran, so one document captures the whole
        pipeline.
        """
        return {
            "refuted": self.refuted,
            "mechanism": self.mechanism,
            "detail": self.detail,
            "lemma4": None if self.lemma4 is None else self.lemma4.to_json(),
            "hook": None if self.hook is None else self.hook.to_json(),
            "fair_cycle": (
                None if self.fair_cycle is None else self.fair_cycle.to_json()
            ),
            "lemma8": None if self.lemma8 is None else self.lemma8.to_json(),
            "refutation": (
                None if self.refutation is None else self.refutation.to_json()
            ),
        }


def default_resilience(system: DistributedSystem) -> int:
    """The theorem's ``f``: the common resilience of the resilient services.

    When the system has no resilient services (registers only — the FLP
    setting) the theorem instance is ``f = 0``.
    """
    if not system.services:
        return 0
    return min(service.resilience for service in system.services)


def refute_candidate(
    system: DistributedSystem,
    resilience: int | None = None,
    max_states: int | None = None,
    horizon: int = 100_000,
    failure_aware_services: Collection[Hashable] = (),
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    engine=None,
    reduction=None,
    *,
    budget=None,
    store=None,
) -> Verdict:
    """Run the full Theorem 2/9/10 adversary pipeline against a candidate.

    ``budget`` is a :class:`repro.engine.Budget` bounding every
    exploration of the pipeline (default ``Budget(max_states=200_000)``);
    when it carries a deadline, each post-exploration stage (hook search,
    silencing runs) also gets a fresh wall-clock allowance of
    ``deadline_seconds``.  ``max_states`` survives as a deprecated alias
    for ``budget=Budget(max_states=...)`` and warns once for the whole
    pipeline.

    ``tracer``/``metrics`` (defaulting to the disabled singletons) are
    threaded through every stage — Lemma 4 exploration, the Fig. 3 hook
    search, and the Lemma 6/7 silencing runs — so one registry observes
    the whole pipeline and one JSONL trace captures it end to end.

    ``engine`` may be a preconfigured
    :class:`repro.engine.ExplorationEngine`; every exploration of the
    pipeline (the Lemma 4 chain and the hook-search graph) then runs
    through it, gaining its workers, checkpointing, and resume behavior.
    When the engine's budget carries a deadline it also bounds the
    post-exploration stages (hook search, silencing runs): each stage
    gets a fresh wall-clock allowance of ``deadline_seconds``, matching
    the per-exploration semantics of :class:`repro.engine.Budget`.

    ``reduction`` may be a :class:`repro.engine.ReductionConfig`.  The
    Lemma 4 chain uses it as given (valence is a pure reachability
    question, so symmetry and POR are both sound there); the hook-search
    exploration strips POR — the Fig. 3 walk needs every single-step
    edge, which ample sets drop — keeping only the symmetry quotient.
    Reduction composes with a parallel and/or store-backed engine: the
    reduced view is what the engine (and its workers) expand, whatever
    holds the visited set.

    ``store`` selects a :mod:`repro.engine.store` backend (URI string,
    :class:`repro.engine.StoreConfig`, or
    :class:`repro.engine.StateStore`) for every exploration of the
    pipeline; a configured directory is namespaced per exploration by
    root digest.  Mutually exclusive with ``engine`` — a preconfigured
    engine already carries its own store choice.
    """
    # Lazy: repro.engine imports this package at load time.
    from ..engine.budget import resolve_budget

    budget = resolve_budget(budget, max_states)
    if store is not None:
        if engine is not None:
            raise TypeError(
                "pass store= or a preconfigured engine=, not both "
                "(construct the engine with store=... instead)"
            )
        from ..engine import ExplorationEngine

        engine = ExplorationEngine(workers=1, budget=budget, store=store)
    f = default_resilience(system) if resilience is None else resilience
    if reduction is not None and reduction.enabled:
        import dataclasses as _dataclasses

        hook_reduction = (
            _dataclasses.replace(reduction, por=False) if reduction.symmetry else None
        )
    else:
        reduction = None
        hook_reduction = None

    def stage_deadline():
        """A fresh per-stage Deadline from the governing budget, or None."""
        governing = engine.budget if engine is not None else budget
        if governing is None or governing.deadline_seconds is None:
            return None
        from ..engine import Deadline

        return Deadline(governing.deadline_seconds)

    pipeline_span = start_span(tracer, "pipeline", resilience=f)

    def done(verdict: Verdict) -> Verdict:
        """Close the pipeline span with the verdict's outcome attached."""
        end_span(
            tracer,
            pipeline_span,
            mechanism=verdict.mechanism,
            refuted=verdict.refuted,
        )
        return verdict

    try:
        if tracer.enabled:
            tracer.emit(PHASE, stage="lemma4", resilience=f)
        with _span(tracer, "lemma4", resilience=f):
            lemma4 = lemma4_bivalent_initialization(
                system,
                tracer=tracer,
                metrics=metrics,
                engine=engine,
                reduction=reduction,
                budget=budget,
            )
        if lemma4.bivalent is None:
            # No bivalent initialization: for a correct candidate this is
            # impossible (Lemma 4), so something is already broken.  A blocked
            # initialization is a direct failure-free termination violation.
            blocked = next(
                (entry for entry in lemma4.chain if entry.valence is Valence.BLOCKED),
                None,
            )
            if blocked is not None:
                return done(
                    Verdict(
                        refuted=True,
                        mechanism="blocked-initialization",
                        lemma4=lemma4,
                        detail=(
                            "initialization with assignment "
                            f"{dict(blocked.assignment)!r} has no deciding "
                            "failure-free extension"
                        ),
                    )
                )
            return done(
                Verdict(
                    refuted=False,
                    mechanism="no-bivalent-initialization",
                    lemma4=lemma4,
                    detail=(
                        "all initializations univalent; the candidate dodges the "
                        "bivalence argument on this instance (check validity "
                        "separately)"
                    ),
                )
            )
        start = lemma4.bivalent.execution.final_state
        if tracer.enabled:
            tracer.emit(PHASE, stage="hook-search")
        with _span(tracer, "hook-search"):
            analysis = analyze_valence(
                system,
                start,
                tracer=tracer,
                metrics=metrics,
                engine=engine,
                reduction=hook_reduction,
                budget=budget,
            )
            outcome, stats = find_hook(
                analysis, start, tracer=tracer, metrics=metrics, deadline=stage_deadline()
            )
        if isinstance(outcome, FairCycle):
            return done(
                Verdict(
                    refuted=not outcome.decisions_on_cycle,
                    mechanism="fair-bivalent-cycle",
                    lemma4=lemma4,
                    fair_cycle=outcome,
                    detail=(
                        f"Fig. 3 construction cycles after {len(outcome.prefix_tasks)} "
                        f"steps with period {len(outcome.cycle_tasks)}: an infinite "
                        "fair failure-free execution on which no process decides"
                    ),
                )
            )
        hook = outcome
        report = lemma8_case_analysis(system, analysis, hook)
        if report.violation is None:
            # Commutation cases cannot coexist with a genuine hook (the two
            # endpoint states would be equal, hence equal-valent); reaching
            # this branch means the explored instance contradicts Lemma 8's
            # premises, which the test suite asserts never happens.
            return done(
                Verdict(
                    refuted=False,
                    mechanism="hook-commuted",
                    lemma4=lemma4,
                    hook=hook,
                    lemma8=report,
                    detail=(
                        "hook tasks commuted — inconsistent hook, candidate "
                        "not refuted"
                    ),
                )
            )
        if tracer.enabled:
            tracer.emit(PHASE, stage="refutation", claim=report.claim)
        with _span(tracer, "refutation", claim=report.claim):
            refutation = refute_from_similarity(
                system,
                report.violation,
                resilience=f,
                horizon=horizon,
                failure_aware_services=failure_aware_services,
                tracer=tracer,
                metrics=metrics,
                deadline=stage_deadline(),
            )
        if isinstance(refutation, TerminationViolation):
            mechanism = "similarity-termination"
            refuted = True
            detail = (
                f"failing J={sorted(refutation.victims, key=str)!r} leaves "
                f"survivors undecided "
                f"({'exact cycle' if refutation.exact else 'horizon'})"
            )
        else:
            mechanism = "similarity-contradiction"
            refuted = True
            detail = (
                f"decider {refutation.decider!r} reaches "
                f"{refutation.value_from_s0!r} from the 0-valent side and "
                f"{refutation.value_from_s1!r} from the 1-valent side"
            )
        return done(
            Verdict(
                refuted=refuted,
                mechanism=mechanism,
                lemma4=lemma4,
                hook=hook,
                lemma8=report,
                refutation=refutation,
                detail=detail,
            )
        )
    except BaseException:
        end_span(tracer, pipeline_span, status="error")
        raise


@dataclass
class UndecidedRun:
    """Result of the bounded decision-avoiding adversary."""

    steps: int
    decided: bool
    visited_states: int

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        outcome = "forced to decide" if self.decided else "still undecided"
        return (
            f"adversary: {outcome} after {self.steps} steps "
            f"({self.visited_states} states visited)"
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "steps": self.steps,
            "decided": self.decided,
            "visited_states": self.visited_states,
        }


@dataclass
class ProbeResult:
    """Result of a seeded random fairness probe (see
    :func:`random_decision_probe`)."""

    seed: int
    steps: int
    decisions: dict

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        if self.decisions:
            decided = ", ".join(
                f"{process}={value!r}" for process, value in self.decisions.items()
            )
            return f"probe[seed={self.seed}]: decided after {self.steps} steps ({decided})"
        return f"probe[seed={self.seed}]: undecided after {self.steps} steps"

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        from ..obs.events import encode_value

        return {
            "seed": self.seed,
            "steps": self.steps,
            "decisions": encode_value(self.decisions),
        }


def random_decision_probe(
    system: DistributedSystem,
    proposals: dict | None = None,
    seed: int = 0,
    max_steps: int = 50_000,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> ProbeResult:
    """A failure-free sanity run under a seeded random fair schedule.

    Initializes the candidate (alternating 0/1 proposals unless
    ``proposals`` is given) and drives it with a
    :class:`~repro.ioa.scheduler.RandomScheduler` seeded with ``seed``
    until the first decision or ``max_steps``.  The probe is fully
    deterministic given the seed — the reproducibility handle the CLI's
    ``--seed`` flag exposes — and, being driven through the instrumented
    ``run``, any traced probe replays bit-for-bit.
    """
    from ..ioa.scheduler import RandomScheduler, run

    if proposals is None:
        proposals = {
            endpoint: index % 2
            for index, endpoint in enumerate(system.process_ids)
        }
    start = system.initialization(proposals).final_state
    execution = run(
        system,
        RandomScheduler(seed),
        max_steps,
        start=start,
        stop=lambda ex: bool(system.decisions(ex.final_state)),
        tracer=tracer,
        metrics=metrics,
    )
    if metrics.enabled:
        metrics.counter("probe.runs").inc()
        metrics.counter("probe.steps").inc(len(execution))
    return ProbeResult(
        seed=seed,
        steps=len(execution),
        decisions=dict(system.decisions(execution.final_state)),
    )


def bounded_undecided_run(
    system: DistributedSystem,
    start: State,
    max_steps: int | None = None,
    metrics: MetricsRegistry = NULL_METRICS,
    *,
    budget=None,
) -> UndecidedRun:
    """A fair scheduler that postpones decisions as long as it can.

    The step bound comes from ``max_steps`` or, equivalently, from
    ``budget=Budget(max_transitions=...)`` (each adversary step is one
    transition).  Exactly one of the two must be given; passing both —
    or a budget without ``max_transitions`` — is a :class:`TypeError`.

    Round-robin over tasks, but a task whose unique next action would
    record a decision is skipped whenever any other applicable task
    exists.  ``decided=True`` in the result means the adversary was
    eventually *forced*: it reached a state where every applicable task
    decides.  This mirrors the paper exactly — on a safe candidate the
    failure-free Fig. 3 construction terminates (with a hook), so
    one-sided decision-avoidance cannot stall forever; indefinite
    stalling requires the failure-injecting attacks of
    :mod:`repro.analysis.refutation` (Lemmas 6-7).  The benchmarks use
    this adversary to measure how far decisions can be postponed on
    instances too large for exact valence analysis.
    """
    if budget is not None:
        if max_steps is not None:
            raise TypeError("pass max_steps or budget=, not both")
        if budget.max_transitions is None:
            raise TypeError(
                "bounded_undecided_run needs Budget(max_transitions=...)"
            )
        max_steps = budget.max_transitions
    elif max_steps is None:
        raise TypeError("pass max_steps or budget=Budget(max_transitions=...)")
    view = DeterministicSystemView(system)
    tasks = view.tasks
    state = start
    cursor = 0
    seen = set()
    for step_index in range(max_steps):
        seen.add(state)
        fallback: tuple[int, State] | None = None
        advanced = False
        for offset in range(len(tasks)):
            position = (cursor + offset) % len(tasks)
            task = tasks[position]
            step = view.step(state, task)
            if step is None:
                continue
            _, post = step
            if view.decisions(post) != view.decisions(state):
                if fallback is None:
                    fallback = (position, post)
                continue
            state = post
            cursor = (position + 1) % len(tasks)
            advanced = True
            break
        if not advanced:
            if fallback is None:
                return UndecidedRun(
                    steps=step_index, decided=False, visited_states=len(seen)
                )
            position, post = fallback
            state = post
            cursor = (position + 1) % len(tasks)
            return UndecidedRun(
                steps=step_index + 1, decided=True, visited_states=len(seen)
            )
    return UndecidedRun(steps=max_steps, decided=False, visited_states=len(seen))
