"""Linearizability checking for concurrent histories (Herlihy-Wing).

The paper defines atomic objects by reference to linearizability
[Herlihy & Wing 1990]: a concurrent object is atomic when every
concurrent history is equivalent to some legal sequential history that
respects the real-time order of non-overlapping operations.  The
canonical atomic object of Fig. 1 is *constructed* to guarantee this;
this module provides the independent check, so the test suite can verify
the construction (and any user-built implementation) against the
definition rather than against itself.

A *history* is the sequence of invocation and response events extracted
from a trace.  :func:`check_linearizable` decides linearizability of a
complete history against a :class:`~repro.types.SequentialType` by the
classic Wing-Gong tree search: repeatedly pick some minimal (invoked,
real-time-enabled) operation, run it through ``delta``, match its
response, and backtrack on failure.  Worst case exponential, fine for
the test-sized histories this library produces.

Pending (unresponded) invocations are handled per the definition: they
may either be completed with some legal response or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..ioa.actions import Action
from ..types.sequential import SequentialType, Value


@dataclass(frozen=True)
class Operation:
    """One operation of a history.

    ``response`` is ``None`` for a pending operation.  ``invoked_at`` and
    ``responded_at`` are event indices, defining the real-time partial
    order: ``a`` precedes ``b`` iff ``a.responded_at < b.invoked_at``.
    """

    endpoint: Hashable
    invocation: Hashable
    response: Hashable | None
    invoked_at: int
    responded_at: int | None

    @property
    def is_pending(self) -> bool:
        return self.response is None


def history_from_trace(
    trace: Sequence[Action], service_id: Hashable
) -> list[Operation]:
    """Extract the per-endpoint matched operation history from a trace.

    Matches each ``respond(k, i, b)`` to the oldest unmatched
    ``invoke(k, i, a)`` at the same endpoint (the FIFO discipline of the
    canonical buffers).  Unmatched invocations become pending operations.
    """
    open_invocations: dict[Hashable, list[tuple[int, Hashable]]] = {}
    operations: list[Operation] = []
    order: dict[int, int] = {}  # insertion index of completed operations
    for index, action in enumerate(trace):
        if action.kind == "invoke" and action.args[0] == service_id:
            _, endpoint, invocation = action.args
            open_invocations.setdefault(endpoint, []).append((index, invocation))
        elif action.kind == "respond" and action.args[0] == service_id:
            _, endpoint, response = action.args
            pending = open_invocations.get(endpoint)
            if not pending:
                raise ValueError(
                    f"response {action} without a matching invocation"
                )
            invoked_at, invocation = pending.pop(0)
            operations.append(
                Operation(
                    endpoint=endpoint,
                    invocation=invocation,
                    response=response,
                    invoked_at=invoked_at,
                    responded_at=index,
                )
            )
    for endpoint, pending in open_invocations.items():
        for invoked_at, invocation in pending:
            operations.append(
                Operation(
                    endpoint=endpoint,
                    invocation=invocation,
                    response=None,
                    invoked_at=invoked_at,
                    responded_at=None,
                )
            )
    return operations


def _precedes(a: Operation, b: Operation) -> bool:
    """Real-time order: ``a`` finished before ``b`` started."""
    return a.responded_at is not None and a.responded_at < b.invoked_at


def check_linearizable(
    operations: Sequence[Operation],
    sequential_type: SequentialType,
    initial_value: Value | None = None,
) -> tuple[Operation, ...] | None:
    """Find a linearization of ``operations``, or ``None``.

    Returns the witnessing sequential order (completed operations plus
    any pending operations that had to take effect) when the history is
    linearizable with respect to ``sequential_type``; ``None`` otherwise.
    """
    initial = (
        sequential_type.initial_values[0] if initial_value is None else initial_value
    )
    operations = list(operations)
    total = len(operations)

    def search(done: frozenset, value: Value, order: tuple) -> tuple | None:
        if all(
            index in done or operations[index].is_pending
            for index in range(total)
        ):
            return order
        for index in range(total):
            if index in done:
                continue
            operation = operations[index]
            # Minimality: no other unlinearized completed operation
            # precedes this one in real time.
            blocked = any(
                other_index not in done
                and _precedes(operations[other_index], operation)
                for other_index in range(total)
                if other_index != index
            )
            if blocked:
                continue
            outcomes = sequential_type.apply(operation.invocation, value)
            for response, new_value in outcomes:
                if operation.is_pending or response == operation.response:
                    result = search(
                        done | {index}, new_value, order + (operations[index],)
                    )
                    if result is not None:
                        return result
            if not operation.is_pending:
                # A completed, real-time-minimal operation that cannot be
                # linearized next *could* still be deferred past concurrent
                # operations; keep trying other choices.
                continue
        return None

    # Pending operations may also be dropped entirely; model that by
    # first trying the search where pending ops are optional (the search
    # treats them as skippable via the completion test above) — the
    # search already allows omitting them because the termination check
    # only requires completed operations to be placed.
    return search(frozenset(), initial, ())


def trace_is_linearizable(
    trace: Sequence[Action],
    service_id: Hashable,
    sequential_type: SequentialType,
) -> bool:
    """Convenience: extract the history from a trace and check it."""
    operations = history_from_trace(trace, service_id)
    return check_linearizable(operations, sequential_type) is not None


def find_non_linearizable_witness(
    trace: Sequence[Action],
    service_id: Hashable,
    sequential_type: SequentialType,
) -> list[Operation] | None:
    """Return the extracted history when it is NOT linearizable.

    Diagnostic inverse of :func:`trace_is_linearizable`, used by tests
    that construct deliberately broken histories.
    """
    operations = history_from_trace(trace, service_id)
    if check_linearizable(operations, sequential_type) is None:
        return operations
    return None
