"""State similarity (Section 3.5 and its Section 6.3 refinement).

Two states "look the same" to all components except one distinguished
process ``j`` (*j-similarity*) or one service ``k`` (*k-similarity*):

* ``s0`` and ``s1`` are **j-similar** iff every process other than
  ``P_j`` has the same state, and every service/register has the same
  ``val`` and the same ``buffer(i)`` for every endpoint ``i != j``;
* ``s0`` and ``s1`` are **k-similar** iff every process has the same
  state and every service/register other than ``S_k`` has the same
  state.

Lemmas 6 and 7 prove that univalent executions ending in similar states
have the same valence — the engine of the hook refutation (Lemma 8).

For systems containing failure-aware services (Section 6.3) the
definitions are relaxed: the states of *general* services are not
compared at all (they may differ arbitrarily), because the failing
extension used in the lemmas silences every failure-aware service.  Pass
the general services' ids as ``ignore_services``.

This module implements the predicates exactly, plus a scanner that
searches an explored graph for similar pairs of opposite valence — the
empirical form of "Lemmas 6 and 7 hold on this instance."
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Collection, Hashable, Iterable

from ..ioa.automaton import State
from ..system.system import DistributedSystem
from .valence import Valence, ValenceAnalysis


def j_similar(
    system: DistributedSystem,
    s0: State,
    s1: State,
    j: Hashable,
    ignore_services: Collection[Hashable] = (),
) -> bool:
    """The j-similarity predicate of Section 3.5.

    ``ignore_services`` implements the Section 6.3 variant: ids listed
    there (the failure-aware services) are exempt from comparison.
    """
    ignored = frozenset(ignore_services)
    for endpoint in system.process_ids:
        if endpoint == j:
            continue
        if system.process_state(s0, endpoint) != system.process_state(s1, endpoint):
            return False
    for service_id in tuple(system.service_ids) + tuple(system.register_ids):
        if service_id in ignored:
            continue
        if system.service_val(s0, service_id) != system.service_val(s1, service_id):
            return False
        service = system.service(service_id)
        for endpoint in service.endpoints:
            if endpoint == j:
                continue
            if system.service_buffer(s0, service_id, endpoint) != system.service_buffer(
                s1, service_id, endpoint
            ):
                return False
    return True


def k_similar(
    system: DistributedSystem,
    s0: State,
    s1: State,
    k: Hashable,
    ignore_services: Collection[Hashable] = (),
) -> bool:
    """The k-similarity predicate of Section 3.5 (Section 6.3 variant via
    ``ignore_services``)."""
    ignored = frozenset(ignore_services) | {k}
    for endpoint in system.process_ids:
        if system.process_state(s0, endpoint) != system.process_state(s1, endpoint):
            return False
    for service_id in tuple(system.service_ids) + tuple(system.register_ids):
        if service_id in ignored:
            continue
        if system.service_state(s0, service_id) != system.service_state(s1, service_id):
            return False
    return True


def similar_in_some_way(
    system: DistributedSystem,
    s0: State,
    s1: State,
    ignore_services: Collection[Hashable] = (),
) -> tuple[str, Hashable] | None:
    """Find a witness that ``s0``/``s1`` are j- or k-similar, if any.

    Returns ``("process", j)`` or ``("service", k)``, or ``None`` when
    the states are not similar in either sense for any index.  Registers
    count as services for k-similarity (the paper's ``k`` ranges over
    ``K``, but checking ``R`` too only strengthens the verified claim).
    """
    for j in system.process_ids:
        if j_similar(system, s0, s1, j, ignore_services):
            return ("process", j)
    for k in tuple(system.service_ids) + tuple(system.register_ids):
        if k in frozenset(ignore_services):
            continue
        if k_similar(system, s0, s1, k, ignore_services):
            return ("service", k)
    return None


@dataclass(frozen=True)
class SimilarityViolation:
    """A pair of similar univalent states with opposite valence.

    On a system that truly solves consensus, Lemmas 6 and 7 forbid such
    pairs; finding one demonstrates (constructively, per the lemmas'
    proofs) that the candidate must fail termination under ``f + 1``
    failures — the failing extension from either state cannot decide
    consistently.
    """

    kind: str  # "process" (Lemma 6) or "service" (Lemma 7)
    index: Hashable  # the distinguished j or k
    s0: State  # 0-valent endpoint
    s1: State  # 1-valent endpoint


def scan_for_similarity_violations(
    system: DistributedSystem,
    analysis: ValenceAnalysis,
    ignore_services: Collection[Hashable] = (),
    max_pairs: int | None = None,
) -> list[SimilarityViolation]:
    """Scan an explored graph for Lemma 6/7 violations.

    Compares every 0-valent state against every 1-valent state (up to
    ``max_pairs`` pairs) and reports all similar pairs found.  Used by
    the test suite in two directions: on correct consensus services the
    result must be empty; on doomed candidates, violations found here are
    fed to :func:`repro.analysis.refutation.refute_from_similarity`.
    """
    zeros = [s for s in analysis.graph.states if analysis.valence(s) is Valence.ZERO]
    ones = [s for s in analysis.graph.states if analysis.valence(s) is Valence.ONE]
    violations: list[SimilarityViolation] = []
    examined = 0
    for s0 in zeros:
        for s1 in ones:
            examined += 1
            if max_pairs is not None and examined > max_pairs:
                return violations
            witness = similar_in_some_way(system, s0, s1, ignore_services)
            if witness is not None:
                violations.append(
                    SimilarityViolation(
                        kind=witness[0], index=witness[1], s0=s0, s1=s1
                    )
                )
    return violations


def differing_components(
    system: DistributedSystem, s0: State, s1: State
) -> list[str]:
    """Names of components whose state differs between ``s0`` and ``s1``.

    Debugging/reporting aid used by the hook case analysis: Lemma 8's
    claims are phrased as "the states can differ only in ...".
    """
    names = []
    for component in system.components:
        if system.component_state(s0, component.name) != system.component_state(
            s1, component.name
        ):
            names.append(component.name)
    return names
