"""The consensus problem specification (Section 2.2.4, Appendix B).

The paper specifies ``f``-resilient consensus *operationally* — the
system must implement the canonical ``f``-resilient consensus atomic
object — and shows (Theorem 11, Appendix B) that the operational
definition implies the classical axioms:

* **Agreement** — no two processes decide differently;
* **Validity** — any decided value was some process's input;
* **Modified termination** — in every fair execution with at most ``f``
  failures, every nonfaulty process that receives an input eventually
  decides.

This module provides execution-level checkers for the axioms (used
against every protocol in the library, correct and doomed alike), the
``k``-set-consensus generalization (at most ``k`` distinct decisions),
and a bounded-exhaustive axiom checker over all executions of a system —
the tool behind the Theorem 11/Appendix B reproduction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from ..ioa.actions import Action
from ..ioa.automaton import State
from ..ioa.execution import Execution
from ..ioa.scheduler import RoundRobinScheduler, run
from ..system.faults import FailureSchedule, no_failures
from ..system.system import DistributedSystem


@dataclass(frozen=True)
class Violation:
    """One violated consensus axiom, with a human-readable witness."""

    axiom: str
    detail: str


def check_agreement(decisions: Mapping[Hashable, Hashable]) -> list[Violation]:
    """Agreement: all decided values coincide."""
    distinct = set(decisions.values())
    if len(distinct) > 1:
        return [
            Violation(
                axiom="agreement",
                detail=f"distinct decisions {sorted(distinct, key=str)!r} "
                f"by {dict(decisions)!r}",
            )
        ]
    return []


def check_k_agreement(
    decisions: Mapping[Hashable, Hashable], k: int
) -> list[Violation]:
    """k-agreement: at most ``k`` distinct decided values (Section 4)."""
    distinct = set(decisions.values())
    if len(distinct) > k:
        return [
            Violation(
                axiom="k-agreement",
                detail=f"{len(distinct)} distinct decisions "
                f"{sorted(distinct, key=str)!r} exceed k={k}",
            )
        ]
    return []


def check_validity(
    decisions: Mapping[Hashable, Hashable],
    proposals: Mapping[Hashable, Hashable],
) -> list[Violation]:
    """Validity: every decided value is some process's proposal."""
    proposed = set(proposals.values())
    violations = []
    for decider, value in decisions.items():
        if value not in proposed:
            violations.append(
                Violation(
                    axiom="validity",
                    detail=f"{decider!r} decided {value!r}, proposals were "
                    f"{sorted(proposed, key=str)!r}",
                )
            )
    return violations


def check_modified_termination(
    decisions: Mapping[Hashable, Hashable],
    proposals: Mapping[Hashable, Hashable],
    failed: frozenset,
) -> list[Violation]:
    """Modified termination over a finished fair run.

    Every nonfaulty process that received an input must have decided.
    (Callers are responsible for running the system fairly long enough —
    e.g. :func:`run_to_quiescence`.)
    """
    violations = []
    for endpoint in proposals:
        if endpoint in failed:
            continue
        if endpoint not in decisions:
            violations.append(
                Violation(
                    axiom="modified-termination",
                    detail=f"nonfaulty inited process {endpoint!r} never decided",
                )
            )
    return violations


@dataclass
class ConsensusCheck:
    """A full axiom check of one finished run."""

    decisions: dict
    proposals: dict
    failed: frozenset
    violations: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations


def run_consensus_round(
    system: DistributedSystem,
    proposals: Mapping[Hashable, Hashable],
    failure_schedule: FailureSchedule | None = None,
    max_steps: int = 20_000,
    seed: int | None = None,
    k: int = 1,
) -> ConsensusCheck:
    """Initialize, run fairly (with optional failures), check the axioms.

    With ``seed`` set, a seeded random scheduler is used instead of
    round-robin, which is how the property-based tests sweep schedules.
    ``k`` switches the agreement check to k-agreement.
    """
    from ..ioa.scheduler import RandomScheduler

    schedule = failure_schedule if failure_schedule is not None else no_failures()
    initialization = system.initialization(dict(proposals))
    scheduler = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()

    def everyone_done(execution: Execution) -> bool:
        state = execution.final_state
        live = set(proposals) - system.failed_processes(state)
        return live <= set(system.decisions(state))

    execution = run(
        system,
        scheduler,
        max_steps=max_steps,
        start=initialization.final_state,
        inputs=schedule.as_inputs(),
        stop=everyone_done,
    )
    final = execution.final_state
    decisions = system.decisions(final)
    failed = system.failed_processes(final)
    violations = (
        (check_agreement(decisions) if k == 1 else check_k_agreement(decisions, k))
        + check_validity(decisions, proposals)
        + check_modified_termination(decisions, proposals, failed)
    )
    return ConsensusCheck(
        decisions=dict(decisions),
        proposals=dict(proposals),
        failed=failed,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Bounded-exhaustive axiom checking (Appendix B / Theorem 11)
# ---------------------------------------------------------------------------


@dataclass
class ExhaustiveCheckResult:
    """Result of checking the safety axioms over *all* bounded executions."""

    executions_checked: int
    states_visited: int
    violations: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations


def exhaustive_safety_check(
    system: DistributedSystem,
    proposals: Mapping[Hashable, Hashable],
    max_states: int = 300_000,
    k: int = 1,
    failure_choices: Sequence[Hashable] = (),
) -> ExhaustiveCheckResult:
    """Check agreement and validity over every reachable state.

    Explores the full nondeterministic transition system (every enabled
    transition of every task, plus optional ``fail`` inputs for the
    endpoints in ``failure_choices``) from the given initialization, and
    checks the safety axioms in every reachable state.  This is the
    reproduction of Theorem 11's safety half: on canonical consensus
    objects (driven by delegation processes) it visits every behavior
    and finds no violation.
    """
    initialization = system.initialization(dict(proposals))
    root = initialization.final_state
    seen = {root}
    frontier: deque = deque([root])
    violations: list[Violation] = []
    transitions_taken = 0
    while frontier:
        state = frontier.popleft()
        decisions = system.decisions(state)
        violations.extend(
            check_agreement(decisions) if k == 1 else check_k_agreement(decisions, k)
        )
        violations.extend(check_validity(decisions, proposals))
        successors = []
        for task in system.tasks():
            for transition in system.enabled(state, task):
                successors.append(transition.post)
        for endpoint in failure_choices:
            if endpoint not in system.failed_processes(state):
                successors.append(system.apply_input(state, Action("fail", (endpoint,))))
        for post in successors:
            transitions_taken += 1
            if post not in seen:
                if len(seen) >= max_states:
                    raise RuntimeError(
                        f"exhaustive check exceeded {max_states} states"
                    )
                seen.add(post)
                frontier.append(post)
        if violations:
            break
    return ExhaustiveCheckResult(
        executions_checked=transitions_taken,
        states_visited=len(seen),
        violations=violations,
    )
