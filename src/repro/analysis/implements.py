"""The implementation relation (Section 2.1.4), checkable on instances.

``A`` implements ``B`` iff they share input/output actions, every trace
of ``A`` is a trace of ``B``, and every fair trace of ``A`` is a fair
trace of ``B``.  Clause 2 gives safety (atomicity, for atomic objects);
clause 3 gives the resilience guarantee.

Full trace inclusion is undecidable in general; on the finite instances
this library analyzes it is checked by *simulation search*:
:func:`canonical_accepts_trace` decides whether a canonical service
automaton can exhibit a given external trace, by breadth-first search
over the set of canonical states consistent with each trace prefix
(allowing any number of internal steps between external actions).  The
test suites use it to verify, e.g., that the Section 6.3 boosted failure
detector's traces are traces of the canonical wait-free n-process
perfect failure detector, and that executions of the Section 4
construction project to traces of the canonical 2-set-consensus object.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..services.base import ServiceState


def internal_closure(
    automaton: Automaton,
    states: Iterable[State],
    max_states: int = 50_000,
    prune: Callable[[State], bool] | None = None,
) -> set:
    """All states reachable via internal (non-external) actions only.

    ``prune`` discards successor states for which it returns True —
    needed for services whose internal steps can queue responses without
    bound (e.g. a failure detector's compute tasks), where the raw
    closure is infinite.  See :func:`canonical_accepts_trace` for the
    buffer-based prune it installs.
    """
    closure = set(states)
    frontier: deque = deque(closure)
    while frontier:
        state = frontier.popleft()
        for task in automaton.tasks():
            for transition in automaton.enabled(state, task):
                if automaton.is_external(transition.action):
                    continue
                if transition.post in closure:
                    continue
                if prune is not None and prune(transition.post):
                    continue
                if len(closure) >= max_states:
                    raise RuntimeError("internal closure budget exceeded")
                closure.add(transition.post)
                frontier.append(transition.post)
    return closure


def _buffered_response_count(state: State) -> int | None:
    """Total queued responses of a canonical service state, else None."""
    if isinstance(state, ServiceState):
        return sum(len(buffer) for buffer in state.resp_buffers)
    return None


def canonical_accepts_trace(
    automaton: Automaton,
    trace: Sequence[Action],
    max_states: int = 50_000,
    buffer_slack: int = 1,
) -> bool:
    """Can ``automaton`` exhibit ``trace`` as a trace? (Simulation search.)

    ``trace`` must consist of external actions of ``automaton``; input
    actions are applied directly (input-enabledness), output actions must
    be producible by some task after some internal steps.  Returns True
    iff some execution of ``automaton`` has exactly this external-action
    sequence.

    For canonical service states the internal closure is pruned: states
    whose total queued responses exceed the number of output actions
    remaining in the trace (plus ``buffer_slack``) are dropped, since
    internal compute steps could otherwise queue responses without bound.
    Responses the trace never delivers may legally stay buffered, but a
    minimal witness never queues more than it delivers — except when
    queueing is a side effect of a value change, which the slack covers;
    raise ``buffer_slack`` if a legitimate trace is rejected.
    """
    remaining_outputs = sum(1 for action in trace if automaton.is_output(action))

    def prune_for(remaining: int) -> Callable[[State], bool]:
        budget = remaining + buffer_slack

        def prune(state: State) -> bool:
            buffered = _buffered_response_count(state)
            return buffered is not None and buffered > budget

        return prune

    current = internal_closure(
        automaton,
        automaton.start_states(),
        max_states,
        prune=prune_for(remaining_outputs),
    )
    for action in trace:
        if automaton.is_input(action):
            stepped = {automaton.apply_input(state, action) for state in current}
        elif automaton.is_output(action):
            remaining_outputs -= 1
            stepped = set()
            for state in current:
                for task in automaton.tasks():
                    for transition in automaton.enabled(state, task):
                        if transition.action == action:
                            stepped.add(transition.post)
        else:
            raise ValueError(f"{action} is not an external action of {automaton.name}")
        if not stepped:
            return False
        current = internal_closure(
            automaton, stepped, max_states, prune=prune_for(remaining_outputs)
        )
    return True


def first_rejected_prefix(
    automaton: Automaton,
    trace: Sequence[Action],
    max_states: int = 50_000,
) -> int | None:
    """Length of the shortest rejected prefix of ``trace``, or ``None``.

    Diagnostic companion to :func:`canonical_accepts_trace`: pinpoints
    where a trace diverges from the canonical behavior.
    """
    for length in range(1, len(trace) + 1):
        if not canonical_accepts_trace(automaton, trace[:length], max_states):
            return length
    return None


def project_trace(
    actions: Sequence[Action], automaton: Automaton
) -> tuple[Action, ...]:
    """The subsequence of ``actions`` external to ``automaton``.

    Used to project a full-system execution onto the interface of a
    canonical service before checking inclusion.
    """
    return tuple(action for action in actions if automaton.is_external(action))
