"""The hook construction (Figs. 2-3, Lemma 5) and its refutation (Lemma 8).

A *hook* is the pattern of Fig. 2: a bivalent execution ``alpha`` and two
tasks ``e``, ``e'`` such that ``e(alpha)`` is univalent with one valence
while ``e(e'(alpha))`` is univalent with the other.

:func:`find_hook` runs the path construction of Fig. 3 literally:
starting from a bivalent vertex, repeatedly take the next round-robin
task ``e`` applicable to the current execution and search (over paths
free of ``e``-labeled edges) for a descendant ``alpha'`` with
``e(alpha')`` bivalent; follow it if found, otherwise the termination of
the construction localizes a hook along the path to an opposite-deciding
descendant.  Because this library explores *finite* instances, the
construction has a third possible outcome the paper's proof rules out
for correct systems: revisiting a (state, round-robin cursor)
configuration, which pins down an **infinite fair failure-free execution
through bivalent states** — a constructive violation of the termination
property (no process ever decides on it).  That witness is returned as
:class:`FairCycle`.

:func:`lemma8_case_analysis` then executes the case analysis of Lemma 8
on a concrete hook: it computes the participants of the two tasks,
identifies which claim applies, verifies the claimed commutation or
similarity *concretely* on the instance's states, and returns the
resulting :class:`~repro.analysis.similarity.SimilarityViolation` (fed to
the refutation engine) or commutation witness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..ioa.automaton import State, Task
from ..obs.events import HOOK_VERDICT, encode_value
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..system.system import DistributedSystem
from .similarity import SimilarityViolation, j_similar, k_similar
from .valence import Valence, ValenceAnalysis
from .view import DeterministicSystemView


@dataclass(frozen=True)
class Hook:
    """A concrete hook (Fig. 2) found in the explored graph.

    ``e(alpha) = s0`` has valence ``valence0`` and
    ``e(e_prime(alpha)) = s1`` has the opposite valence ``valence1``.
    """

    alpha: State
    e: Task
    e_prime: Task
    s0: State
    alpha_prime: State
    s1: State
    valence0: Valence
    valence1: Valence

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        return (
            f"hook: e={self.e.owner}/{self.e.name!r} "
            f"e'={self.e_prime.owner}/{self.e_prime.name!r} "
            f"({self.valence0.value} vs {self.valence1.value})"
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "kind": "hook",
            "e": encode_value(self.e),
            "e_prime": encode_value(self.e_prime),
            "valence0": self.valence0.value,
            "valence1": self.valence1.value,
        }


@dataclass
class FairCycle:
    """An infinite fair failure-free execution through bivalent states.

    ``prefix_tasks`` leads from the start state to the cycle;
    ``cycle_tasks``/``cycle_states`` describe one period.  Every task of
    the system either occurs in the period or is inapplicable somewhere
    in it (fairness), no state in it records a decision, and all states
    are bivalent — so following the cycle forever is a fair failure-free
    execution on which no process ever decides.
    """

    prefix_tasks: list[Task]
    cycle_tasks: list[Task]
    cycle_states: list[State]
    decisions_on_cycle: frozenset

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        return (
            f"fair cycle: period {len(self.cycle_tasks)} after "
            f"{len(self.prefix_tasks)}-task prefix, no decisions on cycle"
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "kind": "fair_cycle",
            "prefix_length": len(self.prefix_tasks),
            "cycle_length": len(self.cycle_tasks),
            "cycle_tasks": [encode_value(task) for task in self.cycle_tasks],
            "decisions_on_cycle": encode_value(self.decisions_on_cycle),
        }


@dataclass
class HookSearchStats:
    """Instrumentation of the Fig. 3 construction."""

    outer_iterations: int = 0
    inner_bfs_expansions: int = 0
    path_length: int = 0


def _bivalent_e_free_search(
    analysis: ValenceAnalysis,
    start: State,
    e: Task,
):
    """Fig. 3 inner search.

    BFS from ``start`` over bivalent states using only non-``e`` edges,
    for a state ``alpha'`` with ``e(alpha')`` bivalent.  (Restricting to
    bivalent intermediate states is sound: a predecessor of a bivalent
    state is bivalent.)  Returns ``(alpha', path_tasks, expansions)`` or
    ``(None, None, expansions)``.
    """
    view = analysis.view
    expansions = 0
    parents: dict[State, tuple[State, Task]] = {}
    seen = {start}
    frontier: deque = deque([start])
    while frontier:
        state = frontier.popleft()
        expansions += 1
        step = view.step(state, e)
        if step is not None and analysis.is_bivalent(step[1]):
            path: list[Task] = []
            cursor = state
            while cursor != start:
                previous, task_used = parents[cursor]
                path.append(task_used)
                cursor = previous
            path.reverse()
            return state, path, expansions
        for task, _, successor in analysis.successors_of(state):
            if task == e or successor in seen:
                continue
            if not analysis.is_bivalent(successor):
                continue
            seen.add(successor)
            parents[successor] = (state, task)
            frontier.append(successor)
    return None, None, expansions


def _locate_hook_along_path(
    analysis: ValenceAnalysis,
    alpha: State,
    e: Task,
) -> Hook:
    """Termination case of Fig. 3: localize the hook (proof of Lemma 5).

    ``e(alpha)`` is univalent, say of valence ``v``; since ``alpha`` is
    bivalent there is a descendant deciding the opposite value.  Walking
    the path to it, there is a first adjacent pair ``sigma_j,
    sigma_{j+1}`` with ``e(sigma_j)`` of valence ``v`` and
    ``e(sigma_{j+1})`` of the opposite valence (stopping, per the proof's
    second case, no later than the first ``e``-labeled edge).
    """
    view = analysis.view
    base = view.step(alpha, e)
    assert base is not None, "hook task must be applicable at alpha"
    valence_v = analysis.valence(base[1])
    assert valence_v.is_univalent, "Fig. 3 termination implies e(alpha) univalent"

    # BFS to a state from which only the opposite value is reachable via
    # e-images: we search for the first adjacent flip along a shortest
    # path to a state whose e-image has the opposite valence.
    parents: dict[State, tuple[State, Task]] = {}
    seen = {alpha}
    frontier: deque = deque([alpha])
    target: State | None = None
    while frontier:
        state = frontier.popleft()
        for task, _, successor in analysis.successors_of(state):
            if successor in seen:
                continue
            seen.add(successor)
            parents[successor] = (state, task)
            step = view.step(successor, e)
            if step is not None:
                valence_here = analysis.valence(step[1])
                if valence_here.is_univalent and valence_here is not valence_v:
                    target = successor
                    frontier.clear()
                    break
            frontier.append(successor)
    if target is None:
        raise RuntimeError(
            "Fig. 3 termination without a flip state: the explored graph "
            "is inconsistent with bivalence of alpha"
        )
    # Reconstruct the path alpha -> target and find the first flip pair.
    path: list[tuple[State, Task, State]] = []
    cursor = target
    while cursor != alpha:
        previous, task_used = parents[cursor]
        path.append((previous, task_used, cursor))
        cursor = previous
    path.reverse()
    for previous, task_used, successor in path:
        pre_step = view.step(previous, e)
        post_step = view.step(successor, e)
        if pre_step is None or post_step is None:
            continue
        pre_valence = analysis.valence(pre_step[1])
        post_valence = analysis.valence(post_step[1])
        if (
            pre_valence is valence_v
            and post_valence.is_univalent
            and post_valence is not valence_v
        ):
            return Hook(
                alpha=previous,
                e=e,
                e_prime=task_used,
                s0=pre_step[1],
                alpha_prime=successor,
                s1=post_step[1],
                valence0=pre_valence,
                valence1=post_valence,
            )
    raise RuntimeError("no adjacent valence flip found along the path")


def find_hook(
    analysis: ValenceAnalysis,
    start: State,
    max_iterations: int = 1_000_000,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    deadline=None,
    *,
    budget=None,
) -> tuple[Hook | FairCycle, HookSearchStats]:
    """Run the Fig. 3 construction from a bivalent start state.

    Returns either a :class:`Hook` (the construction terminated — Lemma 5)
    or a :class:`FairCycle` (the construction runs forever — a direct
    termination violation, impossible for systems that truly solve
    consensus, which is exactly the dichotomy of the paper's argument).

    ``deadline`` may be a :class:`repro.engine.Deadline`; it is checked
    once per outer iteration and raises
    :class:`~repro.engine.budget.BudgetExhausted` when the wall-clock
    budget runs out mid-search.  Alternatively pass
    ``budget=Budget(deadline_seconds=...)`` — a fresh deadline is started
    from it (passing both is a :class:`TypeError`).
    """
    if budget is not None:
        if deadline is not None:
            raise TypeError("pass deadline= or budget=, not both")
        # Lazy: repro.engine imports this package at load time.
        from ..engine.budget import Deadline

        deadline = Deadline(budget.deadline_seconds)
    reduction = getattr(analysis, "reduction", None)
    if reduction is not None and getattr(reduction, "por", False):
        # POR only preserves *reachability* facts (decision sets); the
        # hook construction needs every single-step edge, which ample
        # sets deliberately drop.  Symmetry alone is fine: the walk uses
        # raw steps and canonicalizes valence lookups only.
        raise ValueError(
            "hook search requires an analysis without partial-order "
            "reduction (symmetry-only is supported)"
        )
    if not analysis.is_bivalent(start):
        raise ValueError("hook search must start from a bivalent state")
    view = analysis.view
    tasks = view.tasks
    stats = HookSearchStats()
    state = start
    cursor = 0
    trace: list[tuple[State, int]] = []
    seen_configs: dict[tuple[State, int], int] = {}
    path_tasks: list[Task] = []
    for _ in range(max_iterations):
        if deadline is not None and deadline.enabled:
            deadline.check(stats.outer_iterations, stats.inner_bfs_expansions)
        config = (state, cursor)
        if config in seen_configs:
            start_index = seen_configs[config]
            cycle_tasks = path_tasks[start_index:]
            cycle_states = [pair[0] for pair in trace[start_index:]]
            decisions = frozenset().union(
                *(view.decision_values(s) for s in cycle_states)
            )
            _record_hook_search(
                tracer,
                metrics,
                stats,
                outcome="fair-cycle",
                cycle_length=len(cycle_tasks),
            )
            return (
                FairCycle(
                    prefix_tasks=path_tasks[:start_index],
                    cycle_tasks=cycle_tasks,
                    cycle_states=cycle_states,
                    decisions_on_cycle=decisions,
                ),
                stats,
            )
        seen_configs[config] = len(path_tasks)
        trace.append(config)
        stats.outer_iterations += 1
        # Next round-robin task applicable to the current state.
        e: Task | None = None
        for offset in range(len(tasks)):
            candidate = tasks[(cursor + offset) % len(tasks)]
            if view.applicable(state, candidate):
                e = candidate
                cursor = (cursor + offset + 1) % len(tasks)
                break
        assert e is not None, "process tasks are always applicable"
        alpha_prime, inner_path, expansions = _bivalent_e_free_search(
            analysis, state, e
        )
        stats.inner_bfs_expansions += expansions
        if alpha_prime is None:
            hook = _locate_hook_along_path(analysis, state, e)
            stats.path_length = len(path_tasks)
            _record_hook_search(tracer, metrics, stats, outcome="hook")
            return hook, stats
        path_tasks.extend(inner_path)
        path_tasks.append(e)
        # Extend the trace with the intermediate configurations so cycle
        # detection sees every visited state (cursor unchanged within the
        # inner path).
        intermediate = state
        for task in inner_path:
            intermediate = view.apply(intermediate, task)
            trace.append((intermediate, cursor))
            stats.outer_iterations += 0  # intermediates are not iterations
        state = view.apply(intermediate, e)
    raise RuntimeError(f"hook search exceeded {max_iterations} iterations")


def _record_hook_search(
    tracer: Tracer,
    metrics: MetricsRegistry,
    stats: HookSearchStats,
    outcome: str,
    cycle_length: int = 0,
) -> None:
    """Publish a finished Fig. 3 search to the observability layer."""
    if tracer.enabled:
        tracer.emit(
            HOOK_VERDICT,
            outcome=outcome,
            outer_iterations=stats.outer_iterations,
            inner_bfs_expansions=stats.inner_bfs_expansions,
            path_length=stats.path_length,
            cycle_length=cycle_length,
        )
    if metrics.enabled:
        metrics.counter("hook.searches").inc()
        metrics.counter("hook.outer_iterations").inc(stats.outer_iterations)
        metrics.counter("hook.inner_bfs_expansions").inc(stats.inner_bfs_expansions)
        metrics.gauge("hook.last_path_length").set(stats.path_length)


# ---------------------------------------------------------------------------
# Lemma 8: executable case analysis
# ---------------------------------------------------------------------------


@dataclass
class Lemma8Report:
    """The outcome of running Lemma 8's case analysis on a concrete hook.

    ``claim`` names the paper's claim/case that applied.  When the case
    concludes "the tasks commute", ``commuted`` is True and the
    commutation was verified concretely (``e'(s0) == s1``); a deciding
    system cannot have this (opposite valences), so on a doomed candidate
    it feeds the refutation as an *identical-states* violation.  When the
    case concludes similarity, ``violation`` carries the verified
    similar pair of opposite valence (Lemma 6/7 violation).
    """

    hook: Hook
    claim: str
    shared_participants: tuple[str, ...]
    commuted: bool
    violation: SimilarityViolation | None

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        outcome = "commuted" if self.commuted else "similarity violation"
        shared = ", ".join(self.shared_participants) or "none"
        return f"lemma8: {self.claim} -> {outcome} (shared: {shared})"

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "claim": self.claim,
            "shared_participants": list(self.shared_participants),
            "commuted": self.commuted,
            "violation": (
                None
                if self.violation is None
                else {
                    "kind": self.violation.kind,
                    "index": encode_value(self.violation.index),
                }
            ),
            "hook": self.hook.to_json(),
        }


def _pending_invocation(system: DistributedSystem, state, service_id, endpoint):
    """Head of a service's invocation buffer for an endpoint, or None."""
    service = system.service(service_id)
    buffer = service.inv_buffer(system.service_state(state, service_id), endpoint)
    return buffer[0] if buffer else None


def lemma8_case_analysis(
    system: DistributedSystem,
    analysis: ValenceAnalysis | DeterministicSystemView | None,
    hook: Hook,
) -> Lemma8Report:
    """Execute the claims of Lemma 8 on a concrete hook.

    Follows the proof's structure: Claim 1 (``e != e'``), Claim 2
    (participants intersect or the tasks commute), Claims 3/4/5 (a shared
    process, resilient service, or register forces either commutation or
    a similar pair of opposite valence).  Every conclusion is *verified
    on the instance* rather than assumed; an :class:`AssertionError` here
    would mean the paper's case analysis failed on this system, which the
    test suite demonstrates never happens.

    ``analysis`` may be a full :class:`ValenceAnalysis`, a bare
    :class:`DeterministicSystemView`, or ``None`` (a fresh view is built)
    — the case analysis itself is structural and needs only the view.
    """
    if analysis is None:
        view = DeterministicSystemView(system)
    elif isinstance(analysis, DeterministicSystemView):
        view = analysis
    else:
        view = analysis.view
    s = hook.alpha
    assert hook.e != hook.e_prime, "Claim 1: the hook tasks must differ"
    action_e = view.action_of(s, hook.e)
    action_e_prime = view.action_of(s, hook.e_prime)
    participants_e = {c.name for c in system.participants(action_e)}
    participants_e_prime = {c.name for c in system.participants(action_e_prime)}
    shared = tuple(sorted(participants_e & participants_e_prime))

    def commute_check() -> bool:
        """Verify e'(s0) == s1 concretely (the 'tasks commute' conclusion)."""
        step = view.step(hook.s0, hook.e_prime)
        return step is not None and step[1] == hook.s1

    if not shared:
        # Claim 2: disjoint participants => the tasks commute.
        commuted = commute_check()
        assert commuted, "Claim 2: disjoint participants must commute"
        return Lemma8Report(
            hook=hook,
            claim="claim2-disjoint-commute",
            shared_participants=shared,
            commuted=True,
            violation=None,
        )

    process_names = {process.name: process for process in system.processes}
    service_names = {service.name: service for service in system.services}
    register_names = {register.name: register for register in system.registers}

    shared_processes = [name for name in shared if name in process_names]
    shared_services = [name for name in shared if name in service_names]
    shared_registers = [name for name in shared if name in register_names]

    if shared_processes:
        # Claim 3: a shared process P_i => s0 and s1 are i-similar.
        i = process_names[shared_processes[0]].endpoint
        similar = j_similar(system, hook.s0, hook.s1, i)
        assert similar, "Claim 3: states must be i-similar for the shared process"
        return Lemma8Report(
            hook=hook,
            claim="claim3-shared-process",
            shared_participants=shared,
            commuted=False,
            violation=SimilarityViolation(
                kind="process", index=i, s0=hook.s0, s1=hook.s1
            ),
        )

    if shared_services:
        # Claim 4: a shared resilient service S_k.
        service = service_names[shared_services[0]]
        k = service.service_id
        only_service = (
            participants_e == {service.name} and participants_e_prime == {service.name}
        )
        if only_service:
            # Case 1: both tasks are perform/compute tasks of S_k =>
            # s0 and s1 are k-similar.
            similar = k_similar(system, hook.s0, hook.s1, k)
            assert similar, "Claim 4.1: states must be k-similar"
            return Lemma8Report(
                hook=hook,
                claim="claim4.1-shared-service-internal",
                shared_participants=shared,
                commuted=False,
                violation=SimilarityViolation(
                    kind="service", index=k, s0=hook.s0, s1=hook.s1
                ),
            )
        # Cases 2-4: at least one task also involves a process => commute.
        commuted = commute_check()
        assert commuted, "Claim 4.2-4: the tasks must commute"
        return Lemma8Report(
            hook=hook,
            claim="claim4.2-4-shared-service-commute",
            shared_participants=shared,
            commuted=True,
            violation=None,
        )

    assert shared_registers, "shared participant must be a process, service or register"
    register = register_names[shared_registers[0]]
    r = register.service_id
    only_register = (
        participants_e == {register.name} and participants_e_prime == {register.name}
    )
    if not only_register:
        # Claim 5 cases 2-4: a process participates in one task => commute.
        commuted = commute_check()
        assert commuted, "Claim 5.2-4: the tasks must commute"
        return Lemma8Report(
            hook=hook,
            claim="claim5.2-4-shared-register-commute",
            shared_participants=shared,
            commuted=True,
            violation=None,
        )
    # Claim 5 case 1: both tasks are perform tasks of the register.  The
    # subcases depend on whether the performed operations read or write.
    endpoint_e = action_e.args[1]
    endpoint_e_prime = action_e_prime.args[1]
    invocation_e = _pending_invocation(system, s, r, endpoint_e)
    invocation_e_prime = _pending_invocation(system, s, r, endpoint_e_prime)

    def is_read(invocation) -> bool:
        return invocation == ("read",)

    if is_read(invocation_e) and is_read(invocation_e_prime):
        # 5.1(a): two reads commute.
        commuted = commute_check()
        assert commuted, "Claim 5.1(a): two reads must commute"
        return Lemma8Report(
            hook=hook,
            claim="claim5.1a-two-reads-commute",
            shared_participants=shared,
            commuted=True,
            violation=None,
        )
    if not is_read(invocation_e):
        # 5.1(b): e performs a write => s0 and s1 differ only in the
        # buffers of e''s endpoint => j-similar for that endpoint.
        j = endpoint_e_prime
        similar = j_similar(system, hook.s0, hook.s1, j)
        assert similar, "Claim 5.1(b): states must be j-similar"
        return Lemma8Report(
            hook=hook,
            claim="claim5.1b-write-first",
            shared_participants=shared,
            commuted=False,
            violation=SimilarityViolation(
                kind="process", index=j, s0=hook.s0, s1=hook.s1
            ),
        )
    # 5.1(c): e reads, e' writes => e'(s0) and s1 are i-similar for e's
    # endpoint (they can differ only in i's response buffer).
    step = view.step(hook.s0, hook.e_prime)
    assert step is not None, "Claim 5.1(c): e' must remain applicable"
    e_prime_s0 = step[1]
    i = endpoint_e
    similar = j_similar(system, e_prime_s0, hook.s1, i)
    assert similar, "Claim 5.1(c): e'(s0) and s1 must be i-similar"
    return Lemma8Report(
        hook=hook,
        claim="claim5.1c-read-then-write",
        shared_participants=shared,
        commuted=False,
        violation=SimilarityViolation(
            kind="process", index=i, s0=e_prime_s0, s1=hook.s1
        ),
    )


def enumerate_hooks(
    analysis: ValenceAnalysis,
    max_hooks: int | None = None,
) -> list[Hook]:
    """Enumerate EVERY hook pattern in the explored graph.

    A hook (Fig. 2) at state ``alpha`` is a pair of tasks ``e``, ``e'``
    with ``e(alpha)`` univalent of one valence and ``e(e'(alpha))``
    univalent of the other.  The Fig. 3 construction finds *one* hook;
    this enumerator finds them all, so the test suite can run Lemma 8's
    case analysis over every hook an instance exhibits and verify the
    case analysis never fails — a much stronger check than a single
    witness.
    """
    view = analysis.view
    hooks: list[Hook] = []
    for alpha in analysis.graph.states:
        if not analysis.is_bivalent(alpha):
            continue
        successors = analysis.graph.successors(alpha)
        images = {task: post for task, _, post in successors}
        for e, _, s0 in successors:
            valence0 = analysis.valence(s0)
            if not valence0.is_univalent:
                continue
            for e_prime, _, alpha_prime in successors:
                if e_prime == e:
                    continue
                step = view.step(alpha_prime, e)
                if step is None:
                    continue
                s1 = step[1]
                valence1 = analysis.valence(s1)
                if not valence1.is_univalent or valence1 is valence0:
                    continue
                hooks.append(
                    Hook(
                        alpha=alpha,
                        e=e,
                        e_prime=e_prime,
                        s0=s0,
                        alpha_prime=alpha_prime,
                        s1=s1,
                        valence0=valence0,
                        valence1=valence1,
                    )
                )
                if max_hooks is not None and len(hooks) >= max_hooks:
                    return hooks
    return hooks
