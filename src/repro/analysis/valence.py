"""Valence of executions (Section 3.2) and Lemma 4.

A finite failure-free input-first execution ``alpha`` is

* **0-valent** if some failure-free extension contains ``decide(0)`` and
  none contains ``decide(1)``;
* **1-valent** symmetrically;
* **univalent** if 0- or 1-valent;
* **bivalent** if extensions with both decisions exist.

Lemma 3 states that for a system solving consensus every such execution
is bivalent or univalent — i.e. *some* decision is always reachable.
Broken candidates can violate this, so this module adds a fourth
classification, ``BLOCKED``, for states from which no failure-free
extension ever decides; finding a ``BLOCKED`` state is already a
refutation of the candidate (its failure-free fair executions cannot all
terminate).

Under the determinism assumptions, valence is a function of the final
state of the execution, so the analysis computes valence per *state*
over the exhaustively explored failure-free graph.

Lemma 4 ("C has a bivalent initialization") is implemented
constructively, following the paper's chain argument: walk the
initializations ``alpha_0, ..., alpha_n`` where ``alpha_i`` gives value 1
to the first ``i`` processes; validity pins the endpoints to opposite
valences, so somewhere along the chain sits either a bivalent
initialization or an adjacent 0-valent/1-valent pair differing in one
process's input — and the paper's argument turns the latter into
bivalence of the second element.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..ioa.automaton import State
from ..ioa.execution import Execution
from ..obs.events import VALENCE_VERDICT, encode_value
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..system.system import DistributedSystem
from .explorer import StateGraph, explore, reachable_decision_sets
from .view import DeterministicSystemView


class Valence(enum.Enum):
    """The valence classification of a state/execution."""

    ZERO = "0-valent"
    ONE = "1-valent"
    BIVALENT = "bivalent"
    BLOCKED = "blocked"  # no failure-free extension decides (Lemma 3 violated)

    @property
    def is_univalent(self) -> bool:
        return self in (Valence.ZERO, Valence.ONE)


def classify(decision_set: frozenset) -> Valence:
    """Valence from the set of reachable decision values."""
    if decision_set == frozenset({0}):
        return Valence.ZERO
    if decision_set == frozenset({1}):
        return Valence.ONE
    if decision_set >= frozenset({0, 1}):
        return Valence.BIVALENT
    return Valence.BLOCKED


@dataclass
class ValenceAnalysis:
    """Valence of every state reachable (failure-free) from a root.

    Produced by :func:`analyze_valence`; wraps the explored graph, the
    per-state reachable decision sets, and the derived valence map.
    """

    view: DeterministicSystemView
    graph: StateGraph
    decision_sets: Mapping[State, frozenset]
    #: The :class:`repro.engine.ReducedView` the graph was explored
    #: through, or ``None`` for a full exploration.  When set, ``graph``
    #: holds canonical orbit representatives only, so valence lookups
    #: canonicalize first (sound: symmetric states have equal valence)
    #: and consumers that walk *edges* must use :meth:`successors_of`.
    reduction: object | None = None

    def valence(self, state: State) -> Valence:
        """The valence of ``state`` (must be an explored state, up to symmetry)."""
        if self.reduction is not None:
            state = self.reduction.canonical(state)
        return classify(self.decision_sets[state])

    def successors_of(self, state: State) -> list:
        """Successor edges of ``state`` for graph walks (hook search).

        On a full exploration this is the precomputed adjacency.  Under
        reduction the graph's edges jump between orbit representatives —
        following them would splice symmetric-but-different executions —
        so raw single-step semantics are recomputed from the view
        instead (the walk stays exact; only valence lookups quotient).
        """
        if self.reduction is None:
            return self.graph.successors(state)
        return self.view.successors(state)

    def is_bivalent(self, state: State) -> bool:
        return self.valence(state) is Valence.BIVALENT

    def is_univalent(self, state: State) -> bool:
        return self.valence(state).is_univalent

    def bivalent_states(self) -> list[State]:
        """All explored bivalent states."""
        return [s for s in self.graph.states if self.is_bivalent(s)]

    def blocked_states(self) -> list[State]:
        """All explored states violating Lemma 3 (no reachable decision)."""
        return [s for s in self.graph.states if self.valence(s) is Valence.BLOCKED]

    def counts(self) -> dict[Valence, int]:
        """Histogram of valences over the explored graph."""
        histogram = {valence: 0 for valence in Valence}
        for state in self.graph.states:
            histogram[self.valence(state)] += 1
        return histogram

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        histogram = self.counts()
        parts = ", ".join(
            f"{count} {valence.value}"
            for valence, count in histogram.items()
            if count
        )
        reduced = " [reduced]" if self.reduction is not None else ""
        return (
            f"valence: {len(self.graph)} states / "
            f"{self.graph.edge_count()} transitions{reduced}: {parts or 'empty'}"
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "states": len(self.graph),
            "transitions": self.graph.edge_count(),
            "reduced": self.reduction is not None,
            "valences": {
                valence.value: count for valence, count in self.counts().items()
            },
        }


def analyze_valence(
    system: DistributedSystem,
    root: State,
    max_states: int | None = None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    engine=None,
    reduction=None,
    *,
    budget=None,
) -> ValenceAnalysis:
    """Explore from ``root`` and compute the valence of every state.

    ``budget`` is a :class:`repro.engine.Budget` bounding the
    exploration (default ``Budget(max_states=200_000)``); ``max_states``
    survives as a deprecated alias for ``budget=Budget(max_states=...)``
    and emits a :class:`DeprecationWarning`.

    ``engine`` may be a preconfigured
    :class:`repro.engine.ExplorationEngine` (workers, deadline,
    checkpointing); its own budget then governs the exploration, and the
    ``budget``/``max_states`` arguments here are ignored.

    ``reduction`` may be a :class:`repro.engine.ReductionConfig`; the
    exploration then runs through a
    :class:`~repro.engine.reduction.ReducedView` (symmetry quotient
    and/or ample-set POR), and the returned analysis canonicalizes
    valence lookups.  Both reductions preserve reachable decision sets
    (see ``docs/reduction.md``), so every valence verdict is unchanged.
    """
    # Lazy: repro.engine imports this package at load time.
    from ..engine.budget import resolve_budget

    budget = resolve_budget(budget, max_states)
    view = DeterministicSystemView(system)
    view.check_failure_free(root)
    explore_view = view
    reduced = None
    if reduction is not None and reduction.enabled:
        from ..engine.reduction import build_reduced_view

        reduced = build_reduced_view(view, root, reduction)
        explore_view = reduced
    if engine is None:
        graph = explore(
            explore_view, root, budget=budget, tracer=tracer, metrics=metrics
        )
    else:
        graph = engine.explore(explore_view, root, tracer=tracer, metrics=metrics)
    decisions = reachable_decision_sets(graph, view)
    if metrics.enabled:
        metrics.counter("valence.analyses").inc()
    return ValenceAnalysis(
        view=view, graph=graph, decision_sets=decisions, reduction=reduced
    )


@dataclass(frozen=True)
class InitializationValence:
    """One initialization with its assignment and classified valence."""

    assignment: tuple[tuple[Hashable, Hashable], ...]
    execution: Execution
    valence: Valence


@dataclass
class Lemma4Result:
    """Outcome of the Lemma 4 chain construction.

    ``chain`` lists the valence of each ``alpha_i``; ``bivalent`` holds a
    bivalent initialization when one exists.  ``critical_pair`` records
    the adjacent 0-valent/(1-or-bivalent) indices the paper's argument
    pivots on, when the chain had to be used (i.e. when no ``alpha_i``
    was directly bivalent, the pair's second element is proven bivalent
    by the argument of Lemma 4 — a situation that cannot actually arise
    for systems satisfying the termination property, which is why
    ``bivalent`` is then set to that element).
    """

    chain: list[InitializationValence]
    bivalent: InitializationValence | None
    critical_pair: tuple[int, int] | None

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        valences = " ".join(entry.valence.value for entry in self.chain)
        if self.bivalent is not None:
            index = next(
                position
                for position, entry in enumerate(self.chain)
                if entry is self.bivalent
            )
            found = f"bivalent initialization at chain index {index}"
        else:
            found = "no bivalent initialization"
        return f"lemma4: {found} (chain: {valences})"

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        bivalent_index = None
        if self.bivalent is not None:
            bivalent_index = next(
                position
                for position, entry in enumerate(self.chain)
                if entry is self.bivalent
            )
        return {
            "chain": [
                {
                    "assignment": encode_value(entry.assignment),
                    "valence": entry.valence.value,
                }
                for entry in self.chain
            ],
            "bivalent_index": bivalent_index,
            "critical_pair": (
                None if self.critical_pair is None else list(self.critical_pair)
            ),
        }


def lemma4_bivalent_initialization(
    system: DistributedSystem,
    max_states: int | None = None,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    engine=None,
    reduction=None,
    *,
    budget=None,
) -> Lemma4Result:
    """Find a bivalent initialization, per the proof of Lemma 4.

    Builds the chain ``alpha_0 .. alpha_n`` (``alpha_i``: processes
    ``1..i`` propose 1, the rest propose 0), classifies each by
    exhaustive exploration, and returns the first bivalent one together
    with the full chain.  For a correct consensus system the chain
    endpoints are 0-valent and 1-valent by validity, so a bivalent
    element or a critical adjacent pair must exist.

    ``budget`` bounds each exploration of the chain (``max_states`` is
    the deprecated alias, warning once for the whole chain).
    """
    from ..engine.budget import resolve_budget

    budget = resolve_budget(budget, max_states)
    endpoints = list(system.process_ids)
    chain: list[InitializationValence] = []
    for split in range(len(endpoints) + 1):
        assignment = {
            endpoint: (1 if position < split else 0)
            for position, endpoint in enumerate(endpoints)
        }
        execution = system.initialization(assignment)
        analysis = analyze_valence(
            system,
            execution.final_state,
            tracer=tracer,
            metrics=metrics,
            engine=engine,
            reduction=reduction,
            budget=budget,
        )
        valence = analysis.valence(execution.final_state)
        if tracer.enabled:
            tracer.emit(
                VALENCE_VERDICT,
                assignment=tuple(sorted(assignment.items(), key=lambda kv: str(kv[0]))),
                valence=valence.value,
            )
        if metrics.enabled:
            metrics.counter("valence.initializations").inc()
        chain.append(
            InitializationValence(
                assignment=tuple(sorted(assignment.items(), key=lambda kv: str(kv[0]))),
                execution=execution,
                valence=valence,
            )
        )
    bivalent = next(
        (entry for entry in chain if entry.valence is Valence.BIVALENT), None
    )
    critical_pair = None
    for index in range(len(chain) - 1):
        if chain[index].valence is Valence.ZERO and chain[index + 1].valence in (
            Valence.ONE,
            Valence.BIVALENT,
        ):
            critical_pair = (index, index + 1)
            break
    return Lemma4Result(chain=chain, bivalent=bivalent, critical_pair=critical_pair)
