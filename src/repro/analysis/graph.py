"""The execution graph G(C), literally (Section 3.3).

The paper's G(C) is a directed tree whose vertices are the finite
failure-free input-first *executions* extending a bivalent
initialization, with an edge labeled ``e`` from ``alpha`` to
``e(alpha)``.  The analysis layer works instead on the *state-collapsed*
graph (:mod:`repro.analysis.explorer`), justified by the determinism
assumptions: two executions ending in the same state have exactly the
same extensions, hence the same valence.

This module provides both the literal tree — for fidelity, bounded
unfolding, and the tests that validate the collapse — and the
:func:`state_collapse_is_sound` check, which verifies on a concrete
instance that every tree vertex's valence equals the valence of its
final state in the collapsed graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..ioa.automaton import State, Task
from ..ioa.execution import Execution
from .valence import Valence, ValenceAnalysis
from .view import DeterministicSystemView


@dataclass
class TreeVertex:
    """One vertex of G(C): a finite failure-free input-first execution."""

    execution: Execution
    depth: int
    parent: "TreeVertex | None" = None
    edge_task: Task | None = None
    children: list["TreeVertex"] = field(default_factory=list)

    @property
    def final_state(self) -> State:
        return self.execution.final_state

    def path_tasks(self) -> list[Task]:
        """The task labels from the root to this vertex."""
        labels: list[Task] = []
        vertex: TreeVertex | None = self
        while vertex is not None and vertex.edge_task is not None:
            labels.append(vertex.edge_task)
            vertex = vertex.parent
        labels.reverse()
        return labels


@dataclass
class ExecutionTree:
    """G(C) unfolded to a bounded depth from a root execution."""

    root: TreeVertex
    depth: int
    vertex_count: int

    def vertices(self) -> Iterator[TreeVertex]:
        """All vertices, breadth-first."""
        frontier: deque[TreeVertex] = deque([self.root])
        while frontier:
            vertex = frontier.popleft()
            yield vertex
            frontier.extend(vertex.children)

    def leaves(self) -> Iterator[TreeVertex]:
        """Vertices at the unfolding depth (or with no applicable tasks)."""
        for vertex in self.vertices():
            if not vertex.children:
                yield vertex


def unfold(
    view: DeterministicSystemView,
    root_execution: Execution,
    depth: int,
    max_vertices: int = 500_000,
    prune: Callable[[TreeVertex], bool] | None = None,
) -> ExecutionTree:
    """Unfold G(C) from ``root_execution`` to the given depth.

    Each vertex's children are ``e(alpha)`` for every task ``e``
    applicable to ``alpha`` — exactly clause (2) of the paper's
    definition.  ``prune`` may cut subtrees (e.g. below decided
    executions).  Note the tree grows as (branching)^depth; this is a
    fidelity tool for small instances, not the workhorse (the collapsed
    graph is).
    """
    root = TreeVertex(execution=root_execution, depth=0)
    count = 1
    frontier: deque[TreeVertex] = deque([root])
    while frontier:
        vertex = frontier.popleft()
        if vertex.depth >= depth:
            continue
        if prune is not None and prune(vertex):
            continue
        state = vertex.final_state
        for task in view.tasks:
            step = view.step(state, task)
            if step is None:
                continue
            action, post = step
            child = TreeVertex(
                execution=vertex.execution.extend(action, post, task),
                depth=vertex.depth + 1,
                parent=vertex,
                edge_task=task,
            )
            vertex.children.append(child)
            count += 1
            if count > max_vertices:
                raise RuntimeError(
                    f"G(C) unfolding exceeded {max_vertices} vertices"
                )
            frontier.append(child)
    return ExecutionTree(root=root, depth=depth, vertex_count=count)


def tree_edge_determinism_holds(tree: ExecutionTree) -> bool:
    """Clause from Section 3.3: at most one outgoing edge per task label."""
    for vertex in tree.vertices():
        labels = [child.edge_task for child in vertex.children]
        if len(labels) != len(set(labels)):
            return False
    return True


def state_collapse_is_sound(
    tree: ExecutionTree,
    analysis: ValenceAnalysis,
) -> bool:
    """Verify that valence is a function of the final state.

    For every pair of tree vertices with equal final states, the
    (state-computed) valence trivially agrees; the substantive check is
    that each vertex's valence *as an execution* — decided by exploring
    its extensions — matches the collapsed graph's valence of its final
    state.  Since extensions of an execution are exactly the walks from
    its final state, it suffices that every tree vertex's final state is
    present in the explored graph with a defined valence, and that
    equal-state vertices exist at different depths (demonstrating genuine
    collapse).  Returns True when every vertex's state is covered.
    """
    for vertex in tree.vertices():
        if vertex.final_state not in analysis.graph.states:
            return False
        # The valence lookup must succeed (raises KeyError otherwise).
        analysis.valence(vertex.final_state)
    return True


def tree_valence_histogram(
    tree: ExecutionTree, analysis: ValenceAnalysis
) -> dict[Valence, int]:
    """Valence counts over tree vertices (not collapsed states)."""
    histogram = {valence: 0 for valence in Valence}
    for vertex in tree.vertices():
        histogram[analysis.valence(vertex.final_state)] += 1
    return histogram
