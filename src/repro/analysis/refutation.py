"""Constructive refutation of boosting candidates (Lemmas 6-7, executable).

The proofs of Lemmas 6 and 7 are constructive: from a univalent execution
they build a *fair failing extension* — fail a chosen set ``J`` of
``f + 1`` processes up front, let every service take dummy steps for the
failed endpoints (silencing services whose resilience is exceeded), and
run fairly.  For a system that truly solves ``(f+1)``-resilient
consensus, a survivor must decide, and replaying the same task sequence
after the similar state forces the opposite-valence contradiction.  For
a *doomed candidate*, exactly one of two things happens instead, and
this module detects both:

* **no survivor ever decides** — detected exactly on finite instances by
  finding a cycle in the (state, scheduler-cursor) space of the fair
  silencing schedule: a concrete infinite fair execution with ``f + 1``
  failures and no decision, i.e. a termination violation;
* **a survivor decides**, and replaying the decision-producing task
  sequence after the other (opposite-valent) similar state yields a
  decision contradicting that valence — i.e. the candidate reaches both
  decisions from states it cannot distinguish, a safety contradiction.

The same machinery powers the Theorem 9 and Theorem 10 variants: for
failure-oblivious services the silencing rule is per Fig. 4's
``dummy_compute`` preconditions, and for failure-aware services
(Section 6.3) every general service is silenced outright — possible
precisely because each is connected to all processes, so any ``f + 1``
failures exceed its resilience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Hashable, Sequence

from ..ioa.actions import Action, is_dummy
from ..ioa.automaton import State, Task
from ..ioa.execution import Execution
from ..obs.events import (
    ACTION_FIRED,
    FAILURE_INJECTED,
    RUN_END,
    RUN_START,
    TASK_CHOSEN,
    encode_value,
)
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.sinks import NULL_TRACER, Tracer
from ..system.system import DistributedSystem
from .similarity import SimilarityViolation
from .view import DeterministicSystemView


@dataclass
class TerminationViolation:
    """A fair execution with at most ``f + 1`` failures and no decision.

    ``exact`` is True when a (state, cursor) cycle was found — the
    witness then denotes a genuinely infinite fair execution; otherwise
    the run merely exhausted the horizon while remaining undecided.
    """

    victims: frozenset
    steps_run: int
    exact: bool
    cycle_length: int
    survivors: frozenset
    description: str

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        witness = (
            f"cycle of period {self.cycle_length}"
            if self.exact
            else f"undecided after {self.steps_run} steps"
        )
        victims = ", ".join(str(v) for v in sorted(self.victims, key=str))
        return f"termination violation: {witness} (victims: {victims})"

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "kind": "termination_violation",
            "victims": encode_value(self.victims),
            "survivors": encode_value(self.survivors),
            "steps_run": self.steps_run,
            "exact": self.exact,
            "cycle_length": self.cycle_length,
            "description": self.description,
        }


@dataclass
class DecisionContradiction:
    """Replaying a deciding schedule after a similar state flips the decision.

    ``value_from_s0`` is the survivor's decision in the failing extension
    of the 0-valent state; ``value_from_s1`` is what the replay after the
    1-valent similar state produced.  At least one of the two runs
    contradicts its state's valence — a safety-level contradiction in the
    candidate.
    """

    victims: frozenset
    decider: Hashable
    value_from_s0: Hashable
    value_from_s1: Hashable | None
    replay_decided: bool

    def summary(self) -> str:
        """One-line human summary (the shared report protocol)."""
        replay = (
            f"decided {self.value_from_s1!r}"
            if self.replay_decided
            else "never decided"
        )
        return (
            f"decision contradiction: {self.decider} decided "
            f"{self.value_from_s0!r} from s0, replay from s1 {replay}"
        )

    def to_json(self) -> dict:
        """JSON-serializable payload (the shared report protocol)."""
        return {
            "kind": "decision_contradiction",
            "victims": encode_value(self.victims),
            "decider": encode_value(self.decider),
            "value_from_s0": encode_value(self.value_from_s0),
            "value_from_s1": encode_value(self.value_from_s1),
            "replay_decided": self.replay_decided,
        }


RefutationOutcome = TerminationViolation | DecisionContradiction


@dataclass
class _SilencedRunResult:
    """Outcome of a fair silencing run: decision or cycle or horizon.

    When a cycle is found, ``cycle_start_step`` indexes the execution
    step where the repeating segment begins (after the leading fail
    actions), so callers can package the witness as a
    :class:`repro.ioa.Lasso` and check its fairness independently.
    """

    execution: Execution
    task_sequence: list[Task]
    decision: tuple[Hashable, Hashable] | None  # (decider, value)
    cycle_found: bool
    cycle_length: int
    cycle_start_step: int = 0

    def as_lasso(self):
        """The witness as a stem + repeating cycle (requires a cycle)."""
        from ..ioa.execution import Lasso

        if not self.cycle_found:
            raise ValueError("no cycle was found in this run")
        stem = self.execution.prefix(self.cycle_start_step)
        cycle = self.execution.steps[self.cycle_start_step :]
        return Lasso(stem=stem, cycle=cycle)


def run_silenced(
    system: DistributedSystem,
    start: State,
    victims: Collection[Hashable],
    silenced_services: Collection[Hashable],
    max_steps: int,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    deadline=None,
) -> _SilencedRunResult:
    """The fair failing extension ``beta`` of Lemmas 6-7.

    From ``start``: apply ``fail_i`` for every victim, then run a
    round-robin fair schedule in which (a) service tasks for victim
    endpoints take their dummy transition, (b) every task of a service in
    ``silenced_services`` takes its dummy transition, and (c) everything
    else runs normally.  Stops at the first decision by a survivor, on
    detecting a (state, cursor) cycle (an exact infinite fair execution),
    or at ``max_steps``.

    With ``tracer`` enabled the run emits the same replay protocol as
    :func:`repro.ioa.scheduler.run` (``run_start``, ``action_fired`` for
    the leading fails, ``task_chosen`` with the action each step fired,
    ``run_end``), so a traced counterexample replays bit-for-bit through
    :mod:`repro.obs.replay` — including the dummy transitions that a
    task-only replay would miss.
    """
    victims = frozenset(victims)
    silenced = frozenset(silenced_services)
    tracing = tracer.enabled
    if tracing:
        tracer.emit(
            RUN_START,
            op="run_silenced",
            victims=victims,
            silenced=silenced,
            max_steps=max_steps,
        )
    execution = Execution(start)
    # beta begins with the f + 1 fail actions.
    for victim in sorted(victims, key=str):
        action = Action("fail", (victim,))
        post = system.apply_input(execution.final_state, action)
        execution = execution.extend(action, post, task=None)
        if tracing:
            tracer.emit(ACTION_FIRED, process=victim, action=action, step=0)
            tracer.emit(FAILURE_INJECTED, process=victim, endpoint=victim)
    baseline_decided = dict(system.decisions(execution.final_state))
    tasks = tuple(system.tasks())
    component_of_task = {}
    for component in system.services + system.registers:
        for task in component.tasks():
            component_of_task[task] = component
    cursor = 0
    seen: dict[tuple[State, int], int] = {}
    task_sequence: list[Task] = []
    for step_count in range(max_steps):
        if (
            deadline is not None
            and deadline.enabled
            and step_count % 1024 == 0
        ):
            deadline.check(transitions=step_count)
        state = execution.final_state
        config = (state, cursor)
        if config in seen:
            cycle_start = seen[config]
            _finish_silenced(tracer, metrics, task_sequence, outcome="cycle")
            return _SilencedRunResult(
                execution=execution,
                task_sequence=task_sequence,
                decision=None,
                cycle_found=True,
                cycle_length=len(task_sequence) - cycle_start,
                cycle_start_step=len(victims) + cycle_start,
            )
        seen[config] = len(task_sequence)
        chosen: tuple[Task, Action, State] | None = None
        for offset in range(len(tasks)):
            task = tasks[(cursor + offset) % len(tasks)]
            transitions = system.enabled(state, task)
            if not transitions:
                continue
            component = component_of_task.get(task)
            prefer_dummy = False
            if component is not None:
                endpoint = task.name[1] if task.name[0] in ("perform", "output") else None
                if component.service_id in silenced:
                    prefer_dummy = True
                elif endpoint is not None and endpoint in victims:
                    prefer_dummy = True
            selected = None
            for transition in transitions:
                if prefer_dummy == is_dummy(transition.action):
                    selected = transition
                    break
            if selected is None:
                selected = transitions[0]
            chosen = (task, selected.action, selected.post)
            cursor = (cursor + offset + 1) % len(tasks)
            break
        if chosen is None:
            break
        task, action, post = chosen
        execution = execution.extend(action, post, task)
        task_sequence.append(task)
        if tracing:
            tracer.emit(
                TASK_CHOSEN,
                process=task.owner,
                task=task,
                action=action,
                step=step_count,
            )
        decisions = system.decisions(post)
        for decider, value in decisions.items():
            if decider in victims:
                continue
            if baseline_decided.get(decider) == value:
                continue
            _finish_silenced(tracer, metrics, task_sequence, outcome="decision")
            return _SilencedRunResult(
                execution=execution,
                task_sequence=task_sequence,
                decision=(decider, value),
                cycle_found=False,
                cycle_length=0,
            )
    _finish_silenced(tracer, metrics, task_sequence, outcome="horizon")
    return _SilencedRunResult(
        execution=execution,
        task_sequence=task_sequence,
        decision=None,
        cycle_found=False,
        cycle_length=0,
    )


def _finish_silenced(
    tracer: Tracer,
    metrics: MetricsRegistry,
    task_sequence: Sequence[Task],
    outcome: str,
) -> None:
    """Close the replay bracket and record counters for a silenced run."""
    if tracer.enabled:
        tracer.emit(RUN_END, op="run_silenced", steps=len(task_sequence), outcome=outcome)
    if metrics.enabled:
        metrics.counter("refute.silenced_runs").inc()
        metrics.counter("refute.silenced_steps").inc(len(task_sequence))


def choose_victims_for_process(
    system: DistributedSystem, j: Hashable, resilience: int
) -> frozenset:
    """The set ``J`` of Lemma 6: ``j`` plus others, ``|J| = f + 1``."""
    victims = [j]
    for endpoint in system.process_ids:
        if len(victims) == resilience + 1:
            break
        if endpoint != j:
            victims.append(endpoint)
    if len(victims) < resilience + 1:
        raise ValueError("not enough processes: need f + 1 victims with f < n - 1")
    return frozenset(victims)


def choose_victims_for_service(
    system: DistributedSystem, k: Hashable, resilience: int
) -> frozenset:
    """The set ``J`` of Lemma 7.

    If ``|J_k| <= f + 1`` then ``J_k`` is a subset of ``J`` (all the
    service's endpoints fail); otherwise ``J`` is a subset of ``J_k``
    (``f + 1`` of its endpoints fail).  Either way the service's dummy
    actions become enabled for every endpoint.
    """
    endpoints = list(system.service(k).endpoints)
    quota = resilience + 1
    if len(endpoints) <= quota:
        victims = list(endpoints)
        for endpoint in system.process_ids:
            if len(victims) == quota:
                break
            if endpoint not in victims:
                victims.append(endpoint)
    else:
        victims = endpoints[:quota]
    if len(victims) < quota:
        raise ValueError("not enough processes: need f + 1 victims with f < n - 1")
    return frozenset(victims)


def silenced_services_for(
    system: DistributedSystem,
    victims: frozenset,
    also: Collection[Hashable] = (),
) -> frozenset:
    """Services whose dummy actions are enabled for every endpoint.

    A service falls silent under the victims set when more than ``f`` of
    its endpoints are victims, or all of its endpoints are.  ``also``
    adds services silenced by construction (e.g. the Lemma 7 target, or
    every failure-aware service in the Theorem 10 variant).
    """
    silenced = set(also)
    for service in system.services:
        failed_here = sum(1 for endpoint in service.endpoints if endpoint in victims)
        if failed_here > service.resilience or failed_here == len(service.endpoints):
            silenced.add(service.service_id)
    return frozenset(silenced)


def refute_from_similarity(
    system: DistributedSystem,
    violation: SimilarityViolation,
    resilience: int,
    horizon: int = 100_000,
    failure_aware_services: Collection[Hashable] = (),
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    deadline=None,
) -> RefutationOutcome:
    """Execute the Lemma 6/7 argument from a similar opposite-valence pair.

    Chooses ``J`` per the appropriate lemma, runs the fair silencing
    extension from the 0-valent state ``s0``, and either certifies a
    termination violation (no survivor decision; exact when a cycle is
    found) or replays the deciding task sequence after ``s1`` to exhibit
    the decision contradiction.  ``failure_aware_services`` lists general
    services to silence outright (the Theorem 10 setting).
    """
    if violation.kind == "process":
        victims = choose_victims_for_process(system, violation.index, resilience)
        base_silenced: Collection[Hashable] = ()
    else:
        victims = choose_victims_for_service(system, violation.index, resilience)
        base_silenced = (violation.index,)
    silenced = silenced_services_for(
        system, victims, also=tuple(base_silenced) + tuple(failure_aware_services)
    )
    result = run_silenced(
        system,
        violation.s0,
        victims,
        silenced,
        horizon,
        tracer=tracer,
        metrics=metrics,
        deadline=deadline,
    )
    survivors = frozenset(system.process_ids) - victims
    if result.decision is None:
        return TerminationViolation(
            victims=victims,
            steps_run=len(result.task_sequence),
            exact=result.cycle_found,
            cycle_length=result.cycle_length,
            survivors=survivors,
            description=(
                "fair extension with f+1 failures never decides"
                + (" (cycle found: exact infinite execution)" if result.cycle_found else "")
            ),
        )
    decider, value = result.decision
    # Replay gamma' (the non-dummy suffix) after s1, per the lemma.
    view = DeterministicSystemView(system)
    replay_tasks = [
        step.task
        for step in result.execution.steps
        if step.task is not None and not is_dummy(step.action)
    ]
    replay = view.run_task_sequence(violation.s1, replay_tasks, strict=False)
    replay_decisions = view.decisions(replay.final_state)
    replay_value = replay_decisions.get(decider)
    return DecisionContradiction(
        victims=victims,
        decider=decider,
        value_from_s0=value,
        value_from_s1=replay_value,
        replay_decided=replay_value is not None,
    )


def liveness_attack(
    system: DistributedSystem,
    start: State,
    victims: Collection[Hashable],
    horizon: int = 100_000,
    failure_aware_services: Collection[Hashable] = (),
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
    deadline=None,
    *,
    budget=None,
) -> TerminationViolation | None:
    """Direct liveness attack: fail ``victims`` and run fairly.

    The blunt instrument behind the Theorem 2/9/10 benchmarks: fail the
    chosen ``f + 1`` processes up front and check whether the survivors
    can still decide under a fair schedule in which exceeded services go
    silent.  Returns a :class:`TerminationViolation` when they cannot,
    ``None`` when some survivor decided (the attack failed).

    ``deadline`` may be a :class:`repro.engine.Deadline`; alternatively
    pass ``budget=Budget(deadline_seconds=...)`` to start a fresh
    deadline from it (passing both is a :class:`TypeError`).
    """
    if budget is not None:
        if deadline is not None:
            raise TypeError("pass deadline= or budget=, not both")
        # Lazy: repro.engine imports this package at load time.
        from ..engine.budget import Deadline

        deadline = Deadline(budget.deadline_seconds)
    victims = frozenset(victims)
    silenced = silenced_services_for(
        system, victims, also=tuple(failure_aware_services)
    )
    result = run_silenced(
        system,
        start,
        victims,
        silenced,
        horizon,
        tracer=tracer,
        metrics=metrics,
        deadline=deadline,
    )
    if result.decision is not None:
        return None
    return TerminationViolation(
        victims=victims,
        steps_run=len(result.task_sequence),
        exact=result.cycle_found,
        cycle_length=result.cycle_length,
        survivors=frozenset(system.process_ids) - victims,
        description="direct liveness attack: survivors never decide",
    )
