"""Human-readable reports for analysis results.

Renders the structured outputs of the adversary pipeline — verdicts,
hooks, refutations — as the stage-by-stage narrative a reader of the
paper expects.  Used by the CLI and the examples; kept out of the
analysis modules themselves so the data stays plain and testable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .adversary import Verdict
from .hook import FairCycle, Hook, Lemma8Report
from .refutation import DecisionContradiction, TerminationViolation
from .valence import Lemma4Result


@runtime_checkable
class Summarizable(Protocol):
    """The shared report protocol of analysis and engine results.

    Every substantial result object — :class:`~repro.analysis.Verdict`,
    :class:`~repro.analysis.ValenceAnalysis`,
    :class:`~repro.analysis.Lemma4Result`, hook/cycle/refutation
    witnesses, :class:`~repro.engine.EngineReport`, and
    :class:`~repro.engine.BudgetExhausted` — implements both methods, so
    the CLI (and any caller) can render one-line summaries and ``--json``
    documents without knowing the concrete type.
    """

    def summary(self) -> str:
        """One-line human-readable summary."""
        ...

    def to_json(self) -> dict:
        """JSON-serializable payload (scalars, lists, dicts only)."""
        ...


def format_lemma4(result: Lemma4Result) -> list[str]:
    """The initialization chain, one line per entry."""
    lines = ["Lemma 4 — initialization chain:"]
    for entry in result.chain:
        lines.append(f"  {dict(entry.assignment)} -> {entry.valence.value}")
    if result.bivalent is not None:
        lines.append(
            f"  bivalent initialization: {dict(result.bivalent.assignment)}"
        )
    else:
        lines.append("  no bivalent initialization (candidate dodges bivalence)")
    return lines


def format_hook(hook: Hook) -> list[str]:
    """The Fig. 2 pattern, annotated with valences."""
    return [
        "Lemma 5 — hook (Fig. 2):",
        f"  e  = {hook.e.owner}:{hook.e.name}  ->  {hook.valence0.value}",
        f"  e' = {hook.e_prime.owner}:{hook.e_prime.name}, then e  ->  "
        f"{hook.valence1.value}",
    ]


def format_fair_cycle(cycle: FairCycle) -> list[str]:
    """The infinite fair failure-free witness."""
    return [
        "Fig. 3 construction cycles — infinite fair failure-free execution:",
        f"  stem length {len(cycle.prefix_tasks)}, period {len(cycle.cycle_tasks)}",
        f"  decisions on the cycle: {set(cycle.decisions_on_cycle) or 'none'}",
    ]


def format_lemma8(report: Lemma8Report) -> list[str]:
    """Which claim fired and what it concluded."""
    lines = [
        "Lemma 8 — case analysis:",
        f"  claim: {report.claim}",
        f"  shared participants: {list(report.shared_participants)}",
    ]
    if report.commuted:
        lines.append("  conclusion: the tasks commute (verified concretely)")
    elif report.violation is not None:
        violation = report.violation
        lines.append(
            f"  conclusion: states {violation.kind}-similar at index "
            f"{violation.index!r}, opposite valences"
        )
    return lines


def format_refutation(outcome) -> list[str]:
    """The Lemma 6/7 witness."""
    if isinstance(outcome, TerminationViolation):
        return [
            "Lemmas 6/7 — failing extension:",
            f"  J = {sorted(outcome.victims, key=str)} (f + 1 failures)",
            f"  survivors {sorted(outcome.survivors, key=str)} never decide",
            f"  witness: {'exact infinite fair execution (cycle length ' + str(outcome.cycle_length) + ')' if outcome.exact else f'undecided for {outcome.steps_run} steps'}",
        ]
    if isinstance(outcome, DecisionContradiction):
        return [
            "Lemmas 6/7 — decision contradiction:",
            f"  decider {outcome.decider!r}: {outcome.value_from_s0!r} from the "
            f"0-valent side, {outcome.value_from_s1!r} from the 1-valent side",
        ]
    return [f"refutation: {outcome!r}"]


def format_verdict(verdict: Verdict) -> str:
    """The whole pipeline as a multi-line narrative."""
    lines = [
        f"refuted:   {verdict.refuted}",
        f"mechanism: {verdict.mechanism}",
        f"detail:    {verdict.detail}",
    ]
    if verdict.lemma4 is not None:
        lines += format_lemma4(verdict.lemma4)
    if verdict.fair_cycle is not None:
        lines += format_fair_cycle(verdict.fair_cycle)
    if verdict.hook is not None:
        lines += format_hook(verdict.hook)
    if verdict.lemma8 is not None:
        lines += format_lemma8(verdict.lemma8)
    if verdict.refutation is not None:
        lines += format_refutation(verdict.refutation)
    return "\n".join(lines)
