"""Process automata (Section 2.2.1).

A process ``P_i`` interacts with the external world through ``init(v)_i``
inputs and ``decide(v)_i`` outputs, with each connected service ``S_k``
through ``a_{i,k}`` invocation outputs and ``b_{i,k}`` response inputs,
and receives the ``fail_i`` input.  The paper's structural assumptions,
all enforced by this base class:

* each process has a **single task** comprising all its locally
  controlled actions;
* **in every state some locally controlled action is enabled** — realized
  by the always-enabled internal ``dummy_step_i`` when the protocol has
  nothing to do;
* **after ``fail_i`` no output action is ever enabled** (the process may
  still take dummy internal steps, as some locally controlled action
  must remain enabled);
* when ``P_i`` performs ``decide(v)_i`` it **records the decision value
  in a special state component** — the technicality used in the proofs of
  Lemmas 6-7 to argue that a decision occurring in the common prefix
  would be visible in both similar states;
* processes are **deterministic** (assumption (i) of Section 3.1):
  concrete protocols implement two pure functions, one for inputs and
  one producing the next locally controlled action.

Protocol authors subclass :class:`Process` and implement
``initial_locals``, ``handle_input`` and ``next_action`` over an
immutable ``locals`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from ..ioa.actions import Action, decide, dummy_step
from ..ioa.automaton import Automaton, State, Task, Transition


@dataclass(frozen=True, slots=True)
class ProcessState:
    """State of a process automaton.

    ``failed`` records receipt of ``fail_i``; ``decision`` is the special
    component holding the first decided value (or ``None``); ``locals``
    is the protocol-defined immutable local state.
    """

    failed: bool
    decision: Any
    locals: Hashable


class Process(Automaton):
    """Base class for deterministic single-task process automata.

    ``endpoint`` is the process index ``i``; ``connections`` lists the
    service/register indices ``c`` with ``i`` in ``J_c`` — the services
    this process may invoke; ``input_values`` is the set of values ``v``
    for which ``init(v)_i`` is an input (empty for processes that take no
    external inputs).
    """

    def __init__(
        self,
        endpoint: Hashable,
        connections: Sequence[Hashable] = (),
        input_values: Sequence[Hashable] = (),
        name: str | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.connections: frozenset = frozenset(connections)
        self.input_values: frozenset = frozenset(input_values)
        self.name = name if name is not None else f"P[{endpoint}]"
        self._task = Task(self.name, "step")

    # -- protocol contract ------------------------------------------------------

    def initial_locals(self) -> Hashable:
        """The protocol's initial local state."""
        raise NotImplementedError

    def handle_input(self, locals_value: Hashable, action: Action) -> Hashable:
        """React to an ``init`` or ``respond`` input; must be pure."""
        raise NotImplementedError

    def next_action(
        self, locals_value: Hashable
    ) -> tuple[Action | None, Hashable]:
        """The unique next locally controlled step of the protocol.

        Returns ``(action, new_locals)``.  ``action`` may be an
        ``invoke`` on a connected service, a ``decide``, a protocol-
        internal ``Action("local", (i, ...))``, or ``None`` meaning the
        process idles this turn (a ``dummy_step`` is emitted).  Must be a
        pure function of ``locals_value`` — this is what makes the
        process a deterministic automaton.
        """
        raise NotImplementedError

    # -- signature ----------------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        if action.kind == "fail":
            return action.args[0] == self.endpoint
        if action.kind == "init":
            return (
                action.args[0] == self.endpoint and action.args[1] in self.input_values
            )
        if action.kind == "respond":
            service, endpoint, _ = action.args
            return endpoint == self.endpoint and service in self.connections
        return False

    def is_output(self, action: Action) -> bool:
        if action.kind == "invoke":
            service, endpoint, _ = action.args
            return endpoint == self.endpoint and service in self.connections
        if action.kind == "decide":
            return action.args[0] == self.endpoint
        return False

    def is_internal(self, action: Action) -> bool:
        if action.kind in ("dummy_step", "local"):
            return action.args[0] == self.endpoint
        return False

    # -- states ----------------------------------------------------------------------

    def start_states(self) -> Iterable[State]:
        yield ProcessState(failed=False, decision=None, locals=self.initial_locals())

    def tasks(self) -> Sequence[Task]:
        return (self._task,)

    def enabled(self, state: State, task: Task) -> Sequence[Transition]:
        assert isinstance(state, ProcessState)
        if task != self._task:
            raise KeyError(f"unknown task {task}")
        if state.failed:
            # After fail_i no outputs are enabled; the single task remains
            # enabled through the dummy internal step.
            return (Transition(dummy_step(self.endpoint), state),)
        action, new_locals = self.next_action(state.locals)
        if action is None:
            post = ProcessState(
                failed=state.failed, decision=state.decision, locals=new_locals
            )
            return (Transition(dummy_step(self.endpoint), post),)
        self._check_action(action)
        new_decision = state.decision
        if action.kind == "decide" and state.decision is None:
            # The special state component recording the decision value.
            new_decision = action.args[1]
        post = ProcessState(
            failed=state.failed, decision=new_decision, locals=new_locals
        )
        return (Transition(action, post),)

    def _check_action(self, action: Action) -> None:
        if not self.is_locally_controlled(action):
            raise ValueError(
                f"{self.name}: protocol emitted {action}, which is not a "
                "locally controlled action of this process"
            )

    def apply_input(self, state: State, action: Action) -> State:
        assert isinstance(state, ProcessState)
        if action.kind == "fail":
            return ProcessState(
                failed=True, decision=state.decision, locals=state.locals
            )
        if not self.is_input(action):
            raise ValueError(f"{self.name}: {action} is not an input")
        new_locals = self.handle_input(state.locals, action)
        return ProcessState(
            failed=state.failed, decision=state.decision, locals=new_locals
        )


class IdleProcess(Process):
    """A process that only ever takes dummy steps.

    Useful as a placeholder endpoint and in tests of the composition and
    fairness machinery.
    """

    def symmetry_key(self):
        # Stateless and connection-free: any two idle processes are
        # interchangeable.
        return ("idle",)

    def initial_locals(self) -> Hashable:
        return ()

    def handle_input(self, locals_value, action):
        return locals_value

    def next_action(self, locals_value):
        return None, locals_value


class ScriptProcess(Process):
    """A process that replays a fixed list of locally controlled actions.

    Each call to ``next_action`` emits the next scripted action; inputs
    are appended to a log in ``locals`` so tests can observe them.  Used
    heavily by the service-level unit tests as a deterministic client.
    """

    def __init__(
        self,
        endpoint: Hashable,
        script: Sequence[Action],
        connections: Sequence[Hashable] = (),
        input_values: Sequence[Hashable] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(endpoint, connections, input_values, name)
        self.script = tuple(script)

    def initial_locals(self) -> Hashable:
        # (script position, received-input log)
        return (0, ())

    def handle_input(self, locals_value, action):
        position, log = locals_value
        return (position, log + (action,))

    def next_action(self, locals_value):
        position, log = locals_value
        if position >= len(self.script):
            return None, locals_value
        return self.script[position], (position + 1, log)

    @staticmethod
    def received(state: ProcessState) -> tuple[Action, ...]:
        """The inputs a :class:`ScriptProcess` has received so far."""
        return state.locals[1]
