"""Failure schedules and fault injection (Section 2.2.3).

``fail_i`` actions arrive from the external world; a *failure schedule*
fixes when and whom they strike.  This module provides schedule values
and generators used by the integration tests and benchmarks: worst-case
prefixes (all failures up front, the shape used in the proofs of Lemmas
6-7), spread schedules, and seeded random schedules respecting a bound
``f`` on the number of failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..ioa.actions import Action, fail


@dataclass(frozen=True)
class FailureSchedule:
    """A set of timed failures: ``(step_index, endpoint)`` pairs."""

    events: tuple[tuple[int, Hashable], ...]

    def as_inputs(self) -> list[tuple[int, Action]]:
        """The schedule in the input format of :func:`repro.ioa.run`."""
        return [(step, fail(endpoint)) for step, endpoint in self.events]

    @property
    def victims(self) -> frozenset:
        """The endpoints that fail under this schedule."""
        return frozenset(endpoint for _, endpoint in self.events)

    def __len__(self) -> int:
        return len(self.events)


def no_failures() -> FailureSchedule:
    """The failure-free schedule."""
    return FailureSchedule(())


def upfront_failures(victims: Sequence[Hashable]) -> FailureSchedule:
    """All failures before any other step.

    This is the shape used in Lemmas 6-7: the first ``f + 1`` actions of
    the extension ``beta`` are ``fail_i``, ``i`` in ``J``.
    """
    return FailureSchedule(tuple((0, endpoint) for endpoint in victims))


def spread_failures(
    victims: Sequence[Hashable], start: int, gap: int
) -> FailureSchedule:
    """Failures spaced ``gap`` steps apart, beginning at ``start``."""
    return FailureSchedule(
        tuple((start + index * gap, endpoint) for index, endpoint in enumerate(victims))
    )


def random_failures(
    endpoints: Sequence[Hashable],
    max_failures: int,
    horizon: int,
    seed: int,
) -> FailureSchedule:
    """A seeded random schedule with at most ``max_failures`` victims.

    The victim set and strike times are drawn uniformly; schedules are
    reproducible from the seed, which the property-based tests rely on.
    """
    rng = random.Random(seed)
    count = rng.randint(0, min(max_failures, len(endpoints)))
    victims = rng.sample(list(endpoints), count)
    events = sorted((rng.randrange(max(1, horizon)), victim) for victim in victims)
    return FailureSchedule(tuple(events))


def all_failure_sets(
    endpoints: Sequence[Hashable], exactly: int
) -> Iterable[frozenset]:
    """Every failure set of the given size — used by exhaustive checks."""
    from itertools import combinations

    for combo in combinations(tuple(endpoints), exactly):
        yield frozenset(combo)
