"""The complete system ``C`` (Sections 2.2.2-2.2.3).

A distributed system for index sets ``I`` (processes), ``R`` (registers),
``K`` (resilient services) and a problem type ``T`` is the parallel
composition of the process automata, canonical resilient services, and
canonical reliable registers, with the inter-component communication
actions hidden.  Processes interact **only** via services and registers;
services never communicate directly.

:class:`DistributedSystem` packages the composition together with the
bookkeeping the analysis layer needs:

* participant computation (Section 2.2.3): every non-``fail`` action has
  at most two participants, and two distinct services (or two distinct
  processes) never share an action;
* projections of a composite state onto a process state, a service's
  ``val``, or a service's per-endpoint ``buffer(i)`` — the ingredients of
  the ``j``-similarity and ``k``-similarity definitions of Section 3.5;
* convenience accessors for decisions (the recorded decision component of
  each process) and for the failed set;
* Lemma 1's task-applicability predicate.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from ..ioa.actions import Action, fail, init, is_fail
from ..ioa.automaton import State, Task, Transition
from ..ioa.composition import Composition
from ..ioa.execution import Execution
from ..services.base import CanonicalServiceBase, ServiceState
from ..services.register import CanonicalRegister
from .process import Process, ProcessState


class DistributedSystem(Composition):
    """The composition ``C`` of processes, services, and registers.

    ``services`` holds the resilient services (index set ``K``) and
    ``registers`` the canonical reliable registers (index set ``R``);
    both are canonical service automata, distinguished because the
    similarity definitions and Lemma 8's case analysis treat them
    separately.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        services: Sequence[CanonicalServiceBase] = (),
        registers: Sequence[CanonicalRegister] = (),
        name: str = "C",
    ) -> None:
        self.processes: tuple[Process, ...] = tuple(processes)
        self.services: tuple[CanonicalServiceBase, ...] = tuple(services)
        self.registers: tuple[CanonicalRegister, ...] = tuple(registers)
        super().__init__(
            tuple(processes) + tuple(services) + tuple(registers), name=name
        )
        self.process_ids: tuple[Hashable, ...] = tuple(
            process.endpoint for process in self.processes
        )
        self.service_ids: tuple[Hashable, ...] = tuple(
            service.service_id for service in self.services
        )
        self.register_ids: tuple[Hashable, ...] = tuple(
            register.service_id for register in self.registers
        )
        self._process_by_endpoint = {
            process.endpoint: process for process in self.processes
        }
        self._service_by_id: dict[Hashable, CanonicalServiceBase] = {}
        for component in self.services + self.registers:
            if component.service_id in self._service_by_id:
                raise ValueError(
                    f"duplicate service/register index {component.service_id!r}"
                )
            self._service_by_id[component.service_id] = component
        self._validate_connections()

    def _validate_connections(self) -> None:
        endpoints = set(self.process_ids)
        for component in self.services + self.registers:
            for endpoint in component.endpoints:
                if endpoint not in endpoints:
                    raise ValueError(
                        f"{component.name}: endpoint {endpoint!r} is not a "
                        "process of this system"
                    )
        for process in self.processes:
            for connection in process.connections:
                component = self._service_by_id.get(connection)
                if component is None:
                    raise ValueError(
                        f"{process.name}: connected to unknown service "
                        f"{connection!r}"
                    )
                if not component.is_endpoint(process.endpoint):
                    raise ValueError(
                        f"{process.name}: not an endpoint of {component.name}"
                    )

    # -- component lookup ---------------------------------------------------------

    def process(self, endpoint: Hashable) -> Process:
        """The process automaton at ``endpoint``."""
        return self._process_by_endpoint[endpoint]

    def service(self, service_id: Hashable) -> CanonicalServiceBase:
        """The service or register with index ``service_id``."""
        return self._service_by_id[service_id]

    # -- state projections (ingredients of Section 3.5 similarity) -----------------

    def process_state(self, state: State, endpoint: Hashable) -> ProcessState:
        """The state of ``P_i`` within composite state ``state``."""
        return self.component_state(state, self.process(endpoint).name)

    def service_state(self, state: State, service_id: Hashable) -> ServiceState:
        """The full state of service/register ``service_id``."""
        return self.component_state(state, self.service(service_id).name)

    def service_val(self, state: State, service_id: Hashable):
        """The ``val`` component of a service (Section 3.5)."""
        return self.service_state(state, service_id).val

    def service_buffer(
        self, state: State, service_id: Hashable, endpoint: Hashable
    ) -> tuple[tuple, tuple]:
        """``buffer(i)_c``: the invocation/response buffer pair (Section 3)."""
        service = self.service(service_id)
        return service.buffer(self.service_state(state, service_id), endpoint)

    # -- decisions and failures ------------------------------------------------------

    def decisions(self, state: State) -> dict[Hashable, Hashable]:
        """The recorded decision of every process that has decided."""
        result = {}
        for endpoint in self.process_ids:
            decision = self.process_state(state, endpoint).decision
            if decision is not None:
                result[endpoint] = decision
        return result

    def decision_values(self, state: State) -> frozenset:
        """The set of values decided so far in ``state``."""
        return frozenset(self.decisions(state).values())

    def failed_processes(self, state: State) -> frozenset:
        """The endpoints whose processes have received ``fail``."""
        return frozenset(
            endpoint
            for endpoint in self.process_ids
            if self.process_state(state, endpoint).failed
        )

    # -- initializations (Section 3.2) --------------------------------------------------

    def initialization(self, assignments: Mapping[Hashable, Hashable]) -> Execution:
        """An initialization: exactly one ``init(v)_i`` input per process.

        ``assignments`` maps every endpoint in ``I`` to its initial value.
        Returns the finite execution consisting of those inputs applied in
        endpoint order from the canonical start state.
        """
        missing = set(self.process_ids) - set(assignments)
        if missing:
            raise ValueError(f"initialization missing endpoints {sorted(missing)!r}")
        execution = Execution(self.some_start_state())
        for endpoint in self.process_ids:
            action = init(endpoint, assignments[endpoint])
            post = self.apply_input(execution.final_state, action)
            execution = execution.extend(action, post, task=None)
        return execution

    def all_initializations(
        self, values: Sequence[Hashable] = (0, 1)
    ) -> Iterable[tuple[dict, Execution]]:
        """Every initialization over the given per-process value choices."""

        def assign(index: int, current: dict):
            if index == len(self.process_ids):
                yield dict(current), self.initialization(current)
                return
            endpoint = self.process_ids[index]
            for value in values:
                current[endpoint] = value
                yield from assign(index + 1, current)
            current.pop(endpoint, None)

        yield from assign(0, {})

    def fail_process(self, state: State, endpoint: Hashable) -> State:
        """Apply the ``fail_i`` input (delivered to ``P_i`` and all its services)."""
        return self.apply_input(state, fail(endpoint))

    # -- Lemma 1 ---------------------------------------------------------------------------

    def applicable(self, state: State, task: Task) -> bool:
        """Task applicability: some action of ``task`` enabled in ``state``.

        Lemma 1: in failure-free executions, an applicable task remains
        applicable until an action of that task occurs.  The test suite
        verifies this property by exploration.
        """
        return self.task_enabled(state, task)

    def process_tasks(self) -> list[Task]:
        """The (single) task of each process."""
        return [task for process in self.processes for task in process.tasks()]

    def service_tasks(self) -> list[Task]:
        """All tasks of services and registers."""
        return [
            task
            for component in self.services + self.registers
            for task in component.tasks()
        ]
