"""The system model of Section 2.2: processes, the composition C, faults."""

from .faults import (
    FailureSchedule,
    all_failure_sets,
    no_failures,
    random_failures,
    spread_failures,
    upfront_failures,
)
from .process import IdleProcess, Process, ProcessState, ScriptProcess
from .system import DistributedSystem

__all__ = [
    "DistributedSystem",
    "FailureSchedule",
    "IdleProcess",
    "Process",
    "ProcessState",
    "ScriptProcess",
    "all_failure_sets",
    "no_failures",
    "random_failures",
    "spread_failures",
    "upfront_failures",
]
