"""Shared fixtures: small canonical systems used across the test suite.

Also the replay-hint protocol for randomized tests: a test that draws a
seed registers it (plus the one-line reproduction command) through the
``replay_hint`` fixture, and any failure then carries a ``replay``
report section showing exactly how to re-run that schedule offline —
seeds never die in CI logs unprinted.
"""

import pytest

from repro.ioa import invoke
from repro.services import CanonicalAtomicObject, CanonicalRegister
from repro.system import DistributedSystem, ScriptProcess
from repro.types import binary_consensus_type, read_write_type


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    """Point the run ledger at the test's tmp dir, never the checkout.

    CLI commands register runs under ``$REPRO_RUNS_DIR`` (default
    ``.repro/runs`` in the CWD); without this fixture every CLI test
    would write ledger files into the working tree.  Tests that care
    about the ledger pass ``--runs-dir`` explicitly and are unaffected.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs-ledger"))


@pytest.fixture
def replay_hint(request):
    """Register ``(seed, command)`` pairs surfaced when this test fails.

    Usage::

        def test_random_thing(replay_hint):
            seed = 1234
            replay_hint(seed, f"PYTHONPATH=src python -m repro sim "
                              f"exchange --seed {seed} --faults drop=1")
            ...

    On failure the pytest report gains a ``replay`` section listing every
    registered seed and its one-line reproduction command.
    """
    hints = request.node._replay_hints = []

    def _register(seed, command=None) -> None:
        line = f"seed={seed}"
        if command:
            line += f"  replay: {command}"
        hints.append(line)

    return _register


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        hints = getattr(item, "_replay_hints", None)
        if hints:
            report.sections.append(("replay", "\n".join(hints)))


@pytest.fixture
def consensus_object():
    """A 1-resilient binary consensus object on endpoints {0, 1, 2}."""
    return CanonicalAtomicObject(
        sequential_type=binary_consensus_type(),
        endpoints=(0, 1, 2),
        resilience=1,
        service_id="cons",
    )


@pytest.fixture
def small_register():
    """A wait-free register on endpoints {0, 1} over values {empty, 0, 1}."""
    return CanonicalRegister(
        "reg", endpoints=(0, 1), values=("empty", 0, 1), initial="empty"
    )


@pytest.fixture
def register_system(small_register):
    """Two scripted processes writing/reading one shared register."""
    p0 = ScriptProcess(
        0,
        [invoke("reg", 0, ("write", 1)), invoke("reg", 0, ("read",))],
        connections=["reg"],
    )
    p1 = ScriptProcess(1, [invoke("reg", 1, ("read",))], connections=["reg"])
    return DistributedSystem([p0, p1], registers=[small_register])
