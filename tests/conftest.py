"""Shared fixtures: small canonical systems used across the test suite."""

import pytest

from repro.ioa import invoke
from repro.services import CanonicalAtomicObject, CanonicalRegister
from repro.system import DistributedSystem, ScriptProcess
from repro.types import binary_consensus_type, read_write_type


@pytest.fixture
def consensus_object():
    """A 1-resilient binary consensus object on endpoints {0, 1, 2}."""
    return CanonicalAtomicObject(
        sequential_type=binary_consensus_type(),
        endpoints=(0, 1, 2),
        resilience=1,
        service_id="cons",
    )


@pytest.fixture
def small_register():
    """A wait-free register on endpoints {0, 1} over values {empty, 0, 1}."""
    return CanonicalRegister(
        "reg", endpoints=(0, 1), values=("empty", 0, 1), initial="empty"
    )


@pytest.fixture
def register_system(small_register):
    """Two scripted processes writing/reading one shared register."""
    p0 = ScriptProcess(
        0,
        [invoke("reg", 0, ("write", 1)), invoke("reg", 0, ("read",))],
        connections=["reg"],
    )
    p1 = ScriptProcess(1, [invoke("reg", 1, ("read",))], connections=["reg"])
    return DistributedSystem([p0, p1], registers=[small_register])
