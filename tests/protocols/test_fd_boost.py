"""Unit tests for the Section 6.3 boosted failure detector construction."""

import pytest

from repro.ioa import RandomScheduler, RoundRobinScheduler, run
from repro.protocols import (
    BOOSTED_FD_ID,
    boosted_fd_system,
    boosted_reports,
    pair_detector_id,
    suspicion_register_id,
)
from repro.system import FailureSchedule


def drive(n, failures=(), steps=4000, seed=None):
    system = boosted_fd_system(n)
    scheduler = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    schedule = FailureSchedule(tuple(failures))
    execution = run(system, scheduler, max_steps=steps, inputs=schedule.as_inputs())
    return system, execution


class TestShape:
    def test_one_detector_per_pair(self):
        system = boosted_fd_system(4)
        assert len(system.services) == 6  # C(4,2)
        for service in system.services:
            assert len(service.endpoints) == 2
            assert service.resilience == 1
            assert service.is_wait_free  # 1-resilient 2-process = wait-free

    def test_one_register_per_process(self):
        system = boosted_fd_system(3)
        assert len(system.registers) == 3
        for register in system.registers:
            assert register.endpoints == (0, 1, 2)

    def test_pair_detector_id_symmetric(self):
        assert pair_detector_id(2, 0) == pair_detector_id(0, 2)


class TestAccuracy:
    def test_no_false_suspicions_failure_free(self):
        _, execution = drive(3)
        for endpoint in range(3):
            for report in boosted_reports(execution, endpoint):
                assert report == frozenset()

    def test_reports_subset_of_failed_prefix(self):
        """Strong accuracy: every emitted set only contains real failures."""
        _, execution = drive(3, failures=[(50, 1), (200, 2)])
        failed = set()
        for step in execution.steps:
            if step.action.kind == "fail":
                failed.add(step.action.args[0])
            if (
                step.action.kind == "respond"
                and step.action.args[0] == BOOSTED_FD_ID
            ):
                assert step.action.args[2][1] <= failed

    def test_accuracy_across_random_schedules(self):
        for seed in range(8):
            _, execution = drive(3, failures=[(30, 0)], steps=2500, seed=seed)
            failed = set()
            for step in execution.steps:
                if step.action.kind == "fail":
                    failed.add(step.action.args[0])
                if (
                    step.action.kind == "respond"
                    and step.action.args[0] == BOOSTED_FD_ID
                ):
                    assert step.action.args[2][1] <= failed


class TestCompleteness:
    def test_failure_eventually_reported_to_all_survivors(self):
        _, execution = drive(3, failures=[(100, 2)], steps=6000)
        for endpoint in (0, 1):
            reports = boosted_reports(execution, endpoint)
            assert reports, f"no reports at {endpoint}"
            assert reports[-1] == frozenset({2})

    def test_multiple_failures_accumulate(self):
        _, execution = drive(4, failures=[(100, 2), (400, 3)], steps=12_000)
        for endpoint in (0, 1):
            reports = boosted_reports(execution, endpoint)
            assert reports[-1] == frozenset({2, 3})

    def test_suspicions_are_monotone(self):
        """Once suspected (accurately), never unsuspected."""
        _, execution = drive(3, failures=[(100, 2)], steps=6000)
        for endpoint in (0, 1):
            reports = boosted_reports(execution, endpoint)
            for earlier, later in zip(reports, reports[1:]):
                assert earlier <= later

    def test_survives_n_minus_1_failures(self):
        # Wait-freedom of the boosted detector: the lone survivor still
        # gets reports (its pair detectors are 1-resilient).
        _, execution = drive(3, failures=[(50, 1), (50, 2)], steps=8000)
        reports = boosted_reports(execution, 0)
        assert reports and reports[-1] == frozenset({1, 2})


class TestCanonicalTraceInclusion:
    def test_single_failure_trace_is_canonical(self):
        """In single-failure runs the boosted outputs are snapshot-exact,
        so the emitted trace is a trace of the canonical wait-free
        n-process perfect failure detector (the Section 2.1.4
        implementation relation, checked by simulation)."""
        from repro.analysis import canonical_accepts_trace
        from repro.ioa import Action, fail
        from repro.services import PerfectFailureDetector

        _, execution = drive(3, failures=[(60, 2)], steps=2500)
        canonical = PerfectFailureDetector(
            BOOSTED_FD_ID, endpoints=(0, 1, 2), resilience=2
        )
        trace = [
            step.action
            for step in execution.steps
            if (
                step.action.kind == "respond"
                and step.action.args[0] == BOOSTED_FD_ID
            )
            or step.action.kind == "fail"
        ]
        # Keep the trace short: the simulation search must consider every
        # way the canonical detector could have queued reports, which
        # grows quickly with the number of responses still to match.
        short = trace[:8]
        assert any(a.kind == "fail" for a in short) or len(short) == 8
        assert canonical_accepts_trace(canonical, short, max_states=300_000)
