"""Unit tests for the atomic snapshot construction (Afek et al.)."""

import pytest

from repro.analysis import trace_is_linearizable
from repro.ioa import RandomScheduler, RoundRobinScheduler, run
from repro.protocols.snapshot import (
    SNAPSHOT_ID,
    SnapshotLocals,
    SnapshotProcess,
    snapshot_system,
    snapshot_trace,
    snapshot_type,
)
from repro.system import FailureSchedule


def drive(scripts, steps=5000, seed=None, failures=()):
    system = snapshot_system(scripts)
    scheduler = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    execution = run(
        system,
        scheduler,
        max_steps=steps,
        inputs=FailureSchedule(tuple(failures)).as_inputs(),
    )
    return system, execution


class TestSequentialType:
    def test_update_sets_component(self):
        stype = snapshot_type((0, 1), values=(1, 2), initial=0)
        ((response, vector),) = stype.apply(("update", 1, 2), (0, 0))
        assert response == ("ack",)
        assert vector == (0, 2)

    def test_scan_returns_vector(self):
        stype = snapshot_type((0, 1), values=(1, 2), initial=0)
        ((response, vector),) = stype.apply(("scan",), (1, 2))
        assert response == ("view", (1, 2))
        assert vector == (1, 2)

    def test_deterministic(self):
        stype = snapshot_type((0, 1), values=(1,), initial=0)
        assert stype.is_deterministic()


class TestBasicOperation:
    def test_scan_after_updates_sees_everything(self):
        _, execution = drive(
            {0: [("update", 1), ("scan",)], 1: [("update", 2), ("scan",)]}
        )
        trace = snapshot_trace(execution)
        views = [
            a.args[2][1]
            for a in trace
            if a.kind == "respond" and a.args[2][0] == "view"
        ]
        assert views and all(view == (1, 2) for view in views)

    def test_initial_scan_sees_zeros(self):
        _, execution = drive({0: [("scan",)], 1: []})
        trace = snapshot_trace(execution)
        views = [
            a.args[2][1]
            for a in trace
            if a.kind == "respond" and a.args[2][0] == "view"
        ]
        assert views == [(0, 0)]

    def test_all_operations_complete(self):
        _, execution = drive(
            {
                0: [("update", 1), ("scan",), ("update", 3)],
                1: [("scan",), ("update", 2)],
            },
            steps=8000,
        )
        trace = snapshot_trace(execution)
        assert sum(1 for a in trace if a.kind == "respond") == 5


class TestLinearizability:
    @pytest.mark.parametrize("seed", range(10))
    def test_two_process_histories(self, seed):
        _, execution = drive(
            {0: [("update", 1), ("scan",)], 1: [("update", 2), ("scan",)]},
            seed=seed,
        )
        stype = snapshot_type((0, 1), values=(1, 2), initial=0)
        assert trace_is_linearizable(
            snapshot_trace(execution), SNAPSHOT_ID, stype
        ), seed

    @pytest.mark.parametrize("seed", range(6))
    def test_three_process_histories(self, seed):
        _, execution = drive(
            {
                0: [("update", 1), ("scan",)],
                1: [("update", 2)],
                2: [("scan",), ("update", 3)],
            },
            seed=seed,
            steps=10_000,
        )
        stype = snapshot_type((0, 1, 2), values=(1, 2, 3), initial=0)
        assert trace_is_linearizable(
            snapshot_trace(execution), SNAPSHOT_ID, stype
        ), seed


class TestWaitFreedom:
    def test_scanner_finishes_despite_crashed_updaters(self):
        _, execution = drive(
            {0: [("scan",)], 1: [("update", 2)], 2: [("update", 3)]},
            failures=[(3, 1), (3, 2)],
            steps=8000,
        )
        trace = snapshot_trace(execution)
        views = [
            a
            for a in trace
            if a.kind == "respond" and a.args[1] == 0 and a.args[2][0] == "view"
        ]
        assert len(views) == 1

    def test_update_finishes_alone(self):
        _, execution = drive(
            {0: [("update", 1)], 1: []}, failures=[(0, 1)], steps=5000
        )
        trace = snapshot_trace(execution)
        acks = [a for a in trace if a.kind == "respond" and a.args[2] == ("ack",)]
        assert len(acks) == 1


class TestBorrowedViewBranch:
    def make_process(self):
        return SnapshotProcess(0, (0, 1), [("scan",)])

    def test_clean_double_collect_returns_values(self):
        process = self.make_process()
        first = ((5, 1, None), (7, 2, None))
        locals_value = SnapshotLocals(
            phase="collect",
            op_index=0,
            seq=0,
            pending_value=None,
            first_collect=first,
            current_collect=first,
            cursor=2,
            baseline=(1, 2),
            result=None,
        )
        finished = process._finish_double_collect(locals_value)
        assert finished.phase == "scan-done"
        assert finished.result == (5, 7)

    def test_moved_twice_borrows_embedded_view(self):
        process = self.make_process()
        first = ((5, 1, None), (7, 2, None))
        # Endpoint 1 moved twice (seq 2 -> 4) carrying an embedded view.
        second = ((5, 1, None), (9, 4, (5, 8)))
        locals_value = SnapshotLocals(
            phase="collect",
            op_index=0,
            seq=0,
            pending_value=None,
            first_collect=first,
            current_collect=second,
            cursor=2,
            baseline=(1, 2),
            result=None,
        )
        finished = process._finish_double_collect(locals_value)
        assert finished.phase == "scan-done"
        assert finished.result == (5, 8)  # the borrowed view

    def test_moved_once_keeps_collecting(self):
        process = self.make_process()
        first = ((5, 1, None), (7, 2, None))
        second = ((5, 1, None), (8, 3, (5, 7)))  # moved only once
        locals_value = SnapshotLocals(
            phase="collect",
            op_index=0,
            seq=0,
            pending_value=None,
            first_collect=first,
            current_collect=second,
            cursor=2,
            baseline=(1, 2),
            result=None,
        )
        continued = process._finish_double_collect(locals_value)
        assert continued.phase == "collect"
        assert continued.first_collect == second
