"""Unit tests for consensus from test&set (consensus number 2).

Verifies the construction against (a) the consensus axioms, (b) the
linearizability checker, and (c) the paper's implementation relation —
trace inclusion in the canonical wait-free 2-process consensus object.
"""

import pytest

from repro.analysis import (
    canonical_accepts_trace,
    exhaustive_safety_check,
    run_consensus_round,
    trace_is_linearizable,
)
from repro.ioa import RandomScheduler, RoundRobinScheduler, run
from repro.protocols.tas_consensus import (
    IMPLEMENTED_ID,
    implemented_consensus_trace,
    tas_consensus_system,
)
from repro.services import CanonicalAtomicObject
from repro.system import FailureSchedule, upfront_failures
from repro.types import binary_consensus_type


class TestConsensusAxioms:
    @pytest.mark.parametrize(
        "proposals", [{0: 0, 1: 0}, {0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}]
    )
    def test_failure_free_all_inputs(self, proposals):
        check = run_consensus_round(tas_consensus_system(), proposals)
        assert check.ok, check.violations
        assert set(check.decisions.values()) <= set(proposals.values())

    def test_wait_free_one_crash(self):
        # Wait-freedom: the survivor decides alone.
        for victim in (0, 1):
            check = run_consensus_round(
                tas_consensus_system(),
                {0: 0, 1: 1},
                failure_schedule=upfront_failures([victim]),
            )
            assert check.ok, (victim, check.violations)
            assert 1 - victim in check.decisions

    def test_mid_run_crash(self):
        for strike in (2, 5, 9):
            check = run_consensus_round(
                tas_consensus_system(),
                {0: 0, 1: 1},
                failure_schedule=FailureSchedule(((strike, 0),)),
            )
            assert check.ok, (strike, check.violations)

    def test_exhaustive_safety(self):
        result = exhaustive_safety_check(
            tas_consensus_system(), {0: 0, 1: 1}, max_states=500_000
        )
        assert result.ok

    def test_random_schedules(self):
        for seed in range(15):
            check = run_consensus_round(
                tas_consensus_system(), {0: 1, 1: 0}, seed=seed
            )
            assert check.ok, (seed, check.violations)

    def test_winner_takes_schedule_dependent_value(self):
        outcomes = set()
        for seed in range(25):
            check = run_consensus_round(
                tas_consensus_system(), {0: 0, 1: 1}, seed=seed
            )
            outcomes.update(check.decisions.values())
        assert outcomes == {0, 1}


class TestImplementationRelation:
    def run_trace(self, proposals, seed=None, failures=()):
        system = tas_consensus_system()
        initialization = system.initialization(proposals)
        scheduler = (
            RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
        )
        execution = run(
            system,
            scheduler,
            max_steps=300,
            start=initialization.final_state,
            inputs=FailureSchedule(tuple(failures)).as_inputs(),
        )
        return implemented_consensus_trace(execution)

    def test_history_linearizable(self):
        for seed in range(10):
            trace = self.run_trace({0: 0, 1: 1}, seed=seed)
            assert trace_is_linearizable(
                trace, IMPLEMENTED_ID, binary_consensus_type()
            ), seed

    def test_trace_included_in_canonical_object(self):
        """The paper's implementation relation (Section 2.1.4): every
        trace of the implementation is a trace of the canonical
        wait-free 2-process consensus object."""
        canonical = CanonicalAtomicObject(
            binary_consensus_type(),
            endpoints=(0, 1),
            resilience=1,
            service_id=IMPLEMENTED_ID,
        )
        for seed in range(10):
            trace = self.run_trace({0: 0, 1: 1}, seed=seed)
            assert canonical_accepts_trace(canonical, trace), seed

    def test_trace_inclusion_with_failures(self):
        canonical = CanonicalAtomicObject(
            binary_consensus_type(),
            endpoints=(0, 1),
            resilience=1,
            service_id=IMPLEMENTED_ID,
        )
        trace = self.run_trace({0: 0, 1: 1}, failures=[(4, 0)])
        # The implemented trace contains only the external events of the
        # implemented object; fail actions belong to its signature too.
        assert canonical_accepts_trace(canonical, trace)
