"""Tests for consensus from a shared queue (consensus number 2)."""

import pytest

from repro.analysis import (
    canonical_accepts_trace,
    exhaustive_safety_check,
    run_consensus_round,
    trace_is_linearizable,
)
from repro.ioa import RandomScheduler, RoundRobinScheduler, run
from repro.protocols.queue_consensus import (
    IMPLEMENTED_ID,
    queue_consensus_system,
)
from repro.services import CanonicalAtomicObject
from repro.system import upfront_failures
from repro.types import binary_consensus_type


def implemented_trace(execution):
    return [
        step.action
        for step in execution.steps
        if step.action.kind in ("invoke", "respond")
        and step.action.args[0] == IMPLEMENTED_ID
    ]


class TestAxioms:
    @pytest.mark.parametrize(
        "proposals", [{0: 0, 1: 0}, {0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}]
    )
    def test_all_input_vectors(self, proposals):
        check = run_consensus_round(queue_consensus_system(), proposals)
        assert check.ok, check.violations

    def test_wait_free_single_crash(self):
        for victim in (0, 1):
            check = run_consensus_round(
                queue_consensus_system(),
                {0: 0, 1: 1},
                failure_schedule=upfront_failures([victim]),
            )
            assert check.ok, (victim, check.violations)
            assert 1 - victim in check.decisions

    def test_exhaustive_safety(self):
        result = exhaustive_safety_check(
            queue_consensus_system(), {0: 0, 1: 1}, max_states=500_000
        )
        assert result.ok

    def test_winner_schedule_dependent(self):
        outcomes = set()
        for seed in range(20):
            check = run_consensus_round(
                queue_consensus_system(), {0: 0, 1: 1}, seed=seed
            )
            outcomes.update(check.decisions.values())
        assert outcomes == {0, 1}


class TestImplementationRelation:
    def test_traces_included_in_canonical_object(self):
        canonical = CanonicalAtomicObject(
            binary_consensus_type(),
            endpoints=(0, 1),
            resilience=1,
            service_id=IMPLEMENTED_ID,
        )
        for seed in range(8):
            system = queue_consensus_system()
            initialization = system.initialization({0: 0, 1: 1})
            execution = run(
                system,
                RandomScheduler(seed),
                max_steps=300,
                start=initialization.final_state,
            )
            trace = implemented_trace(execution)
            assert canonical_accepts_trace(canonical, trace), seed
            assert trace_is_linearizable(
                trace, IMPLEMENTED_ID, binary_consensus_type()
            ), seed


class TestQueueMechanics:
    def test_exactly_one_winner_token(self):
        system = queue_consensus_system()
        initialization = system.initialization({0: 1, 1: 0})
        execution = run(
            system,
            RoundRobinScheduler(),
            max_steps=300,
            start=initialization.final_state,
        )
        winners = [
            step.action
            for step in execution.steps
            if step.action.kind == "respond"
            and step.action.args[0] == "queue"
            and step.action.args[2] == ("item", "winner")
        ]
        assert len(winners) == 1
