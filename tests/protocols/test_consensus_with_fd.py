"""Unit tests for rotating-coordinator consensus over failure detectors."""

import pytest

from repro.analysis import (
    exhaustive_safety_check,
    liveness_attack,
    run_consensus_round,
)
from repro.protocols import (
    consensus_via_pairwise_fds_system,
    consensus_with_shared_fd_system,
)
from repro.system import all_failure_sets, upfront_failures


class TestPairwiseFDConsensus:
    """The Section 6.3 possibility: any number of failures tolerated."""

    def test_failure_free(self):
        check = run_consensus_round(
            consensus_via_pairwise_fds_system(3), {0: 1, 1: 0, 2: 0}
        )
        assert check.ok, check.violations

    def test_every_single_failure(self):
        for victim in range(3):
            check = run_consensus_round(
                consensus_via_pairwise_fds_system(3),
                {0: 1, 1: 0, 2: 0},
                failure_schedule=upfront_failures([victim]),
                max_steps=50_000,
            )
            assert check.ok, (victim, check.violations)

    def test_every_double_failure(self):
        # n - 1 = 2 failures: beyond any fixed f < n - 1; the boost is real.
        for victims in all_failure_sets(range(3), exactly=2):
            check = run_consensus_round(
                consensus_via_pairwise_fds_system(3),
                {0: 1, 1: 0, 2: 1},
                failure_schedule=upfront_failures(sorted(victims)),
                max_steps=50_000,
            )
            assert check.ok, (victims, check.violations)
            survivor = (set(range(3)) - victims).pop()
            assert survivor in check.decisions

    def test_validity_uniform_inputs(self):
        for value in (0, 1):
            check = run_consensus_round(
                consensus_via_pairwise_fds_system(3),
                {0: value, 1: value, 2: value},
            )
            assert set(check.decisions.values()) == {value}

    def test_random_schedules_and_failures(self):
        from repro.system import random_failures

        for seed in range(10):
            schedule = random_failures(range(3), max_failures=2, horizon=300, seed=seed)
            check = run_consensus_round(
                consensus_via_pairwise_fds_system(3),
                {0: 0, 1: 1, 2: 0},
                failure_schedule=schedule,
                seed=seed,
                max_steps=60_000,
            )
            assert check.ok, (seed, schedule, check.violations)

    def test_mid_run_coordinator_crash(self):
        # Crash the round-0 coordinator after it may have written.
        from repro.system import FailureSchedule

        check = run_consensus_round(
            consensus_via_pairwise_fds_system(3),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=FailureSchedule(((40, 0),)),
            max_steps=50_000,
        )
        assert check.ok, check.violations


class TestSharedFDConsensus:
    def test_wait_free_fd_gives_full_tolerance(self):
        for victims in all_failure_sets(range(3), exactly=2):
            check = run_consensus_round(
                consensus_with_shared_fd_system(3, fd_resilience=2),
                {0: 1, 1: 0, 2: 0},
                failure_schedule=upfront_failures(sorted(victims)),
                max_steps=50_000,
            )
            assert check.ok, (victims, check.violations)

    def test_resilient_fd_works_within_resilience(self):
        check = run_consensus_round(
            consensus_with_shared_fd_system(3, fd_resilience=1),
            {0: 1, 1: 0, 2: 0},
            failure_schedule=upfront_failures([0]),
            max_steps=50_000,
        )
        assert check.ok, check.violations

    def test_theorem10_attack_beyond_resilience(self):
        # The Theorem 10 doomed shape: one f-resilient all-connected FD.
        system = consensus_with_shared_fd_system(3, fd_resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system,
            root,
            victims=[0, 1],
            horizon=100_000,
            failure_aware_services=["P"],
        )
        assert violation is not None
        assert violation.exact
        assert violation.survivors == frozenset({2})

    def test_safety_across_many_schedules(self):
        # Exhaustive exploration is infeasible here: the canonical FD's
        # compute tasks may queue reports without bound, so the raw state
        # space is infinite.  Sweep seeded random schedules instead.
        for seed in range(12):
            check = run_consensus_round(
                consensus_with_shared_fd_system(2, fd_resilience=1),
                {0: 0, 1: 1},
                seed=seed,
                max_steps=30_000,
            )
            # Safety axioms must hold on every schedule (termination is
            # checked by the dedicated liveness tests above).
            assert all(
                v.axiom not in ("agreement", "validity") for v in check.violations
            ), (seed, check.violations)
