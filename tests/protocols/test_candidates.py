"""Unit tests for the doomed candidate protocols."""

import pytest

from repro.analysis import (
    exhaustive_safety_check,
    liveness_attack,
    run_consensus_round,
)
from repro.protocols import (
    DelegationProcess,
    delegation_consensus_system,
    grouped_delegation_system,
    min_register_consensus_system,
    race_register_consensus_system,
    tob_delegation_system,
)
from repro.system import upfront_failures
from repro.engine import Budget


class TestDelegation:
    def test_correct_within_resilience(self):
        # With at most f failures the candidate actually works.
        for victims in ([], [2]):
            check = run_consensus_round(
                delegation_consensus_system(3, resilience=1),
                {0: 1, 1: 0, 2: 0},
                failure_schedule=upfront_failures(victims),
            )
            assert check.ok, check.violations

    def test_safe_under_all_schedules(self):
        result = exhaustive_safety_check(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        assert result.ok

    def test_decision_is_schedule_dependent(self):
        outcomes = set()
        for seed in range(20):
            check = run_consensus_round(
                delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}, seed=seed
            )
            outcomes.update(check.decisions.values())
        assert outcomes == {0, 1}

    def test_breaks_beyond_resilience(self):
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        assert liveness_attack(system, root, victims=[0, 1]) is not None

    def test_process_phases(self):
        process = DelegationProcess(0, "cons")
        locals_value = process.initial_locals()
        assert locals_value == ("idle",)
        from repro.ioa import init

        locals_value = process.handle_input(locals_value, init(0, 1))
        assert locals_value == ("propose", 1)
        action, locals_value = process.next_action(locals_value)
        assert action.kind == "invoke"
        assert locals_value == ("wait",)

    def test_late_inputs_ignored(self):
        from repro.ioa import init

        process = DelegationProcess(0, "cons")
        state = process.handle_input(("wait",), init(0, 1))
        assert state == ("wait",)  # second init has no effect


class TestTOBDelegation:
    def test_correct_within_resilience(self):
        check = run_consensus_round(
            tob_delegation_system(3, resilience=1),
            {0: 1, 1: 0, 2: 1},
            failure_schedule=upfront_failures([0]),
        )
        assert check.ok, check.violations

    def test_safe_under_all_schedules(self):
        result = exhaustive_safety_check(
            tob_delegation_system(2, resilience=0), {0: 0, 1: 1}, max_states=400_000
        )
        assert result.ok

    def test_breaks_beyond_resilience(self):
        system = tob_delegation_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        assert liveness_attack(system, root, victims=[0, 1]) is not None


class TestMinRegister:
    def test_solves_zero_resilient_consensus(self):
        for proposals in ({0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            check = run_consensus_round(min_register_consensus_system(), proposals)
            assert check.ok
            expected = min(proposals.values())
            assert set(check.decisions.values()) == {expected}

    def test_safe_under_all_schedules(self):
        result = exhaustive_safety_check(
            min_register_consensus_system(), {0: 0, 1: 1}
        )
        assert result.ok

    def test_fails_one_resilience(self):
        system = min_register_consensus_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        violation = liveness_attack(system, root, victims=[1])
        assert violation is not None and violation.exact


class TestRace:
    def test_agreement_violated_somewhere(self):
        result = exhaustive_safety_check(
            race_register_consensus_system(), {0: 0, 1: 1}
        )
        assert not result.ok

    def test_works_when_sequentialized(self):
        # A schedule that lets process 0 finish first is fine.
        check = run_consensus_round(
            race_register_consensus_system(), {0: 0, 1: 1}, seed=None
        )
        # Round-robin interleaves; just check validity holds regardless.
        assert all(v.axiom != "validity" for v in check.violations)


class TestGroupedDelegation:
    def test_within_group_agreement(self):
        system = grouped_delegation_system([2, 2])
        check = run_consensus_round(
            system, {0: 0, 1: 1, 2: 1, 3: 0}, k=2
        )
        # As 2-set consensus it is fine.
        assert check.ok, check.violations

    def test_cross_group_disagreement_possible(self):
        system = grouped_delegation_system([2, 2])
        result = exhaustive_safety_check(system, {0: 0, 1: 0, 2: 1, 3: 1})
        assert not result.ok
        assert result.violations[0].axiom == "agreement"

    def test_group_sizes_respected(self):
        system = grouped_delegation_system([1, 2, 3])
        assert len(system.processes) == 6
        assert len(system.services) == 3
        assert system.service("cons2").endpoints == (3, 4, 5)


class TestLastWriter:
    def test_solves_zero_resilient_consensus(self):
        from repro.protocols import last_writer_register_system

        for proposals in ({0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            check = run_consensus_round(last_writer_register_system(), proposals)
            assert check.ok, check.violations
            # The decision is the LAST performed write -- some proposal.
            assert set(check.decisions.values()) <= set(proposals.values())

    def test_safe_under_all_schedules(self):
        from repro.protocols import last_writer_register_system

        result = exhaustive_safety_check(
            last_writer_register_system(), {0: 0, 1: 1}, max_states=500_000
        )
        assert result.ok

    def test_decision_is_schedule_dependent(self):
        from repro.protocols import last_writer_register_system

        outcomes = set()
        for seed in range(20):
            check = run_consensus_round(
                last_writer_register_system(), {0: 0, 1: 1}, seed=seed
            )
            outcomes.update(check.decisions.values())
        assert outcomes == {0, 1}

    def test_full_pipeline_refutes_via_register_case(self):
        """The adversary pipeline's second complete path: a hook whose
        Lemma 8 analysis lands in the shared-REGISTER case (Claim 5.1b),
        refuted through Lemma 6 (process similarity)."""
        from repro.analysis import refute_candidate
        from repro.protocols import last_writer_register_system

        verdict = refute_candidate(
            last_writer_register_system(), budget=Budget(max_states=500_000)
        )
        assert verdict.refuted
        assert verdict.mechanism == "similarity-termination"
        assert verdict.lemma8.claim == "claim5.1b-write-first"
        assert verdict.lemma8.violation.kind == "process"
        assert len(verdict.refutation.victims) == 1  # f + 1 with f = 0
        assert verdict.refutation.exact

    def test_crash_before_flag_blocks_survivor(self):
        from repro.protocols import last_writer_register_system

        system = last_writer_register_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        violation = liveness_attack(system, root, victims=[0], horizon=50_000)
        assert violation is not None and violation.exact
