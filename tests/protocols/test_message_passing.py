"""Message-passing candidates: the 2002 technical-report setting.

Processes coordinating only through an f-resilient asynchronous network
(a failure-oblivious service) cannot solve (f+1)-resilient consensus —
the original message-passing form of the boosting impossibility, refuted
here through the full Theorem 9 pipeline.
"""

import pytest

from repro.analysis import (
    exhaustive_safety_check,
    liveness_attack,
    refute_candidate,
    run_consensus_round,
)
from repro.protocols.message_passing import (
    arbiter_consensus_system,
    exchange_consensus_system,
)
from repro.system import upfront_failures
from repro.engine import Budget


class TestArbiterCandidate:
    def test_correct_failure_free(self):
        for proposals in ({0: 0, 1: 1, 2: 0}, {0: 1, 1: 1, 2: 0}):
            check = run_consensus_round(arbiter_consensus_system(3, 0), proposals)
            assert check.ok, check.violations
            # The winner is one of the proposers' values.
            assert set(check.decisions.values()) <= {
                proposals[0], proposals[1]
            }

    def test_safe_under_all_schedules(self):
        result = exhaustive_safety_check(
            arbiter_consensus_system(3, 0), {0: 0, 1: 1, 2: 0}, max_states=600_000
        )
        assert result.ok

    def test_decision_is_schedule_dependent(self):
        outcomes = set()
        for seed in range(20):
            check = run_consensus_round(
                arbiter_consensus_system(3, 0), {0: 0, 1: 1, 2: 0}, seed=seed
            )
            outcomes.update(check.decisions.values())
        assert outcomes == {0, 1}

    def test_full_pipeline_refutes(self):
        """The message-passing instantiation of Theorem 9: the hook's
        tasks are perform tasks of the network service."""
        verdict = refute_candidate(
            arbiter_consensus_system(3, 0), budget=Budget(max_states=600_000)
        )
        assert verdict.refuted
        assert verdict.mechanism == "similarity-termination"
        assert verdict.lemma8.claim == "claim4.1-shared-service-internal"
        assert verdict.lemma8.violation.index == "net"
        assert verdict.refutation.exact

    def test_higher_resilience_instance(self):
        verdict = refute_candidate(
            arbiter_consensus_system(3, 1), budget=Budget(max_states=900_000)
        )
        assert verdict.refuted
        assert len(verdict.refutation.victims) == 2  # f + 1


class TestExchangeCandidate:
    def test_solves_zero_resilient_consensus(self):
        for proposals in ({0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            check = run_consensus_round(exchange_consensus_system(0), proposals)
            assert check.ok, check.violations
            assert set(check.decisions.values()) == {min(proposals.values())}

    def test_safe_under_all_schedules(self):
        result = exhaustive_safety_check(
            exchange_consensus_system(0), {0: 0, 1: 1}, max_states=300_000
        )
        assert result.ok

    def test_one_crash_blocks_peer(self):
        system = exchange_consensus_system(0)
        root = system.initialization({0: 0, 1: 1}).final_state
        violation = liveness_attack(system, root, victims=[1], horizon=50_000)
        assert violation is not None and violation.exact
        assert violation.survivors == frozenset({0})

    def test_within_resilience_network_stays_live(self):
        # A 1-resilient network survives one crash: the exchange protocol
        # then STILL blocks — because the peer process (not the network)
        # is what went silent.  The candidate cannot even use the extra
        # network resilience; this is the FLP content.
        system = exchange_consensus_system(resilience=1)
        root = system.initialization({0: 0, 1: 1}).final_state
        violation = liveness_attack(system, root, victims=[1], horizon=50_000)
        assert violation is not None
