"""The mixed failure-oblivious + failure-aware candidate (Theorem 10)."""

import pytest

from repro.analysis import (
    check_agreement,
    check_validity,
    liveness_attack,
    run_consensus_round,
)
from repro.protocols.mixed_candidate import FD_ID, TOB_ID, mixed_service_system
from repro.system import upfront_failures


class TestWithinBudget:
    def test_failure_free(self):
        check = run_consensus_round(
            mixed_service_system(3, resilience=1), {0: 0, 1: 1, 2: 1}
        )
        assert check.ok, check.violations

    def test_one_failure(self):
        check = run_consensus_round(
            mixed_service_system(3, resilience=1),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=upfront_failures([1]),
        )
        assert check.ok, check.violations

    def test_fd_escape_hatch_saves_sole_survivor(self):
        """With a wait-free instance, the FD path lets the lone survivor
        decide its own value even though its broadcast may never be
        echoed to anyone."""
        check = run_consensus_round(
            mixed_service_system(3, resilience=2),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=upfront_failures([0, 1]),
            max_steps=50_000,
        )
        assert check.ok, check.violations
        assert check.decisions == {2: 1}

    def test_safety_across_seeds(self):
        for seed in range(12):
            check = run_consensus_round(
                mixed_service_system(3, resilience=2), {0: 0, 1: 1, 2: 0},
                seed=seed,
            )
            assert not check_agreement(check.decisions), (seed, check.decisions)
            assert not check_validity(check.decisions, {0: 0, 1: 1, 2: 0})


class TestTheorem10Attack:
    def test_f_plus_one_failures_silence_both_service_classes(self):
        system = mixed_service_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system,
            root,
            victims=[0, 1],
            horizon=200_000,
            failure_aware_services=[FD_ID],
        )
        assert violation is not None
        assert violation.exact
        assert violation.survivors == frozenset({2})

    def test_attack_fails_within_budget(self):
        system = mixed_service_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system, root, victims=[0], horizon=200_000
        )
        assert violation is None

    def test_attack_fails_on_wait_free_instance(self):
        # Theorem 10 requires f < n - 1; the wait-free instance escapes.
        system = mixed_service_system(3, resilience=2)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system,
            root,
            victims=[0, 1],
            horizon=200_000,
            failure_aware_services=[FD_ID],
        )
        assert violation is None  # the wait-free FD cannot be silenced
