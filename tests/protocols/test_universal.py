"""Unit tests for the universal construction (Herlihy universality).

Consensus objects implement any deterministic sequential type, wait-free
— verified against the independent linearizability checker and under
failure injection.
"""

import pytest

from repro.analysis.linearizability import trace_is_linearizable
from repro.ioa import RandomScheduler, RoundRobinScheduler, run
from repro.protocols.universal import (
    UNIVERSAL_ID,
    UniversalProcess,
    implemented_trace,
    universal_object_system,
)
from repro.system import FailureSchedule
from repro.types import counter_type, queue_type, read_write_type


def drive(system, steps=4000, seed=None, failures=()):
    scheduler = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    return run(
        system,
        scheduler,
        max_steps=steps,
        inputs=FailureSchedule(tuple(failures)).as_inputs(),
    )


class TestCounterObject:
    def test_all_operations_complete(self):
        counter = counter_type(modulus=16)
        system = universal_object_system(
            counter, {0: [("inc",), ("get",)], 1: [("inc",), ("get",)]}
        )
        execution = drive(system)
        trace = implemented_trace(execution)
        responses = [a for a in trace if a.kind == "respond"]
        assert len(responses) == 4

    def test_counter_history_linearizable(self):
        counter = counter_type(modulus=16)
        for seed in range(6):
            system = universal_object_system(
                counter, {0: [("inc",), ("get",)], 1: [("inc",), ("get",)]}
            )
            execution = drive(system, seed=seed)
            trace = implemented_trace(execution)
            assert trace_is_linearizable(trace, UNIVERSAL_ID, counter), seed

    def test_final_gets_see_both_increments(self):
        # Round-robin schedules both incs before either get here; the
        # linearization-order replicas must count both.
        counter = counter_type(modulus=16)
        system = universal_object_system(
            counter, {0: [("inc",)], 1: [("inc",)], 2: [("get",)]}
        )
        execution = drive(system)
        trace = implemented_trace(execution)
        get_response = next(
            a.args[2]
            for a in trace
            if a.kind == "respond" and a.args[1] == 2
        )
        assert get_response in (("value", 0), ("value", 1), ("value", 2))
        assert trace_is_linearizable(trace, UNIVERSAL_ID, counter)


class TestQueueObject:
    def test_queue_from_consensus_linearizable(self):
        queue = queue_type(items=("a", "b", "c"))
        for seed in range(6):
            system = universal_object_system(
                queue,
                {
                    0: [("enq", "a"), ("deq",)],
                    1: [("enq", "b"), ("deq",)],
                    2: [("enq", "c")],
                },
            )
            execution = drive(system, seed=seed, steps=8000)
            trace = implemented_trace(execution)
            assert trace_is_linearizable(trace, UNIVERSAL_ID, queue), seed

    def test_no_element_dequeued_twice(self):
        queue = queue_type(items=("a", "b"))
        system = universal_object_system(
            queue,
            {0: [("enq", "a"), ("deq",)], 1: [("enq", "b"), ("deq",)]},
        )
        execution = drive(system, steps=8000)
        items = [
            a.args[2][1]
            for a in implemented_trace(execution)
            if a.kind == "respond" and a.args[2][0] == "item"
        ]
        assert len(items) == len(set(items))


class TestRegisterObject:
    def test_register_from_consensus(self):
        rw = read_write_type(values=(0, 1, 2))
        for seed in range(6):
            system = universal_object_system(
                rw,
                {0: [("write", 1), ("read",)], 1: [("write", 2), ("read",)]},
            )
            execution = drive(system, seed=seed, steps=8000)
            trace = implemented_trace(execution)
            assert trace_is_linearizable(trace, UNIVERSAL_ID, rw), seed


class TestWaitFreedom:
    def test_survivor_completes_despite_crashes(self):
        """Wait-freedom: all other processes crash mid-construction, the
        survivor still finishes every scripted operation."""
        counter = counter_type(modulus=16)
        system = universal_object_system(
            counter,
            {0: [("inc",), ("get",)], 1: [("inc",)], 2: [("inc",)]},
        )
        execution = drive(system, steps=8000, failures=[(5, 1), (5, 2)])
        responses_at_0 = [
            a
            for a in implemented_trace(execution)
            if a.kind == "respond" and a.args[1] == 0
        ]
        assert len(responses_at_0) == 2

    def test_history_linearizable_under_failures(self):
        counter = counter_type(modulus=16)
        for seed in range(4):
            system = universal_object_system(
                counter,
                {0: [("inc",), ("get",)], 1: [("inc",)], 2: [("get",)]},
            )
            execution = drive(system, seed=seed, steps=8000, failures=[(10, 1)])
            trace = implemented_trace(execution)
            assert trace_is_linearizable(trace, UNIVERSAL_ID, counter), seed


class TestReplicaAgreement:
    def test_replicas_are_prefix_consistent(self):
        """Each replica equals the sequential value after exactly the
        slots that process consumed — replicas are snapshots of one
        common linearization order, at possibly different prefixes."""
        counter = counter_type(modulus=16)
        system = universal_object_system(
            counter, {0: [("inc",)], 1: [("inc",)]}
        )
        execution = drive(system)
        final = execution.final_state
        for endpoint in (0, 1):
            locals_value = system.process_state(final, endpoint).locals
            slots_consumed = locals_value[2]
            replica = UniversalProcess.replica_value(locals_value)
            # Every decided slot is an inc, so the replica value IS the
            # number of consumed slots.
            assert replica == slots_consumed

    def test_full_consumers_agree_exactly(self):
        """Processes that consumed every slot hold identical replicas."""
        counter = counter_type(modulus=16)
        # Give process 2 a trailing operation so it must consume all
        # earlier slots before finishing.
        system = universal_object_system(
            counter, {0: [("inc",)], 1: [("inc",)], 2: [("inc",)]}
        )
        execution = drive(system, steps=8000)
        final = execution.final_state
        full = [
            UniversalProcess.replica_value(
                system.process_state(final, endpoint).locals
            )
            for endpoint in (0, 1, 2)
            if system.process_state(final, endpoint).locals[2] == 3
        ]
        assert full, "someone must have consumed every slot"
        assert all(value == 3 for value in full)
