"""Tests for the stacked construction: 2-set consensus from test&set."""

import pytest

from repro.analysis import (
    check_k_agreement,
    check_validity,
    exhaustive_safety_check,
    liveness_attack,
    run_consensus_round,
)
from repro.protocols.composition_demo import (
    kset_from_tas_system,
    pair_of,
    peer_of,
)
from repro.system import all_failure_sets, upfront_failures


class TestStructure:
    def test_pair_helpers(self):
        assert [pair_of(e) for e in range(4)] == [0, 0, 1, 1]
        assert [peer_of(e) for e in range(4)] == [1, 0, 3, 2]

    def test_requires_even_n(self):
        with pytest.raises(ValueError):
            kset_from_tas_system(3)

    def test_components(self):
        system = kset_from_tas_system(4)
        assert len(system.services) == 2  # one test&set per pair
        assert len(system.registers) == 4  # one proposal register each
        for service in system.services:
            assert service.is_wait_free


class TestTwoSetConsensus:
    def test_failure_free(self):
        check = run_consensus_round(
            kset_from_tas_system(4), {0: 0, 1: 1, 2: 2, 3: 3}, k=2
        )
        assert check.ok, check.violations
        assert len(set(check.decisions.values())) <= 2

    def test_pairs_agree_internally(self):
        for seed in range(10):
            check = run_consensus_round(
                kset_from_tas_system(4), {0: 0, 1: 1, 2: 2, 3: 3}, k=2, seed=seed
            )
            assert check.ok
            assert check.decisions[0] == check.decisions[1]
            assert check.decisions[2] == check.decisions[3]

    def test_wait_free_under_all_failure_sets(self):
        proposals = {0: 0, 1: 1, 2: 2, 3: 3}
        for count in range(4):
            for victims in all_failure_sets(range(4), exactly=count):
                check = run_consensus_round(
                    kset_from_tas_system(4),
                    proposals,
                    failure_schedule=upfront_failures(sorted(victims)),
                    k=2,
                    max_steps=50_000,
                )
                assert check.ok, (victims, check.violations)

    def test_liveness_attack_bounces_off(self):
        system = kset_from_tas_system(4)
        root = system.initialization({0: 0, 1: 1, 2: 2, 3: 3}).final_state
        assert liveness_attack(system, root, victims=[0, 1, 2]) is None

    def test_exhaustive_safety_small(self):
        # n = 2 degenerates to plain pair consensus — exhaustively safe.
        result = exhaustive_safety_check(
            kset_from_tas_system(2, proposals=(0, 1)), {0: 0, 1: 1},
            max_states=500_000,
        )
        assert result.ok

    def test_six_processes_three_set(self):
        check = run_consensus_round(
            kset_from_tas_system(6),
            {i: i for i in range(6)},
            k=3,
            max_steps=60_000,
        )
        assert check.ok, check.violations
        assert len(set(check.decisions.values())) <= 3
