"""Unit tests for shared-memory (Disk-style) Paxos with Omega."""

import pytest

from repro.analysis import check_agreement, check_validity, run_consensus_round
from repro.ioa import RandomScheduler, run
from repro.protocols.shared_paxos import (
    NONE_VALUE,
    paxos_ballot_bound,
    shared_paxos_system,
)
from repro.system import FailureSchedule, all_failure_sets, upfront_failures


class TestLiveness:
    def test_failure_free(self):
        check = run_consensus_round(
            shared_paxos_system(3), {0: 1, 1: 0, 2: 0}, max_steps=60_000
        )
        assert check.ok, check.violations

    def test_every_single_failure(self):
        for victim in range(3):
            check = run_consensus_round(
                shared_paxos_system(3),
                {0: 1, 1: 0, 2: 0},
                failure_schedule=upfront_failures([victim]),
                max_steps=80_000,
            )
            assert check.ok, (victim, check.violations)

    def test_every_double_failure(self):
        # Tolerates n - 1 failures: shared-memory Paxos needs no quorum
        # of processes (the registers are the reliable "disk").
        for victims in all_failure_sets(range(3), exactly=2):
            check = run_consensus_round(
                shared_paxos_system(3),
                {0: 1, 1: 0, 2: 1},
                failure_schedule=upfront_failures(sorted(victims)),
                max_steps=100_000,
            )
            assert check.ok, (victims, check.violations)

    def test_leader_crash_mid_attempt(self):
        for strike in (10, 25, 60):
            check = run_consensus_round(
                shared_paxos_system(3),
                {0: 0, 1: 1, 2: 1},
                failure_schedule=FailureSchedule(((strike, 0),)),
                max_steps=100_000,
            )
            assert check.ok, (strike, check.violations)

    def test_four_processes(self):
        check = run_consensus_round(
            shared_paxos_system(4, max_rounds=4),
            {0: 1, 1: 0, 2: 0, 3: 1},
            failure_schedule=upfront_failures([0, 2]),
            max_steps=150_000,
        )
        assert check.ok, check.violations


class TestSafetyUnderContention:
    def choose_randomly(self, seed):
        import random

        rng = random.Random(seed)

        def chooser(transitions):
            return rng.randrange(len(transitions))

        return chooser

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_despite_lying_omega(self, seed):
        """While Omega is imperfect it may name different leaders; random
        transition choices explore those lies.  Agreement and validity
        must hold regardless (Paxos safety does not rest on Omega)."""
        system = shared_paxos_system(3, max_rounds=5)
        initialization = system.initialization({0: 0, 1: 1, 2: 1})
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=40_000,
            start=initialization.final_state,
            transition_chooser=self.choose_randomly(seed),
            stop=lambda e: len(system.decisions(e.final_state)) == 3,
        )
        decisions = system.decisions(execution.final_state)
        assert not check_agreement(decisions), decisions
        assert not check_validity(decisions, {0: 0, 1: 1, 2: 1})

    @pytest.mark.parametrize("seed", range(6))
    def test_safety_with_failures_and_lies(self, seed):
        system = shared_paxos_system(3, max_rounds=5)
        initialization = system.initialization({0: 0, 1: 1, 2: 0})
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=40_000,
            start=initialization.final_state,
            inputs=FailureSchedule(((500 + seed * 100, seed % 3),)).as_inputs(),
            transition_chooser=self.choose_randomly(seed),
        )
        decisions = system.decisions(execution.final_state)
        assert not check_agreement(decisions), decisions
        assert not check_validity(decisions, {0: 0, 1: 1, 2: 0})

    def test_decided_register_never_holds_two_values(self):
        """The publish step is the commit point; the register only ever
        moves from NONE to a single committed value."""
        system = shared_paxos_system(3, max_rounds=5)
        initialization = system.initialization({0: 0, 1: 1, 2: 1})
        execution = run(
            system,
            RandomScheduler(3),
            max_steps=40_000,
            start=initialization.final_state,
            transition_chooser=self.choose_randomly(3),
        )
        published = set()
        for state in execution.states():
            value = system.service_val(state, ("decided",))
            if value != NONE_VALUE:
                published.add(value)
        assert len(published) <= 1


class TestBallots:
    def test_ballot_bound(self):
        assert paxos_ballot_bound(3, 4) == 12

    def test_ballots_are_unique_per_proposer(self):
        # b = round * n + p + 1: distinct proposers never share a ballot.
        n = 4
        seen = set()
        for proposer in range(n):
            for round_index in range(5):
                ballot = round_index * n + proposer + 1
                assert ballot not in seen
                seen.add(ballot)


class TestEvPVariant:
    """Leadership from the paper's own <>P (Figs. 10-11) instead of Omega."""

    def quiet_lies(self):
        # Bound imperfect-mode nondeterminism for deterministic runs.
        return [frozenset()]

    def test_failure_free(self):
        from repro.protocols.shared_paxos import shared_paxos_with_evp_system

        check = run_consensus_round(
            shared_paxos_with_evp_system(3, arbitrary_suspicions=self.quiet_lies()),
            {0: 1, 1: 0, 2: 0},
            max_steps=100_000,
        )
        assert check.ok, check.violations

    def test_leader_crash(self):
        from repro.protocols.shared_paxos import shared_paxos_with_evp_system

        for victim in range(3):
            check = run_consensus_round(
                shared_paxos_with_evp_system(
                    3, arbitrary_suspicions=self.quiet_lies()
                ),
                {0: 1, 1: 0, 2: 0},
                failure_schedule=upfront_failures([victim]),
                max_steps=150_000,
            )
            assert check.ok, (victim, check.violations)

    def test_two_crashes(self):
        from repro.protocols.shared_paxos import shared_paxos_with_evp_system

        check = run_consensus_round(
            shared_paxos_with_evp_system(3, arbitrary_suspicions=self.quiet_lies()),
            {0: 1, 1: 0, 2: 1},
            failure_schedule=upfront_failures([0, 1]),
            max_steps=200_000,
        )
        assert check.ok, check.violations

    def test_safety_under_maximally_wrong_lies(self):
        """While imperfect, <>P may suspect EVERYONE (so every process
        believes no one is alive... leader None) or NO ONE — safety must
        hold regardless of the lie pattern chosen."""
        import random

        from repro.ioa import RandomScheduler, run as drive
        from repro.protocols.shared_paxos import shared_paxos_with_evp_system
        from repro.analysis import check_agreement, check_validity

        for seed in range(6):
            rng = random.Random(seed)
            system = shared_paxos_with_evp_system(3, max_rounds=5)
            initialization = system.initialization({0: 0, 1: 1, 2: 1})
            execution = drive(
                system,
                RandomScheduler(seed),
                max_steps=30_000,
                start=initialization.final_state,
                transition_chooser=lambda ts: rng.randrange(len(ts)),
            )
            decisions = system.decisions(execution.final_state)
            assert not check_agreement(decisions), (seed, decisions)
            assert not check_validity(decisions, {0: 0, 1: 1, 2: 1})
