"""Unit tests for the Section 4 k-set-consensus boosting construction."""

import pytest

from repro.analysis import run_consensus_round
from repro.protocols import (
    KSetBoostParameters,
    classic_parameters,
    group_of,
    kset_boost_system,
)
from repro.system import upfront_failures


class TestParameters:
    def test_classic_instance(self):
        params = classic_parameters(6)
        assert (params.n, params.k, params.n_prime, params.k_prime) == (6, 2, 3, 1)
        assert params.groups == 2
        assert params.inner_resilience == 2
        assert params.boosted_resilience == 5

    def test_classic_requires_even_n(self):
        with pytest.raises(ValueError):
            classic_parameters(5)

    def test_invariant_enforced(self):
        with pytest.raises(ValueError, match="k'n = kn'"):
            KSetBoostParameters(n=4, k=2, n_prime=3, k_prime=1)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            KSetBoostParameters(n=0, k=1, n_prime=1, k_prime=1)

    def test_resilience_is_strictly_boosted(self):
        # f' < f: this is what makes Section 4 a boosting result.
        params = classic_parameters(4)
        assert params.inner_resilience < params.boosted_resilience

    def test_group_of(self):
        params = classic_parameters(4)
        assert [group_of(params, e) for e in range(4)] == [0, 0, 1, 1]

    def test_generalized_instance_with_kprime_2(self):
        params = KSetBoostParameters(n=4, k=4, n_prime=2, k_prime=2)
        assert params.groups == 2
        system = kset_boost_system(params)
        assert len(system.services) == 2


class TestSystemShape:
    def test_one_service_per_group(self):
        system = kset_boost_system(classic_parameters(4))
        assert len(system.services) == 2
        assert system.service("group0").endpoints == (0, 1)
        assert system.service("group1").endpoints == (2, 3)

    def test_services_are_wait_free(self):
        system = kset_boost_system(classic_parameters(4))
        for service in system.services:
            assert service.is_wait_free

    def test_processes_connected_to_own_group_only(self):
        system = kset_boost_system(classic_parameters(4))
        assert system.process(0).connections == frozenset({"group0"})
        assert system.process(3).connections == frozenset({"group1"})


class TestKAgreement:
    def test_at_most_two_decisions_failure_free(self):
        system = kset_boost_system(classic_parameters(4))
        check = run_consensus_round(system, {0: 0, 1: 1, 2: 2, 3: 3}, k=2)
        assert check.ok, check.violations
        assert len(set(check.decisions.values())) <= 2

    def test_validity(self):
        system = kset_boost_system(classic_parameters(4))
        check = run_consensus_round(system, {0: 2, 1: 2, 2: 3, 3: 3}, k=2)
        assert check.ok
        assert set(check.decisions.values()) <= {2, 3}

    def test_wait_free_termination_under_n_minus_1_failures(self):
        params = classic_parameters(4)
        for survivor in range(4):
            system = kset_boost_system(params)
            victims = [e for e in range(4) if e != survivor]
            check = run_consensus_round(
                system,
                {0: 0, 1: 1, 2: 2, 3: 3},
                failure_schedule=upfront_failures(victims),
                k=2,
                max_steps=50_000,
            )
            assert check.ok, (survivor, check.violations)
            assert survivor in check.decisions

    def test_many_random_schedules(self):
        params = classic_parameters(4)
        for seed in range(15):
            system = kset_boost_system(params)
            check = run_consensus_round(
                system, {0: 0, 1: 1, 2: 2, 3: 3}, seed=seed, k=2
            )
            assert check.ok, check.violations

    def test_larger_instance(self):
        params = classic_parameters(6)
        system = kset_boost_system(params)
        proposals = {e: e for e in range(6)}
        check = run_consensus_round(system, proposals, k=2, max_steps=50_000)
        assert check.ok, check.violations

    def test_group_decision_consistency(self):
        # Within a group all processes decide the same value.
        params = classic_parameters(4)
        system = kset_boost_system(params)
        check = run_consensus_round(system, {0: 0, 1: 1, 2: 2, 3: 3}, k=2)
        for group_index in range(params.groups):
            members = [
                e for e in range(params.n) if group_of(params, e) == group_index
            ]
            values = {check.decisions[m] for m in members if m in check.decisions}
            assert len(values) <= 1
