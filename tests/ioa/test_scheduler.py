"""Unit tests for the task schedulers and the run() driver."""

import pytest

from repro.ioa import (
    Action,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    Task,
    run,
)
from repro.ioa.automaton import Automaton, Transition


class Counter(Automaton):
    """Two tasks: 'inc' always enabled, 'dec' enabled only when positive."""

    def __init__(self, name="counter"):
        self.name = name
        self.inc = Task(name, "inc")
        self.dec = Task(name, "dec")

    def is_input(self, action):
        return action.kind == "reset"

    def is_output(self, action):
        return False

    def is_internal(self, action):
        return action.kind in ("inc", "dec")

    def start_states(self):
        yield 0

    def tasks(self):
        return (self.inc, self.dec)

    def enabled(self, state, task):
        if task == self.inc:
            return [Transition(Action("inc"), state + 1)]
        if task == self.dec and state > 0:
            return [Transition(Action("dec"), state - 1)]
        return []

    def apply_input(self, state, action):
        return 0


class TestRoundRobin:
    def test_alternates_between_enabled_tasks(self):
        counter = Counter()
        execution = run(counter, RoundRobinScheduler(), max_steps=6)
        kinds = [a.kind for a in execution.actions]
        assert kinds == ["inc", "dec", "inc", "dec", "inc", "dec"]

    def test_skips_disabled_tasks(self):
        counter = Counter()
        scheduler = RoundRobinScheduler()
        # From 0, dec is disabled: first pick must be inc even after reset.
        assert scheduler.choose(counter, 0) == counter.inc

    def test_returns_none_when_nothing_enabled(self):
        class Dead(Counter):
            def enabled(self, state, task):
                return []

        assert RoundRobinScheduler().choose(Dead(), 0) is None

    def test_reset_restores_cursor(self):
        counter = Counter()
        scheduler = RoundRobinScheduler()
        scheduler.choose(counter, 1)
        scheduler.reset()
        assert scheduler.choose(counter, 1) == counter.inc


class TestRandomScheduler:
    def test_reproducible_from_seed(self):
        counter = Counter()
        first = run(counter, RandomScheduler(seed=7), max_steps=20)
        second = run(counter, RandomScheduler(seed=7), max_steps=20)
        assert first.actions == second.actions

    def test_different_seeds_differ(self):
        counter = Counter()
        runs = {
            run(counter, RandomScheduler(seed=s), max_steps=20).actions
            for s in range(10)
        }
        assert len(runs) > 1

    def test_only_enabled_tasks_chosen(self):
        counter = Counter()
        execution = run(counter, RandomScheduler(seed=3), max_steps=50)
        # The counter can never go negative: dec only fires when positive.
        assert all(state >= 0 for state in execution.states())


class TestScriptedScheduler:
    def test_replays_script(self):
        counter = Counter()
        script = [counter.inc, counter.inc, counter.dec]
        execution = run(counter, ScriptedScheduler(script), max_steps=10)
        assert [a.kind for a in execution.actions] == ["inc", "inc", "dec"]

    def test_skips_disabled_by_default(self):
        counter = Counter()
        script = [counter.dec, counter.inc]  # dec disabled at 0
        execution = run(counter, ScriptedScheduler(script), max_steps=10)
        assert [a.kind for a in execution.actions] == ["inc"]

    def test_strict_mode_raises_on_disabled(self):
        counter = Counter()
        scheduler = ScriptedScheduler([counter.dec], strict=True)
        with pytest.raises(RuntimeError):
            run(counter, scheduler, max_steps=10)

    def test_exhausted_flag(self):
        counter = Counter()
        scheduler = ScriptedScheduler([counter.inc])
        assert not scheduler.exhausted
        run(counter, scheduler, max_steps=10)
        assert scheduler.exhausted


class TestRunDriver:
    def test_inputs_applied_at_step_index(self):
        counter = Counter()
        execution = run(
            counter,
            RoundRobinScheduler(),
            max_steps=4,
            inputs=[(2, Action("reset"))],
        )
        kinds = [a.kind for a in execution.actions]
        assert "reset" in kinds
        # The reset arrives before scheduling step 2.
        assert kinds.index("reset") == 2

    def test_stop_predicate_halts_early(self):
        counter = Counter()
        execution = run(
            counter,
            RoundRobinScheduler(),
            max_steps=100,
            stop=lambda e: e.final_state >= 1,
        )
        assert execution.final_state == 1
        assert len(execution) == 1

    def test_remaining_inputs_flushed(self):
        counter = Counter()
        execution = run(
            counter,
            RoundRobinScheduler(),
            max_steps=1,
            inputs=[(50, Action("reset"))],
        )
        assert execution.actions[-1].kind == "reset"

    def test_explicit_start_state(self):
        counter = Counter()
        execution = run(counter, RoundRobinScheduler(), max_steps=0, start=9)
        assert execution.final_state == 9
