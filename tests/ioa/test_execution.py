"""Unit tests for executions, traces, lassos, and fairness predicates."""

import pytest

from repro.ioa import (
    Action,
    Execution,
    Lasso,
    Step,
    Task,
    fail,
    finite_execution_is_fair,
    lasso_is_fair,
    project_actions,
    task_occurrences,
    validate_execution,
)
from tests.ioa.test_automaton import Toggle


def make_execution():
    execution = Execution(start=0)
    execution = execution.extend(Action("flipped", (0,)), 1, Task("toggle", "flip"))
    execution = execution.extend(Action("set", (0,)), 0, None)
    return execution


class TestExecutionBasics:
    def test_final_state_of_empty(self):
        assert Execution(start=5).final_state == 5

    def test_extend_appends(self):
        execution = make_execution()
        assert len(execution) == 2
        assert execution.final_state == 0
        assert execution.actions == (Action("flipped", (0,)), Action("set", (0,)))

    def test_states_iterates_start_and_posts(self):
        assert list(make_execution().states()) == [0, 1, 0]

    def test_prefix(self):
        execution = make_execution()
        assert execution.prefix(1).actions == (Action("flipped", (0,)),)
        assert execution.prefix(0).final_state == 0

    def test_concat_requires_matching_states(self):
        first = make_execution()
        good = Execution(start=first.final_state).extend(
            Action("flipped", (0,)), 1, Task("toggle", "flip")
        )
        combined = first.concat(good)
        assert len(combined) == 3
        bad = Execution(start=42)
        with pytest.raises(ValueError):
            first.concat(bad)

    def test_tasks_sequence(self):
        execution = make_execution()
        assert execution.tasks == (Task("toggle", "flip"), None)


class TestFailurePredicates:
    def test_failure_free(self):
        assert make_execution().is_failure_free()
        failed = make_execution().extend(fail(3), 0, None)
        assert not failed.is_failure_free()
        assert failed.failed_endpoints() == frozenset({3})

    def test_count(self):
        execution = make_execution()
        assert execution.count(lambda a: a.kind == "flipped") == 1


class TestTrace:
    def test_trace_keeps_external_only(self):
        toggle = Toggle()
        execution = Execution(start=0)
        execution = execution.extend(Action("flipped", (0,)), 1, toggle.tasks()[0])
        execution = execution.extend(Action("noop", ()), 1, toggle.tasks()[0])
        assert execution.trace(toggle) == (Action("flipped", (0,)),)

    def test_project_actions(self):
        toggle = Toggle()
        actions = [Action("flipped", (0,)), Action("other", ()), Action("set", (1,))]
        assert project_actions(actions, toggle) == (
            Action("flipped", (0,)),
            Action("set", (1,)),
        )


class TestValidation:
    def test_valid_execution_passes(self):
        toggle = Toggle()
        execution = Execution(start=0)
        execution = execution.extend(Action("flipped", (0,)), 1, toggle.tasks()[0])
        execution = execution.extend(Action("set", (0,)), 0, None)
        validate_execution(execution, toggle)

    def test_wrong_start_state_rejected(self):
        toggle = Toggle()
        with pytest.raises(ValueError):
            validate_execution(Execution(start=7), toggle)

    def test_wrong_transition_rejected(self):
        toggle = Toggle()
        execution = Execution(start=0).extend(
            Action("flipped", (0,)), 0, toggle.tasks()[0]  # wrong post state
        )
        with pytest.raises(ValueError):
            validate_execution(execution, toggle)

    def test_input_effect_mismatch_rejected(self):
        toggle = Toggle()
        execution = Execution(start=0).extend(Action("set", (1,)), 0, None)
        with pytest.raises(ValueError):
            validate_execution(execution, toggle)


class TestFairness:
    def test_finite_fairness_requires_all_tasks_disabled(self):
        toggle = Toggle()
        # Toggle's task is always enabled, so no finite execution is fair.
        assert not finite_execution_is_fair(Execution(start=0), toggle)

    def test_lasso_unroll(self):
        task = Task("toggle", "flip")
        lasso = Lasso(
            stem=Execution(start=0),
            cycle=(
                Step(Action("flipped", (0,)), 1, task),
                Step(Action("flipped", (1,)), 0, task),
            ),
        )
        unrolled = lasso.unroll(3)
        assert len(unrolled) == 6
        assert unrolled.final_state == 0

    def test_lasso_fair_when_task_occurs_in_cycle(self):
        toggle = Toggle()
        task = toggle.tasks()[0]
        lasso = Lasso(
            stem=Execution(start=0),
            cycle=(
                Step(Action("flipped", (0,)), 1, task),
                Step(Action("flipped", (1,)), 0, task),
            ),
        )
        assert lasso_is_fair(lasso, toggle)

    def test_lasso_unfair_when_enabled_task_never_runs(self):
        toggle = Toggle()
        other_task = Task("other", "t")
        lasso = Lasso(
            stem=Execution(start=0),
            cycle=(Step(Action("noop", ()), 0, other_task),),
        )
        # Toggle's flip task is enabled throughout the cycle but never taken.
        assert not lasso_is_fair(lasso, toggle)

    def test_empty_cycle_lasso_checks_final_state(self):
        toggle = Toggle()
        lasso = Lasso(stem=Execution(start=0), cycle=())
        assert not lasso_is_fair(lasso, toggle)  # flip enabled at state 0


class TestTaskOccurrences:
    def test_counts_tasks_not_inputs(self):
        execution = make_execution()
        counts = task_occurrences(execution)
        assert counts == {Task("toggle", "flip"): 1}
