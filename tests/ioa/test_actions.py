"""Unit tests for action values and constructors."""

from repro.ioa import (
    Action,
    compute,
    decide,
    dummy_compute,
    dummy_output,
    dummy_perform,
    dummy_step,
    fail,
    init,
    invoke,
    is_dummy,
    is_fail,
    perform,
    respond,
)


class TestActionValue:
    def test_equality_is_structural(self):
        assert Action("invoke", (1, 2)) == Action("invoke", (1, 2))
        assert Action("invoke", (1, 2)) != Action("invoke", (2, 1))
        assert Action("invoke", ()) != Action("respond", ())

    def test_actions_are_hashable(self):
        actions = {Action("a", (1,)), Action("a", (1,)), Action("b", ())}
        assert len(actions) == 2

    def test_repr_shows_kind_and_args(self):
        assert repr(Action("fail", (3,))) == "fail(3)"

    def test_default_args_empty(self):
        assert Action("noop").args == ()


class TestConstructors:
    def test_invoke_shape(self):
        action = invoke("svc", 2, ("init", 1))
        assert action.kind == "invoke"
        assert action.args == ("svc", 2, ("init", 1))

    def test_respond_shape(self):
        action = respond("svc", 2, ("decide", 0))
        assert action.kind == "respond"
        assert action.args == ("svc", 2, ("decide", 0))

    def test_perform_and_dummy_shapes(self):
        assert perform("svc", 1).args == ("svc", 1)
        assert dummy_perform("svc", 1).kind == "dummy_perform"
        assert dummy_output("svc", 1).kind == "dummy_output"

    def test_compute_shapes(self):
        assert compute("svc", "g").args == ("svc", "g")
        assert dummy_compute("svc", "g").kind == "dummy_compute"

    def test_external_world_actions(self):
        assert fail(0).args == (0,)
        assert init(0, 1).args == (0, 1)
        assert decide(0, 1).args == (0, 1)
        assert dummy_step(4).args == (4,)


class TestPredicates:
    def test_is_dummy_covers_all_dummy_kinds(self):
        assert is_dummy(dummy_perform("s", 0))
        assert is_dummy(dummy_output("s", 0))
        assert is_dummy(dummy_compute("s", "g"))
        assert is_dummy(dummy_step(0))

    def test_is_dummy_rejects_real_actions(self):
        assert not is_dummy(perform("s", 0))
        assert not is_dummy(invoke("s", 0, "x"))
        assert not is_dummy(fail(0))

    def test_is_fail(self):
        assert is_fail(fail(7))
        assert not is_fail(init(7, 0))
