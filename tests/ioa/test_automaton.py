"""Unit tests for the Automaton interface and the determinism checker."""

import pytest

from repro.ioa import (
    Action,
    Automaton,
    Task,
    Transition,
    is_deterministic,
    nondeterministic_witness,
)


class Toggle(Automaton):
    """A two-state automaton with one task flipping a bit.

    ``nondet=True`` adds a second enabled transition to the same task,
    violating the paper's determinism definition.
    """

    def __init__(self, name="toggle", nondet=False):
        self.name = name
        self.nondet = nondet
        self._task = Task(name, "flip")

    def is_input(self, action):
        return action.kind == "set"

    def is_output(self, action):
        return action.kind == "flipped"

    def is_internal(self, action):
        return action.kind == "noop"

    def start_states(self):
        yield 0

    def tasks(self):
        return (self._task,)

    def enabled(self, state, task):
        transitions = [Transition(Action("flipped", (state,)), 1 - state)]
        if self.nondet:
            transitions.append(Transition(Action("noop", ()), state))
        return transitions

    def apply_input(self, state, action):
        return action.args[0]


class TestSignature:
    def test_in_signature(self):
        toggle = Toggle()
        assert toggle.in_signature(Action("set", (1,)))
        assert toggle.in_signature(Action("flipped", (0,)))
        assert toggle.in_signature(Action("noop", ()))
        assert not toggle.in_signature(Action("other", ()))

    def test_external_and_locally_controlled(self):
        toggle = Toggle()
        assert toggle.is_external(Action("set", (1,)))
        assert toggle.is_external(Action("flipped", (0,)))
        assert not toggle.is_external(Action("noop", ()))
        assert toggle.is_locally_controlled(Action("noop", ()))
        assert toggle.is_locally_controlled(Action("flipped", (0,)))
        assert not toggle.is_locally_controlled(Action("set", (1,)))


class TestStates:
    def test_some_start_state(self):
        assert Toggle().some_start_state() == 0

    def test_some_start_state_raises_when_empty(self):
        class Empty(Toggle):
            def start_states(self):
                return iter(())

        with pytest.raises(ValueError):
            Empty().some_start_state()

    def test_task_enabled_and_enabled_tasks(self):
        toggle = Toggle()
        task = toggle.tasks()[0]
        assert toggle.task_enabled(0, task)
        assert toggle.enabled_tasks(0) == [task]


class TestDeterminism:
    def test_deterministic_automaton_passes(self):
        assert is_deterministic(Toggle(), states=[0, 1])

    def test_nondeterministic_automaton_fails(self):
        assert not is_deterministic(Toggle(nondet=True), states=[0, 1])

    def test_witness_identifies_state_and_task(self):
        toggle = Toggle(nondet=True)
        witness = nondeterministic_witness(toggle, states=[0, 1])
        assert witness is not None
        state, task = witness
        assert state in (0, 1)
        assert task == toggle.tasks()[0]

    def test_witness_none_for_deterministic(self):
        assert nondeterministic_witness(Toggle(), states=[0, 1]) is None
