"""Unit tests for parallel composition and hiding."""

import pytest

from repro.ioa import (
    Action,
    Automaton,
    Composition,
    Hidden,
    IncompatibleComposition,
    Task,
    Transition,
    check_compatibility,
)


class Sender(Automaton):
    """Emits msg(0), msg(1), ... as outputs."""

    def __init__(self, name="sender"):
        self.name = name
        self._task = Task(name, "send")

    def is_input(self, action):
        return False

    def is_output(self, action):
        return action.kind == "msg"

    def is_internal(self, action):
        return False

    def start_states(self):
        yield 0

    def tasks(self):
        return (self._task,)

    def enabled(self, state, task):
        return [Transition(Action("msg", (state,)), state + 1)]

    def apply_input(self, state, action):
        raise ValueError("sender has no inputs")


class Receiver(Automaton):
    """Accumulates received msg payloads."""

    def __init__(self, name="receiver"):
        self.name = name

    def is_input(self, action):
        return action.kind == "msg"

    def is_output(self, action):
        return False

    def is_internal(self, action):
        return False

    def start_states(self):
        yield ()

    def tasks(self):
        return ()

    def enabled(self, state, task):
        raise KeyError(task)

    def apply_input(self, state, action):
        return state + (action.args[0],)


class TestComposition:
    def test_synchronization_on_shared_action(self):
        composed = Composition([Sender(), Receiver()])
        state = composed.some_start_state()
        (transition,) = composed.enabled(state, Task("sender", "send"))
        assert transition.action == Action("msg", (0,))
        assert transition.post == (1, (0,))

    def test_start_states_are_products(self):
        composed = Composition([Sender(), Receiver()])
        assert list(composed.start_states()) == [(0, ())]

    def test_signature_classification(self):
        composed = Composition([Sender(), Receiver()])
        # msg is an output of the composition (output of sender).
        assert composed.is_output(Action("msg", (0,)))
        assert not composed.is_input(Action("msg", (0,)))

    def test_unmatched_input_stays_input(self):
        composed = Composition([Receiver()])
        assert composed.is_input(Action("msg", (0,)))
        assert composed.apply_input(((),), Action("msg", (5,))) == ((5,),)

    def test_tasks_are_union(self):
        composed = Composition([Sender("s1"), Sender("s2"), Receiver()])
        assert set(composed.tasks()) == {Task("s1", "send"), Task("s2", "send")}

    def test_duplicate_names_rejected(self):
        with pytest.raises(IncompatibleComposition):
            Composition([Sender("x"), Receiver("x")])

    def test_two_senders_conflict_on_shared_output(self):
        composed = Composition([Sender("s1"), Sender("s2")])
        state = composed.some_start_state()
        with pytest.raises(IncompatibleComposition):
            composed.enabled(state, Task("s1", "send"))

    def test_component_lookup(self):
        sender = Sender()
        receiver = Receiver()
        composed = Composition([sender, receiver])
        assert composed.component("sender") is sender
        assert composed.component_index("receiver") == 1
        assert composed.component_state((3, (0, 1)), "receiver") == (0, 1)

    def test_participants(self):
        sender = Sender()
        receiver = Receiver()
        composed = Composition([sender, receiver])
        participants = composed.participants(Action("msg", (0,)))
        assert {p.name for p in participants} == {"sender", "receiver"}


class TestHiding:
    def test_hidden_outputs_become_internal(self):
        composed = Composition([Sender(), Receiver()])
        hidden = Hidden(composed, lambda a: a.kind == "msg")
        assert hidden.is_internal(Action("msg", (0,)))
        assert not hidden.is_output(Action("msg", (0,)))

    def test_hiding_preserves_transitions(self):
        composed = Composition([Sender(), Receiver()])
        hidden = Hidden(composed, lambda a: a.kind == "msg")
        state = hidden.some_start_state()
        (transition,) = hidden.enabled(state, Task("sender", "send"))
        assert transition.post == (1, (0,))

    def test_default_name(self):
        composed = Composition([Sender(), Receiver()], name="pair")
        assert Hidden(composed, lambda a: False).name == "hide(pair)"


class TestCompatibilityChecker:
    def test_accepts_compatible(self):
        check_compatibility([Sender(), Receiver()], [Action("msg", (0,))])

    def test_rejects_shared_outputs(self):
        with pytest.raises(IncompatibleComposition):
            check_compatibility(
                [Sender("s1"), Sender("s2")], [Action("msg", (0,))]
            )

    def test_rejects_shared_internal(self):
        class Internalizer(Sender):
            def is_output(self, action):
                return False

            def is_internal(self, action):
                return action.kind == "msg"

        with pytest.raises(IncompatibleComposition):
            check_compatibility(
                [Internalizer("i"), Receiver()], [Action("msg", (0,))]
            )
