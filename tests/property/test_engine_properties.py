"""Property tests: the parallel engine is indistinguishable from explore().

The engine's documented guarantee is semantic equivalence with the
sequential explorer at every worker count — not merely "same number of
states" but the same graph, hence the same valence analysis downstream.
These properties drive the engine across the paper's Fig. 1/Fig. 2
instances (delegation over an atomic consensus object, delegation over
totally ordered broadcast) with randomized worker counts, budgets, and
interrupt points, and compare against the sequential ground truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DeterministicSystemView,
    explore,
    reachable_decision_sets,
)
from repro.engine import Budget, BudgetExhausted, ExplorationEngine
from repro.protocols import delegation_consensus_system, tob_delegation_system

FACTORIES = {
    "delegation-2": lambda: delegation_consensus_system(2, resilience=0),
    "delegation-3": lambda: delegation_consensus_system(3, resilience=1),
    "tob-2": lambda: tob_delegation_system(2, resilience=0),
}

_CACHE: dict = {}


def _instance(name):
    """(view, root, sequential graph) for a factory, computed once."""
    if name not in _CACHE:
        system = FACTORIES[name]()
        view = DeterministicSystemView(system)
        proposals = {
            endpoint: index % 2
            for index, endpoint in enumerate(system.process_ids)
        }
        root = system.initialization(proposals).final_state
        _CACHE[name] = (view, root, explore(view, root, budget=Budget(max_states=100_000)))
    return _CACHE[name]


class TestParallelEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(sorted(FACTORIES)),
        workers=st.sampled_from([2, 4]),
    )
    def test_same_graph_and_decision_sets(self, name, workers):
        view, root, sequential = _instance(name)
        graph = ExplorationEngine(workers=workers, budget=Budget()).explore(
            view, root
        )
        assert set(graph.states) == set(sequential.states)
        assert list(graph.states) == list(sequential.states)  # discovery order too
        assert graph.edge_count() == sequential.edge_count()
        assert graph.edges == sequential.edges
        assert reachable_decision_sets(graph, view) == reachable_decision_sets(
            sequential, view
        )


class TestCheckpointRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(sorted(FACTORIES)),
        interrupt_after=st.integers(min_value=2, max_value=120),
        workers=st.sampled_from([1, 2]),
    )
    def test_interrupted_run_resumes_to_ground_truth(
        self, name, interrupt_after, workers, tmp_path_factory
    ):
        view, root, sequential = _instance(name)
        directory = tmp_path_factory.mktemp("engine-ckpt")
        try:
            graph = ExplorationEngine(
                workers=workers,
                budget=Budget(max_states=interrupt_after),
                checkpoint_dir=directory,
            ).explore(view, root)
        except BudgetExhausted:
            graph = ExplorationEngine(
                workers=workers,
                budget=Budget(),
                checkpoint_dir=directory,
                resume=True,
            ).explore(view, root)
        # Interrupted-and-resumed runs guarantee the same graph as the
        # sequential ground truth (set and edges; discovery order is only
        # guaranteed for uninterrupted runs).
        assert set(graph.states) == set(sequential.states)
        assert graph.edges == sequential.edges
        assert reachable_decision_sets(graph, view) == reachable_decision_sets(
            sequential, view
        )
