"""Property-based tests for the network and snapshot substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import trace_is_linearizable
from repro.ioa import RandomScheduler, invoke, run
from repro.protocols.snapshot import (
    SNAPSHOT_ID,
    snapshot_system,
    snapshot_trace,
    snapshot_type,
)
from repro.services.network import (
    AsynchronousNetwork,
    deliveries_in_trace,
    send,
)
from repro.system import DistributedSystem, FailureSchedule, ScriptProcess


class TestNetworkProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)),
            min_size=1,
            max_size=6,
        ),
        seed=st.integers(0, 10_000),
    )
    def test_no_loss_no_duplication_no_invention(self, plan, seed):
        """Every sent message is delivered exactly once (failure-free),
        and nothing else is delivered."""
        net = AsynchronousNetwork(
            "net", endpoints=(0, 1, 2), messages=(0, 1), resilience=2
        )
        scripts = {0: [], 1: [], 2: []}
        expected = {0: [], 1: [], 2: []}
        for sender, target, message in plan:
            scripts[sender].append(invoke("net", sender, send(target, message)))
            expected[target].append((sender, message))
        processes = [
            ScriptProcess(e, scripts[e], connections=["net"]) for e in (0, 1, 2)
        ]
        system = DistributedSystem(processes, services=[net])
        execution = run(system, RandomScheduler(seed), max_steps=400)
        for endpoint in (0, 1, 2):
            received = deliveries_in_trace(execution.actions, endpoint, "net")
            assert sorted(received) == sorted(expected[endpoint])

    @settings(max_examples=20, deadline=None)
    @given(
        messages=st.lists(st.integers(0, 1), min_size=2, max_size=5),
        seed=st.integers(0, 10_000),
    )
    def test_per_pair_fifo(self, messages, seed):
        """Messages between one (sender, receiver) pair keep their order."""
        net = AsynchronousNetwork(
            "net", endpoints=(0, 1), messages=(0, 1), resilience=1
        )
        script = [invoke("net", 0, send(1, message)) for message in messages]
        processes = [
            ScriptProcess(0, script, connections=["net"]),
            ScriptProcess(1, [], connections=["net"]),
        ]
        system = DistributedSystem(processes, services=[net])
        execution = run(system, RandomScheduler(seed), max_steps=300)
        received = [
            message
            for _, message in deliveries_in_trace(execution.actions, 1, "net")
        ]
        assert received == messages


class TestSnapshotProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        updates=st.lists(st.integers(1, 3), min_size=1, max_size=2),
        seed=st.integers(0, 10_000),
    )
    def test_histories_always_linearizable(self, updates, seed):
        scripts = {
            0: [("update", value) for value in updates] + [("scan",)],
            1: [("scan",), ("update", 3)],
        }
        system = snapshot_system(scripts)
        execution = run(system, RandomScheduler(seed), max_steps=12_000)
        trace = snapshot_trace(execution)
        stype = snapshot_type((0, 1), values=(1, 2, 3), initial=0)
        assert trace_is_linearizable(trace, SNAPSHOT_ID, stype)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), strike=st.integers(0, 60))
    def test_scans_survive_random_crashes(self, seed, strike):
        scripts = {0: [("scan",)], 1: [("update", 1)], 2: [("update", 2)]}
        system = snapshot_system(scripts)
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=12_000,
            inputs=FailureSchedule(((strike, 1),)).as_inputs(),
        )
        trace = snapshot_trace(execution)
        views = [
            a
            for a in trace
            if a.kind == "respond" and a.args[1] == 0 and a.args[2][0] == "view"
        ]
        assert len(views) == 1  # wait-freedom: the scan finished
        stype = snapshot_type((0, 1, 2), values=(1, 2), initial=0)
        assert trace_is_linearizable(trace, SNAPSHOT_ID, stype)
