"""Property-based tests over whole-system executions (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_consensus_round
from repro.ioa import RandomScheduler, run
from repro.protocols import (
    boosted_reports,
    boosted_fd_system,
    classic_parameters,
    delegation_consensus_system,
    kset_boost_system,
)
from repro.services import TotallyOrderedBroadcast, bcast, delivered_sequence, is_prefix
from repro.system import DistributedSystem, FailureSchedule, ScriptProcess
from repro.ioa import invoke


class TestDelegationUnderRandomSchedules:
    @settings(max_examples=25, deadline=None)
    @given(
        proposals=st.tuples(
            st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)
        ),
        seed=st.integers(0, 10_000),
        victim=st.one_of(st.none(), st.integers(0, 2)),
    )
    def test_axioms_hold_within_resilience(self, proposals, seed, victim):
        schedule = (
            FailureSchedule(()) if victim is None else FailureSchedule(((5, victim),))
        )
        check = run_consensus_round(
            delegation_consensus_system(3, resilience=1),
            dict(enumerate(proposals)),
            failure_schedule=schedule,
            seed=seed,
        )
        assert check.ok, check.violations

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_decision_matches_service_value(self, seed):
        system = delegation_consensus_system(2, resilience=1)
        check = run_consensus_round(system, {0: 0, 1: 1}, seed=seed)
        assert check.ok
        assert len(set(check.decisions.values())) == 1


class TestKSetBoostProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        proposals=st.tuples(
            st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
        ),
        seed=st.integers(0, 10_000),
        victims=st.sets(st.integers(0, 3), max_size=3),
    )
    def test_k_agreement_validity_termination(self, proposals, seed, victims):
        check = run_consensus_round(
            kset_boost_system(classic_parameters(4)),
            dict(enumerate(proposals)),
            failure_schedule=FailureSchedule(
                tuple((3, victim) for victim in sorted(victims))
            ),
            seed=seed,
            k=2,
            max_steps=60_000,
        )
        assert check.ok, (proposals, victims, check.violations)
        assert set(check.decisions.values()) <= set(proposals)


class TestBroadcastProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        messages=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=4),
        seed=st.integers(0, 10_000),
    )
    def test_prefix_consistent_delivery(self, messages, seed):
        """All endpoints' delivery sequences are prefix-related: total
        order and gap-freedom (Section 5.2)."""
        tob = TotallyOrderedBroadcast(
            service_id="tob", endpoints=(0, 1, 2), messages=("a", "b"), resilience=2
        )
        processes = [
            ScriptProcess(
                e,
                [invoke("tob", e, bcast(m)) for i, m in enumerate(messages) if i % 3 == e],
                connections=["tob"],
            )
            for e in (0, 1, 2)
        ]
        system = DistributedSystem(processes, services=[tob])
        execution = run(system, RandomScheduler(seed), max_steps=400)
        sequences = sorted(
            (
                delivered_sequence(execution.actions, endpoint, "tob")
                for endpoint in (0, 1, 2)
            ),
            key=len,
        )
        for shorter, longer in zip(sequences, sequences[1:]):
            assert is_prefix(shorter, longer), sequences

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_no_message_creation(self, seed):
        tob = TotallyOrderedBroadcast(
            service_id="tob", endpoints=(0, 1), messages=("a", "b"), resilience=1
        )
        processes = [
            ScriptProcess(0, [invoke("tob", 0, bcast("a"))], connections=["tob"]),
            ScriptProcess(1, [], connections=["tob"]),
        ]
        system = DistributedSystem(processes, services=[tob])
        execution = run(system, RandomScheduler(seed), max_steps=200)
        for endpoint in (0, 1):
            delivered = delivered_sequence(execution.actions, endpoint, "tob")
            assert set(delivered) <= {("a", 0)}


class TestBoostedFDProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        victims=st.sets(st.integers(0, 2), max_size=2),
        strike=st.integers(0, 200),
    )
    def test_accuracy_under_random_failures(self, seed, victims, strike):
        """The boosted detector never suspects a process that has not
        failed — under any schedule and failure pattern."""
        system = boosted_fd_system(3)
        schedule = FailureSchedule(tuple((strike, v) for v in sorted(victims)))
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=1500,
            inputs=schedule.as_inputs(),
        )
        failed = set()
        for step in execution.steps:
            if step.action.kind == "fail":
                failed.add(step.action.args[0])
            if step.action.kind == "respond" and step.action.args[0] == "boostedP":
                assert step.action.args[2][1] <= failed
