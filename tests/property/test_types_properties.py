"""Property-based tests for sequential types (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import (
    binary_consensus_type,
    consensus_type,
    k_set_consensus_type,
    queue_type,
    read_write_type,
    run_sequentially,
)


class TestConsensusProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=30))
    def test_first_value_wins_always(self, proposals):
        consensus = binary_consensus_type()
        responses, final = run_sequentially(
            consensus, [("init", v) for v in proposals]
        )
        assert all(r == ("decide", proposals[0]) for r in responses)
        assert final == frozenset({proposals[0]})

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=20)
    )
    def test_multivalued_consensus_first_value_wins(self, proposals):
        consensus = consensus_type(values=tuple(range(5)))
        responses, _ = run_sequentially(consensus, [("init", v) for v in proposals])
        assert set(responses) == {("decide", proposals[0])}


class TestKSetProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=25),
        st.randoms(use_true_random=False),
    )
    def test_kset_invariants(self, k, proposals, rng):
        """Decisions are proposed values; at most k distinct; state
        stabilizes once k values are remembered."""
        kset = k_set_consensus_type(k, proposals=tuple(range(6)))
        value = frozenset()
        decisions = []
        for proposal in proposals:
            outcomes = kset.apply(("init", proposal), value)
            response, value = rng.choice(list(outcomes))
            decisions.append(response[1])
        assert set(decisions) <= set(proposals)
        assert len(set(decisions)) <= k
        assert len(value) <= k
        assert value <= set(proposals)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=25))
    def test_remembered_set_is_prefix_of_proposals(self, proposals):
        kset = k_set_consensus_type(2, proposals=tuple(range(6)))
        value = frozenset()
        for proposal in proposals:
            _, value = kset.apply(("init", proposal), value)[0]
        # The remembered set is exactly the first min(k, distinct) values.
        distinct_prefix = []
        for proposal in proposals:
            if proposal not in distinct_prefix:
                distinct_prefix.append(proposal)
            if len(distinct_prefix) == 2:
                break
        assert value == frozenset(distinct_prefix)


class TestRegisterProperties:
    @given(
        st.lists(
            st.one_of(
                st.just(("read",)),
                st.tuples(st.just("write"), st.integers(min_value=0, max_value=3)),
            ),
            max_size=30,
        )
    )
    def test_read_returns_last_write(self, operations):
        rw = read_write_type(values=tuple(range(4)), initial=0)
        responses, final = run_sequentially(rw, operations)
        last_written = 0
        for operation, response in zip(operations, responses):
            if operation == ("read",):
                assert response == ("value", last_written)
            else:
                last_written = operation[1]
                assert response == ("ack",)
        assert final == last_written


class TestQueueProperties:
    @given(
        st.lists(
            st.one_of(
                st.just(("deq",)),
                st.tuples(st.just("enq"), st.integers(min_value=0, max_value=2)),
            ),
            max_size=30,
        )
    )
    def test_queue_matches_reference_model(self, operations):
        queue = queue_type(items=(0, 1, 2), capacity=5)
        responses, final = run_sequentially(queue, operations)
        model = []
        for operation, response in zip(operations, responses):
            if operation == ("deq",):
                if model:
                    assert response == ("item", model.pop(0))
                else:
                    assert response == ("empty",)
            else:
                if len(model) < 5:
                    model.append(operation[1])
                    assert response == ("ack",)
                else:
                    assert response == ("full",)
        assert tuple(model) == final
