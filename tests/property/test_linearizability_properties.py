"""Property-based tests for the linearizability checker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linearizability import (
    check_linearizable,
    history_from_trace,
    trace_is_linearizable,
)
from repro.ioa import invoke, respond
from repro.types import counter_type, read_write_type, run_sequentially


@st.composite
def sequential_register_trace(draw):
    """A fully sequential (non-overlapping) register trace with correct
    responses — linearizable by construction."""
    operations = draw(
        st.lists(
            st.one_of(
                st.just(("read",)),
                st.tuples(st.just("write"), st.integers(0, 2)),
            ),
            min_size=1,
            max_size=8,
        )
    )
    endpoints = draw(
        st.lists(st.integers(0, 2), min_size=len(operations), max_size=len(operations))
    )
    rw = read_write_type(values=(0, 1, 2))
    responses, _ = run_sequentially(rw, operations)
    trace = []
    for operation, endpoint, response in zip(operations, endpoints, responses):
        trace.append(invoke("r", endpoint, operation))
        trace.append(respond("r", endpoint, response))
    return trace


class TestSequentialHistoriesAlwaysLinearizable:
    @settings(max_examples=40, deadline=None)
    @given(trace=sequential_register_trace())
    def test_register(self, trace):
        rw = read_write_type(values=(0, 1, 2))
        assert trace_is_linearizable(trace, "r", rw)


class TestWrongResponseNeverLinearizable:
    @settings(max_examples=40, deadline=None)
    @given(trace=sequential_register_trace(), data=st.data())
    def test_corrupting_a_read_response_breaks_it(self, trace, data):
        rw = read_write_type(values=(0, 1, 2))
        read_positions = [
            index
            for index, action in enumerate(trace)
            if action.kind == "respond" and action.args[2][0] == "value"
        ]
        if not read_positions:
            return
        position = data.draw(st.sampled_from(read_positions))
        service, endpoint, response = trace[position].args
        wrong_value = (response[1] + 1) % 3
        corrupted = list(trace)
        corrupted[position] = respond(service, endpoint, ("value", wrong_value))
        # A sequential history with a wrong read is either still
        # explainable by reordering with CONCURRENT ops (impossible here:
        # nothing overlaps) or non-linearizable.
        assert not trace_is_linearizable(corrupted, "r", rw)


class TestPermutationInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(0, 2), min_size=1, max_size=4),
    )
    def test_fully_concurrent_writes_any_response_order(self, values):
        """All writes overlap: any completion order must linearize."""
        rw = read_write_type(values=(0, 1, 2))
        trace = []
        for endpoint, value in enumerate(values):
            trace.append(invoke("r", endpoint % 3, ("write", value)))
        for endpoint, value in enumerate(values):
            trace.append(respond("r", endpoint % 3, ("ack",)))
        # history_from_trace matches per endpoint FIFO; endpoints repeat
        # mod 3, so responses pair up with the oldest open invocation.
        assert trace_is_linearizable(trace, "r", rw)


class TestCounterHistories:
    @settings(max_examples=30, deadline=None)
    @given(increments=st.integers(1, 5))
    def test_final_get_sees_all_completed_increments(self, increments):
        counter = counter_type(modulus=32)
        trace = []
        for index in range(increments):
            trace.append(invoke("c", 0, ("inc",)))
            trace.append(respond("c", 0, ("ack",)))
        trace.append(invoke("c", 1, ("get",)))
        trace.append(respond("c", 1, ("value", increments)))
        assert trace_is_linearizable(trace, "c", counter)
        # Undercounting a completed increment is not linearizable.
        trace[-1] = respond("c", 1, ("value", increments - 1))
        assert not trace_is_linearizable(trace, "c", counter)
