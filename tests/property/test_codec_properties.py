"""Property tests: the packed codec round-trips arbitrary deep states.

The codec's contract is ``decode(encode(x)) == x`` with ``blake2b(packed)
== fingerprint(x)`` for every value built from the canonical forms — the
forms real states are made of.  These properties drive randomized deeply
nested values through the encoder, the interning :class:`Codec`, and a
fresh subprocess (interning and registries are per-process; the *bytes*
must not be).
"""

import dataclasses
import enum
import pathlib
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Codec,
    canonical_bytes,
    decode_bytes,
    digest_of_packed,
    fingerprint,
)


@dataclasses.dataclass(frozen=True)
class Record:
    label: str
    payload: object


class Phase(enum.Enum):
    IDLE = 0
    BUSY = 1


_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # NaN != NaN, so identity cannot hold
    st.text(max_size=20),
    st.binary(max_size=20),
    st.sampled_from([Phase.IDLE, Phase.BUSY]),
)

# Hashable deep values: tuples, frozensets, and registered dataclasses
# over scalars, nested a few levels — the shape of real component states.
_VALUES = st.recursive(
    _SCALARS,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4).map(tuple),
        st.frozensets(inner, max_size=4),
        st.builds(Record, st.text(max_size=8), inner),
    ),
    max_leaves=25,
)

# Composite states: tuples of hashable components, possibly with a dict
# component (dicts are unhashable but legal *inside* nothing — keep them
# at top level only where the engine never hashes them directly).
_STATES = st.lists(_VALUES, min_size=1, max_size=5).map(tuple)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(value=_VALUES)
    def test_encode_decode_identity(self, value):
        assert decode_bytes(canonical_bytes(value)) == value

    @settings(max_examples=150, deadline=None)
    @given(state=_STATES)
    def test_codec_roundtrip_and_digest_parity(self, state):
        codec = Codec()
        packed, digest = codec.encode_digest(state)
        assert packed == canonical_bytes(state)
        assert digest == fingerprint(state)
        assert digest == digest_of_packed(packed)
        assert codec.decode(packed) == state
        # The cached-component digest path agrees with the one-pass one.
        assert codec.digest(state) == digest

    @settings(max_examples=80, deadline=None)
    @given(state=_STATES)
    def test_interned_decode_equals_plain_decode(self, state):
        codec = Codec()
        packed = canonical_bytes(state)
        assert codec.decode(packed) == codec.decode(packed)
        assert codec.decode(packed) == state


_SUBPROCESS_PROGRAM = """
import sys
sys.path.insert(0, {src!r})
import dataclasses, enum
from repro.engine import canonical_bytes, digest_of_packed

@dataclasses.dataclass(frozen=True)
class Record:
    label: str
    payload: object

class Phase(enum.Enum):
    IDLE = 0
    BUSY = 1

state = (
    Record("a", (1, 2.5, Phase.BUSY)),
    frozenset({{"x", b"y", (None, True)}}),
    {{"k": Record("b", Phase.IDLE)}},
    "endpoint-0",
)
packed = canonical_bytes(state)
print(packed.hex())
print(digest_of_packed(packed).hex())
"""


class TestCrossProcessStability:
    def test_packed_bytes_identical_in_fresh_interpreter(self):
        """Interning is per-process; the canonical bytes must not be.

        A fresh interpreter (new hash seed, empty caches, empty registry)
        must produce byte-identical encodings and digests for equal
        values — this is what makes digests valid as cross-worker keys
        and packed checkpoints readable after a restart.
        """
        state = (
            Record("a", (1, 2.5, Phase.BUSY)),
            frozenset({"x", b"y", (None, True)}),
            {"k": Record("b", Phase.IDLE)},
            "endpoint-0",
        )
        local_packed = canonical_bytes(state)
        local_digest = digest_of_packed(local_packed)
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        result = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_PROGRAM.format(src=src)],
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        )
        remote_packed_hex, remote_digest_hex = result.stdout.split()
        assert remote_packed_hex == local_packed.hex()
        assert remote_digest_hex == local_digest.hex()
