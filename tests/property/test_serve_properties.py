"""Property tests for the serving layer's value types.

* ``Budget.to_json``/``from_json`` is an exact round trip over the whole
  parameter space (the issue's satellite requirement);
* budget dominance is a partial order — reflexive, transitive, and
  antisymmetric up to componentwise equality — which is what makes the
  verdict cache's frontier maintenance sound;
* ``JobSpec`` round-trips through its wire form.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Budget
from repro.serve import JobSpec, budget_dominates

limits = st.one_of(st.none(), st.integers(min_value=1, max_value=10**9))
deadlines = st.one_of(
    st.none(),
    st.floats(min_value=0.001, max_value=10**6, allow_nan=False),
)
budgets = st.builds(
    Budget,
    max_states=limits,
    max_transitions=limits,
    deadline_seconds=deadlines,
)


class TestBudgetRoundTrip:
    @given(budget=budgets)
    def test_to_json_from_json_is_identity(self, budget):
        assert Budget.from_json(budget.to_json()) == budget

    @given(budget=budgets)
    def test_json_form_is_plain_data(self, budget):
        document = budget.to_json()
        assert set(document) == {
            "max_states",
            "max_transitions",
            "deadline_seconds",
        }
        for value in document.values():
            assert value is None or isinstance(value, (int, float))


class TestDominanceIsAPartialOrder:
    @given(budget=budgets)
    def test_reflexive(self, budget):
        assert budget_dominates(budget, budget)

    @settings(max_examples=200)
    @given(a=budgets, b=budgets, c=budgets)
    def test_transitive(self, a, b, c):
        if budget_dominates(a, b) and budget_dominates(b, c):
            assert budget_dominates(a, c)

    @given(a=budgets, b=budgets)
    def test_antisymmetric(self, a, b):
        if budget_dominates(a, b) and budget_dominates(b, a):
            assert a.to_json() == b.to_json()

    @given(budget=budgets)
    def test_unlimited_dominates_everything(self, budget):
        assert budget_dominates(Budget(), budget)


specs = st.builds(
    dict,
    candidate=st.sampled_from(["delegation", "tob", "last-writer"]),
    n=st.integers(min_value=1, max_value=6),
    f=st.integers(min_value=0, max_value=3),
    budget=st.builds(
        dict,
        max_states=st.one_of(st.none(), st.integers(min_value=1, max_value=10**7)),
    ),
    workers=st.integers(min_value=1, max_value=4),
    reduction=st.sampled_from(["none", "symmetry", "por", "full"]),
    tenant=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=16,
    ),
)


class TestJobSpecRoundTrip:
    @given(document=specs)
    def test_wire_round_trip_is_identity(self, document):
        spec = JobSpec.from_json(document)
        assert JobSpec.from_json(spec.to_json()) == spec
