"""Property tests: reductions never change what the analysis concludes.

The soundness contract of :mod:`repro.engine.reduction` is semantic:
whatever the symmetry quotient and the ample sets drop, every reachable
decision set — hence every valence verdict and every pipeline outcome —
must come out identical to the full exploration.  These properties drive
the audit over randomized proposal assignments (each assignment changes
the stabilizer, so the quotient group genuinely varies), compare the
end-to-end ``refute_candidate`` verdicts with and without reduction, and
pin the refusal behavior on deliberately asymmetric instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_valence, refute_candidate
from repro.engine import Canonicalizer, ReductionConfig, audit_reduction
from repro.protocols import (
    delegation_consensus_system,
    last_writer_register_system,
    min_register_consensus_system,
    race_register_consensus_system,
    tob_delegation_system,
)

FACTORIES = {
    "delegation-2": lambda: delegation_consensus_system(2, resilience=1),
    "delegation-3": lambda: delegation_consensus_system(3, resilience=1),
    "tob-2": lambda: tob_delegation_system(2, resilience=1),
    "race-2": lambda: race_register_consensus_system(2),
    "min-register": min_register_consensus_system,
    "last-writer": last_writer_register_system,
}
MODES = ("symmetry", "por", "full")

_SYSTEMS: dict = {}
_VERDICTS: dict = {}


def _system(name):
    if name not in _SYSTEMS:
        _SYSTEMS[name] = FACTORIES[name]()
    return _SYSTEMS[name]


def _baseline_verdict(name):
    if name not in _VERDICTS:
        verdict = refute_candidate(_system(name))
        _VERDICTS[name] = (verdict.refuted, verdict.mechanism)
    return _VERDICTS[name]


def _root(system, bits):
    proposals = {
        endpoint: bits[index % len(bits)]
        for index, endpoint in enumerate(system.process_ids)
    }
    return system.initialization(proposals).final_state


class TestAuditNeverFails:
    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(FACTORIES)),
        mode=st.sampled_from(MODES),
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=4),
    )
    def test_reduced_graph_preserves_decision_sets(self, name, mode, bits):
        """audit_reduction explores BOTH graphs and raises on any verdict
        drift — reduced states must be genuine full-graph states with
        identical reachable decision sets (both directions when no POR)."""
        system = _system(name)
        comparison = audit_reduction(
            system, _root(system, bits), ReductionConfig.from_name(mode)
        )
        assert comparison.reduced_states <= comparison.full_states
        assert comparison.state_ratio >= 1.0


class TestVerdictsUnchanged:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(sorted(FACTORIES)),
        mode=st.sampled_from(MODES),
    )
    def test_refute_candidate_agrees_with_full_exploration(self, name, mode):
        system = _system(name)
        verdict = refute_candidate(
            system, reduction=ReductionConfig.from_name(mode)
        )
        assert (verdict.refuted, verdict.mechanism) == _baseline_verdict(name)


class TestValenceUnchanged:
    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(["delegation-2", "delegation-3", "tob-2"]),
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=3),
    )
    def test_symmetry_quotient_valence_lookup(self, name, bits):
        """Every full-graph state's valence, looked up through the
        quotient analysis (canonicalize, then classify), matches the full
        analysis — the exact lookup path the hook search relies on."""
        system = _system(name)
        root = _root(system, bits)
        plain = analyze_valence(system, root)
        reduced = analyze_valence(
            system, root, reduction=ReductionConfig.from_name("symmetry")
        )
        for state in plain.graph.states:
            assert reduced.valence(state) == plain.valence(state)


class TestAsymmetryRefusal:
    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(["min-register", "last-writer"]),
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=2),
    )
    def test_crossed_wiring_never_admits_a_permutation(self, name, bits):
        """The asymmetric instances (each process reads the PEER's
        register) must yield a trivial group for every assignment: an
        orbit computation willing to swap these processes would be
        unsound, and the audit above would catch the resulting verdict
        drift."""
        system = _system(name)
        canonicalizer = Canonicalizer(system, _root(system, bits))
        assert not canonicalizer.permuters
        assert canonicalizer.group_size == 1
