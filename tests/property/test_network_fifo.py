"""Per-pair FIFO under adversarial interleaving and reorder faults.

The canonical network promises FIFO per ``(sender, receiver)`` pair —
and the :class:`~repro.sim.FaultyNetwork` fault adversary is designed
to preserve exactly that invariant: cross-sender reorder, bounded clock
skew, and duplication may shuffle or repeat traffic between *different*
pairs arbitrarily, but the subsequence each single pair observes stays
in sending order.  These properties pin that contract down under
arbitrary random schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ioa import RandomScheduler, invoke, run
from repro.services.network import deliveries_in_trace, send
from repro.sim import FaultBudget, FaultyNetwork, SimScheduler
from repro.system import DistributedSystem, ScriptProcess


def two_sender_system(plan, budget):
    """Senders 0 and 1 fire ``plan``'s messages at receiver 2."""
    net = FaultyNetwork(
        "net", endpoints=(0, 1, 2), messages=(0, 1), resilience=2, budget=budget
    )
    scripts = {0: [], 1: []}
    sent = {0: [], 1: []}
    for sender, message in plan:
        scripts[sender].append(invoke("net", sender, send(2, message)))
        sent[sender].append(message)
    processes = [
        ScriptProcess(0, scripts[0], connections=["net"]),
        ScriptProcess(1, scripts[1], connections=["net"]),
        ScriptProcess(2, [], connections=["net"]),
    ]
    return DistributedSystem(processes, services=[net]), sent


def per_sender(received):
    streams = {0: [], 1: []}
    for sender, message in received:
        streams[sender].append(message)
    return streams


PLANS = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=2, max_size=6
)


class TestPerPairFifo:
    @settings(max_examples=25, deadline=None)
    @given(plan=PLANS, seed=st.integers(0, 10_000))
    def test_benign_interleaving_preserves_per_pair_order(self, plan, seed):
        system, sent = two_sender_system(plan, FaultBudget())
        execution = run(system, RandomScheduler(seed), max_steps=400)
        received = per_sender(deliveries_in_trace(execution.actions, 2, "net"))
        assert received == sent

    @settings(max_examples=25, deadline=None)
    @given(plan=PLANS, seed=st.integers(0, 10_000))
    def test_reorder_and_skew_faults_preserve_per_pair_order(self, plan, seed):
        """Cross-pair shuffling never reorders one pair's stream."""
        budget = FaultBudget(reorder=3, skew=2, reorder_window=3)
        system, sent = two_sender_system(plan, budget)
        execution = run(
            system, SimScheduler(seed, fault_rate=0.5), max_steps=400
        )
        received = per_sender(deliveries_in_trace(execution.actions, 2, "net"))
        # loss-free faults: same messages, same per-pair order
        assert received == sent

    @settings(max_examples=25, deadline=None)
    @given(plan=PLANS, seed=st.integers(0, 10_000))
    def test_duplication_preserves_per_pair_order_modulo_repeats(
        self, plan, seed
    ):
        budget = FaultBudget(duplicate=2)
        system, sent = two_sender_system(plan, budget)
        execution = run(
            system, SimScheduler(seed, fault_rate=0.5), max_steps=400
        )
        received = per_sender(deliveries_in_trace(execution.actions, 2, "net"))

        def squeeze(stream):
            """Collapse runs of equal messages (dup inserts adjacently)."""
            return [
                message
                for index, message in enumerate(stream)
                if index == 0 or message != stream[index - 1]
            ]

        for sender in (0, 1):
            assert squeeze(received[sender]) == squeeze(sent[sender])

    @settings(max_examples=25, deadline=None)
    @given(plan=PLANS, seed=st.integers(0, 10_000))
    def test_drops_leave_a_per_pair_subsequence(self, plan, seed):
        budget = FaultBudget(drop=2)
        system, sent = two_sender_system(plan, budget)
        execution = run(
            system, SimScheduler(seed, fault_rate=0.5), max_steps=400
        )
        received = per_sender(deliveries_in_trace(execution.actions, 2, "net"))
        for sender in (0, 1):
            iterator = iter(sent[sender])
            assert all(
                message in iterator for message in received[sender]
            ), f"{received[sender]} is not a subsequence of {sent[sender]}"
