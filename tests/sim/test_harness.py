"""Deterministic simulation harness: seeds, replay, script documents.

The FoundationDB-style contract under test: a :class:`SimConfig` seed
fully determines a run, the recorded task script strict-replays to a
bit-for-bit equal :class:`~repro.ioa.execution.Execution`, and a saved
script document survives the disk round-trip and re-verifies.
"""

import pytest

from repro.analysis.consensus_spec import Violation
from repro.protocols.message_passing import (
    arbiter_consensus_system,
    exchange_consensus_system,
)
from repro.sim import (
    FaultBudget,
    ReplayMismatch,
    SimConfig,
    balanced_proposals,
    is_quiescent,
    load_script,
    replay,
    save_script,
    script_document,
    simulate,
    verify_replay,
)

LOSSY = FaultBudget(drop=1)


def lossy_exchange():
    return exchange_consensus_system(0, faults=LOSSY)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_same_seed_same_execution(self, seed, replay_hint):
        config = SimConfig(seed=seed, fault_rate=0.4)
        replay_hint(
            seed,
            f"PYTHONPATH=src python -m repro sim exchange "
            f"--faults drop=1 --seed {seed}",
        )
        first = simulate(lossy_exchange(), config)
        second = simulate(lossy_exchange(), config)
        assert first.execution == second.execution
        assert first.script == second.script
        assert first.inputs == second.inputs

    def test_different_seeds_diverge_somewhere(self):
        runs = {
            simulate(lossy_exchange(), SimConfig(seed=seed, fault_rate=0.4)).script
            for seed in range(6)
        }
        assert len(runs) > 1

    def test_crashes_are_injected_as_fail_inputs(self):
        result = simulate(
            exchange_consensus_system(0), SimConfig(seed=3, crashes=((0, 0),))
        )
        assert 0 in result.failed

    def test_fault_rate_biases_toward_faults(self):
        fast = sum(
            simulate(
                lossy_exchange(), SimConfig(seed=s, fault_rate=0.9)
            ).fault_count
            for s in range(10)
        )
        slow = sum(
            simulate(
                lossy_exchange(), SimConfig(seed=s, fault_rate=0.0)
            ).fault_count
            for s in range(10)
        )
        assert fast > slow


class TestQuiescenceAndViolations:
    def test_benign_exchange_decides_without_violations(self):
        result = simulate(exchange_consensus_system(0), SimConfig(seed=1))
        assert result.ok
        assert result.decisions == {0: 0, 1: 0}

    def test_dropped_message_yields_stuck_undecided(self):
        result = simulate(lossy_exchange(), SimConfig(seed=0, fault_rate=0.4))
        assert result.quiescent
        assert any(v.axiom == "modified-termination" for v in result.violations)

    def test_is_quiescent_on_decided_states(self):
        system = exchange_consensus_system(0)
        result = simulate(system, SimConfig(seed=1))
        assert is_quiescent(system, result.execution.final_state)

    def test_termination_not_reported_before_quiescence(self):
        # a run truncated after 1 step is not quiescent: no verdict
        result = simulate(
            lossy_exchange(), SimConfig(seed=0, max_steps=1, fault_rate=0.4)
        )
        assert not result.quiescent
        assert not any(
            v.axiom == "modified-termination" for v in result.violations
        )


class TestReplay:
    def test_strict_replay_is_bit_for_bit(self):
        system = lossy_exchange()
        found = simulate(system, SimConfig(seed=0, fault_rate=0.4))
        again = replay(
            system,
            found.script,
            inputs=found.inputs,
            proposals=found.proposals,
            config=found.config,
        )
        assert again.execution == found.execution
        assert again.violations == found.violations

    def test_strict_replay_rejects_disabled_tasks(self):
        from repro.ioa.automaton import Task

        system = lossy_exchange()
        found = simulate(system, SimConfig(seed=0, fault_rate=0.4))
        bogus = (Task("net[net]", ("fault", "drop", 1, 0)),) * 5 + found.script
        with pytest.raises(Exception):
            replay(system, bogus, inputs=found.inputs, proposals=found.proposals)

    def test_lenient_replay_records_effective_script(self):
        system = lossy_exchange()
        found = simulate(system, SimConfig(seed=0, fault_rate=0.4))
        # drop half the script: lenient replay fires what it can
        partial = replay(
            system,
            found.script[::2],
            inputs=found.inputs,
            proposals=found.proposals,
            strict=False,
        )
        assert len(partial.script) <= len(found.script[::2])


class TestScriptDocuments:
    def spec_document(self):
        return {
            "family": "exchange",
            "n": 2,
            "resilience": 0,
            "faults": {"drop": 1},
            "gen_seed": None,
        }

    def test_document_round_trip_and_verify(self, tmp_path):
        system = lossy_exchange()
        found = simulate(system, SimConfig(seed=0, fault_rate=0.4))
        assert not found.ok
        document = script_document(self.spec_document(), found)
        path = tmp_path / "counterexample.json"
        save_script(path, document)
        loaded = load_script(path)
        assert loaded["tasks"] == found.script
        assert tuple(loaded["inputs"]) == found.inputs
        assert [v.axiom for v in loaded["violations"]] == [
            v.axiom for v in found.violations
        ]
        result = verify_replay(lossy_exchange(), loaded)
        assert result.execution == found.execution
        assert result.config.seed == found.config.seed

    def test_load_script_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not-a-script.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError):
            load_script(path)

    def test_verify_replay_detects_action_divergence(self, tmp_path):
        system = lossy_exchange()
        found = simulate(system, SimConfig(seed=0, fault_rate=0.4))
        document = script_document(self.spec_document(), found)
        # corrupt a recorded action: same tasks, different expectation
        document["actions"] = list(document["actions"])
        document["actions"][0] = {"__action__": ["decide", {"__tuple__": [0, 1]}]}
        path = tmp_path / "tampered.json"
        save_script(path, document)
        with pytest.raises(ReplayMismatch):
            verify_replay(lossy_exchange(), load_script(path))

    def test_verify_replay_detects_missing_violations(self, tmp_path):
        system = exchange_consensus_system(0)
        healthy = simulate(system, SimConfig(seed=1))
        assert healthy.ok
        document = script_document(
            {"family": "exchange", "n": 2, "resilience": 0, "faults": {}},
            healthy,
        )
        document["violations"] = [["agreement", "fabricated"]]
        path = tmp_path / "fabricated.json"
        save_script(path, document)
        with pytest.raises(ReplayMismatch):
            verify_replay(exchange_consensus_system(0), load_script(path))


class TestProposals:
    def test_balanced_proposals_alternate(self):
        system = arbiter_consensus_system(3, 0)
        assert balanced_proposals(system) == {0: 0, 1: 1, 2: 0}

    def test_explicit_proposals_respected(self):
        result = simulate(
            exchange_consensus_system(0),
            SimConfig(seed=2, proposals=((0, 1), (1, 1))),
        )
        assert result.decisions == {0: 1, 1: 1}
        assert result.ok

    def test_validity_checked_against_proposals(self):
        result = simulate(
            exchange_consensus_system(0),
            SimConfig(seed=2, proposals=((0, 1), (1, 1))),
        )
        assert not any(
            isinstance(v, Violation) and v.axiom == "validity"
            for v in result.violations
        )
