"""Tests for repro.sim: fault automata, harness, and fuzzer."""
