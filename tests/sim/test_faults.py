"""FaultyNetwork semantics: budgets, fault transitions, conservativity.

The headline regression is conservativity: a :class:`FaultyNetwork`
with a zero budget must be *state-for-state identical* to the benign
:class:`AsynchronousNetwork` — same start state, same tasks, and the
same explored state graph on Theorem 9's message-passing instance.
"""

import pytest

from repro.analysis import DeterministicSystemView
from repro.core import explore
from repro.ioa.actions import Action
from repro.ioa.automaton import Task
from repro.protocols.message_passing import (
    arbiter_consensus_system,
    exchange_consensus_system,
)
from repro.services.base import ServiceState
from repro.services.network import AsynchronousNetwork, deliver, send
from repro.sim import FaultBudget, FaultyChannel, FaultyNetwork, faulty_network_type


def make_network(budget, endpoints=(0, 1, 2), resilience=0):
    return FaultyNetwork(
        "net", endpoints=endpoints, messages=(0, 1), resilience=resilience,
        budget=budget,
    )


def with_inflight(net, receiver, entries):
    """A start state with ``entries`` already in ``receiver``'s buffer."""
    state = net.some_start_state()
    position = net.endpoint_position(receiver)
    resp_buffers = list(state.resp_buffers)
    resp_buffers[position] = tuple(entries)
    return ServiceState(
        val=state.val,
        inv_buffers=state.inv_buffers,
        resp_buffers=tuple(resp_buffers),
        failed=state.failed,
    )


def fault_task(net, *name):
    return Task(net.name, ("fault",) + name)


def fire(net, state, task):
    transitions = net.enabled(state, task)
    assert len(transitions) == 1, f"{task} not uniquely enabled"
    return transitions[0]


class TestFaultBudget:
    def test_zero_budget_has_empty_val_and_no_fault_tasks(self):
        net = make_network(FaultBudget())
        assert net.budget.is_zero(net.endpoints)
        assert net.some_start_state().val == ()
        assert not [t for t in net.tasks() if t.name[0] == "fault"]

    def test_json_round_trip(self):
        budget = FaultBudget(drop=2, duplicate=1, partitions=1)
        assert FaultBudget.from_json(budget.to_json()) == budget

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FaultBudget.from_json({"drops": 1})

    def test_to_json_rejects_per_link_mappings(self):
        with pytest.raises(ValueError):
            FaultBudget(drop={(0, 1): 2}).to_json()

    def test_per_link_mapping_budgets(self):
        net = make_network(FaultBudget(drop={(0, 1): 1}))
        drops = [t for t in net.tasks() if t.name[:2] == ("fault", "drop")]
        assert [t.name[2:] for t in drops] == [(0, 1)]


class TestConservativity:
    def test_zero_budget_graph_identical_to_benign_network(self):
        """Theorem 9's instance: zero budget => identical state graph."""
        benign = arbiter_consensus_system(3, 0)
        faulty = arbiter_consensus_system(3, 0, faults=FaultBudget())

        def graph(system):
            root = system.initialization(
                {pid: pid % 2 for pid in system.process_ids}
            ).final_state
            return explore(DeterministicSystemView(system), root)

        benign_graph, faulty_graph = graph(benign), graph(faulty)
        assert benign_graph.states == faulty_graph.states
        assert benign_graph.edges == faulty_graph.edges

    def test_zero_budget_network_matches_benign_interface(self):
        benign = AsynchronousNetwork("net", (0, 1), (0, 1), resilience=0)
        faulty = make_network(FaultBudget(), endpoints=(0, 1))
        assert tuple(benign.tasks()) == tuple(faulty.tasks())
        assert benign.some_start_state() == faulty.some_start_state()


class TestFaultTransitions:
    def test_drop_removes_oldest_from_sender_and_spends_budget(self):
        net = make_network(FaultBudget(drop=1))
        state = with_inflight(net, 2, [deliver(0, 1), deliver(1, 0), deliver(0, 0)])
        transition = fire(net, state, fault_task(net, "drop", 0, 2))
        assert transition.action == Action("fault", ("net", "drop", 0, 2))
        assert net.resp_buffer(transition.post, 2) == (deliver(1, 0), deliver(0, 0))
        # budget spent: the same drop is no longer enabled
        assert net.enabled(transition.post, fault_task(net, "drop", 0, 2)) == []

    def test_drop_disabled_with_no_matching_inflight_message(self):
        net = make_network(FaultBudget(drop=1))
        state = with_inflight(net, 2, [deliver(1, 0)])
        assert net.enabled(state, fault_task(net, "drop", 0, 2)) == []

    def test_duplicate_inserts_copy_in_place(self):
        net = make_network(FaultBudget(duplicate=1))
        state = with_inflight(net, 2, [deliver(0, 1), deliver(1, 0)])
        transition = fire(net, state, fault_task(net, "dup", 0, 2))
        assert net.resp_buffer(transition.post, 2) == (
            deliver(0, 1), deliver(0, 1), deliver(1, 0),
        )

    def test_reorder_swaps_only_across_senders(self):
        net = make_network(FaultBudget(reorder=1))
        same = with_inflight(net, 2, [deliver(0, 1), deliver(0, 0)])
        assert net.enabled(same, fault_task(net, "reorder", 2, 0)) == []
        mixed = with_inflight(net, 2, [deliver(0, 1), deliver(1, 0)])
        transition = fire(net, mixed, fault_task(net, "reorder", 2, 0))
        assert net.resp_buffer(transition.post, 2) == (deliver(1, 0), deliver(0, 1))

    def test_skew_delays_as_far_as_fifo_allows(self):
        net = make_network(FaultBudget(skew=1))
        state = with_inflight(
            net, 2, [deliver(0, 1), deliver(1, 0), deliver(1, 1), deliver(0, 0)]
        )
        transition = fire(net, state, fault_task(net, "skew", 0, 2))
        # 0's oldest message moves just before 0's next message.
        assert net.resp_buffer(transition.post, 2) == (
            deliver(1, 0), deliver(1, 1), deliver(0, 1), deliver(0, 0),
        )

    def test_skew_disabled_when_delay_changes_nothing(self):
        net = make_network(FaultBudget(skew=1))
        state = with_inflight(net, 2, [deliver(0, 1)])
        assert net.enabled(state, fault_task(net, "skew", 0, 2)) == []

    def test_partition_blocks_crossing_sends_until_heal(self):
        budget = FaultBudget(partitions=1, cuts=(frozenset({0}),))
        net = make_network(budget)
        state = net.some_start_state()
        cut = fire(net, state, fault_task(net, "part", 0))
        assert ("cut", 0) in cut.post.val
        # a perform for a crossing message loses it while the cut is up
        delivery, value = net.service_type.delta1(send(1, "m"), 0, cut.post.val)[0]
        assert delivery == {}
        # ...but an intra-side message still goes through
        delivery, _ = net.service_type.delta1(send(2, "m"), 1, cut.post.val)[0]
        assert delivery == {2: (deliver(1, "m"),)}
        healed = fire(net, cut.post, fault_task(net, "heal"))
        assert ("cut", 0) not in healed.post.val
        # the partition budget is spent: no second cut
        assert net.enabled(healed.post, fault_task(net, "part", 0)) == []

    def test_every_fault_task_has_at_most_one_transition(self):
        """The determinism contract DeterministicSystemView enforces."""
        net = make_network(
            FaultBudget(drop=1, duplicate=1, reorder=1, skew=1, partitions=1)
        )
        state = with_inflight(net, 2, [deliver(0, 1), deliver(1, 0)])
        for task in net.tasks():
            if task.name[0] == "fault":
                assert len(net.enabled(state, task)) <= 1


class TestFaultyExploration:
    def test_faulty_exchange_explores_without_nondeterminism(self):
        system = exchange_consensus_system(0, faults=FaultBudget(drop=1))
        root = system.initialization({0: 0, 1: 1}).final_state
        graph = explore(DeterministicSystemView(system), root)
        benign = exchange_consensus_system(0)
        benign_root = benign.initialization({0: 0, 1: 1}).final_state
        benign_graph = explore(DeterministicSystemView(benign), benign_root)
        # the fault adversary strictly enlarges the reachable graph
        assert len(graph.states) > len(benign_graph.states)
        fault_edges = [
            action
            for successors in graph.edges.values()
            for _, action, _ in successors
            if action.kind == "fault"
        ]
        assert fault_edges


class TestStrictAndChannel:
    def test_faulty_channel_rejects_unknown_targets(self):
        channel = FaultyChannel(0, 1, messages=(0, 1), budget=FaultBudget(drop=1))
        assert channel.name == "chan[0->1]"
        assert not channel.service_type.contains_invocation(send(9, 0))
        with pytest.raises(ValueError):
            channel.service_type.delta1(send(9, 0), 0, ())

    def test_faulty_network_type_lax_by_default(self):
        lax = faulty_network_type((0, 1), (0, 1), FaultBudget(drop=1))
        assert lax.contains_invocation(send(9, 0))
        assert lax.delta1(send(9, 0), 0, ()) == (({}, ()),)
