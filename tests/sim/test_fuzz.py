"""Adversary fuzzer: candidate generation, shrinking, counterexamples.

The acceptance-criterion test lives here: a seeded fuzz campaign
against the deliberately broken lossy exchange candidate must find a
violation, shrink the failing schedule by at least half, and produce a
script that strict-replays bit-for-bit.
"""

import pytest

from repro.sim import (
    FAMILIES,
    CandidateSpec,
    FaultBudget,
    SimConfig,
    build_candidate,
    fuzz,
    load_script,
    random_spec,
    replay,
    save_script,
    shrink_counterexample,
    simulate,
    verify_replay,
)

LOSSY_EXCHANGE = CandidateSpec(
    family="exchange", n=2, resilience=0, faults=(("drop", 1),)
)


class TestCandidateSpec:
    def test_json_round_trip(self):
        spec = CandidateSpec(
            family="random-table", n=3, resilience=1,
            faults=(("drop", 2), ("reorder", 1)), gen_seed=9,
        )
        assert CandidateSpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            CandidateSpec.from_json({"family": "paxos-9000"})

    def test_budget_reconstruction(self):
        assert LOSSY_EXCHANGE.budget() == FaultBudget(drop=1)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_every_family_builds(self, family):
        spec = CandidateSpec(family=family, n=3, gen_seed=5)
        system = build_candidate(spec)
        assert system.process_ids

    def test_random_spec_is_seeded(self):
        import random

        specs_a = [random_spec(random.Random(11)) for _ in range(5)]
        specs_b = [random_spec(random.Random(11)) for _ in range(5)]
        assert specs_a == specs_b


class TestRandomTableFamily:
    def test_same_gen_seed_same_tables(self):
        spec = CandidateSpec(family="random-table", n=3, gen_seed=4)
        first, second = build_candidate(spec), build_candidate(spec)
        result_a = simulate(first, SimConfig(seed=2))
        result_b = simulate(second, SimConfig(seed=2))
        assert result_a.execution == result_b.execution

    def test_gen_seed_varies_behavior(self):
        decisions = set()
        for gen_seed in range(8):
            spec = CandidateSpec(family="random-table", n=2, gen_seed=gen_seed)
            result = simulate(build_candidate(spec), SimConfig(seed=0))
            decisions.add(tuple(sorted(result.decisions.items())))
        assert len(decisions) > 1


class TestShrinking:
    def test_shrinks_at_least_half_and_replays_bit_for_bit(self, replay_hint):
        """The ISSUE acceptance criterion, asserted end to end."""
        system = build_candidate(LOSSY_EXCHANGE)
        config = SimConfig(seed=18, max_steps=300, fault_rate=0.4)
        replay_hint(
            18,
            "PYTHONPATH=src python -m repro sim exchange --faults drop=1 "
            "--seed 18 --fault-rate 0.4",
        )
        found = simulate(system, config)
        assert not found.ok
        counterexample = shrink_counterexample(LOSSY_EXCHANGE, 18, found)
        assert counterexample.shrink_ratio >= 0.5
        assert counterexample.shrunk_steps < counterexample.original_steps
        # the shrunk script still witnesses the same axiom
        assert {v.axiom for v in counterexample.violations} >= {
            v.axiom for v in found.violations
        }
        # and strict-replays to an identical execution
        result = counterexample.result
        again = replay(
            system,
            result.script,
            inputs=result.inputs,
            proposals=result.proposals,
            config=result.config,
        )
        assert again.execution == result.execution

    def test_counterexample_document_round_trips(self, tmp_path):
        system = build_candidate(LOSSY_EXCHANGE)
        found = simulate(system, SimConfig(seed=0, max_steps=300, fault_rate=0.4))
        counterexample = shrink_counterexample(LOSSY_EXCHANGE, 0, found)
        path = tmp_path / "shrunk.json"
        save_script(path, counterexample.to_document())
        document = load_script(path)
        spec = CandidateSpec.from_json(document["candidate"])
        assert spec == LOSSY_EXCHANGE
        verified = verify_replay(build_candidate(spec), document)
        assert verified.execution == counterexample.result.execution

    def test_replay_command_is_one_line(self):
        system = build_candidate(LOSSY_EXCHANGE)
        found = simulate(system, SimConfig(seed=0, max_steps=300, fault_rate=0.4))
        counterexample = shrink_counterexample(LOSSY_EXCHANGE, 0, found)
        command = counterexample.replay_command("cex.json")
        assert command == "PYTHONPATH=src python -m repro sim --replay cex.json"
        assert "\n" not in command


class TestFuzzCampaigns:
    def test_seeded_campaign_finds_and_shrinks_lossy_exchange(self, replay_hint):
        replay_hint(
            19,
            "PYTHONPATH=src python -m repro fuzz --family exchange "
            "--faults drop=1 --seed 19 --expect-violation",
        )
        report = fuzz(specs=[LOSSY_EXCHANGE], runs=8, seed=19)
        assert report.found
        counterexample = report.found[0]
        assert counterexample.shrink_ratio >= 0.5
        assert any(
            v.axiom == "modified-termination" for v in counterexample.violations
        )

    def test_campaign_is_a_pure_function_of_seed(self):
        first = fuzz(specs=[LOSSY_EXCHANGE], runs=4, seed=123)
        second = fuzz(specs=[LOSSY_EXCHANGE], runs=4, seed=123)
        assert [c.seed for c in first.found] == [c.seed for c in second.found]
        assert first.runs == second.runs and first.steps == second.steps

    def test_benign_exchange_survives_fuzzing(self):
        benign = CandidateSpec(family="exchange", n=2, resilience=0)
        report = fuzz(specs=[benign], runs=12, seed=5)
        assert not report.found
        assert report.runs == 12

    def test_random_campaign_reports_work_done(self):
        report = fuzz(campaigns=3, runs=2, seed=9, stop_after=None)
        assert report.specs_tried == 3
        assert report.runs >= 3  # shrink-interrupted specs may stop early
        assert report.elapsed > 0
        assert report.schedules_per_second > 0
        document = report.to_json()
        assert document["specs_tried"] == 3

    def test_stop_after_halts_early(self):
        report = fuzz(
            specs=[LOSSY_EXCHANGE, LOSSY_EXCHANGE], runs=8, seed=0, stop_after=1
        )
        assert len(report.found) == 1
        assert report.specs_tried == 1
