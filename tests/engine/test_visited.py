"""Unit tests for the shared-memory visited table."""

import multiprocessing
import os

import pytest

from repro.engine import (
    LocalVisitedFilter,
    SharedVisitedTable,
    shared_memory_available,
)
from repro.engine.visited import MAX_SLOTS, MIN_SLOTS, _slot_count

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


def _digest(seed: int, size: int = 16) -> bytes:
    return seed.to_bytes(8, "little") + os.urandom(size - 8)


class TestSlotCount:
    def test_clamps_to_minimum(self):
        assert _slot_count(None) == MIN_SLOTS
        assert _slot_count(10) == MIN_SLOTS

    def test_scales_with_expected_states(self):
        slots = _slot_count(100_000)
        assert slots >= 200_000
        assert slots & (slots - 1) == 0  # power of two

    def test_clamps_to_maximum(self):
        assert _slot_count(10**9) == MAX_SLOTS


class TestTestAndSet:
    def test_absent_then_present(self):
        table = SharedVisitedTable(16)
        try:
            digest = _digest(7)
            assert digest not in table
            assert table.test_and_set(digest) is False
            assert table.test_and_set(digest) is True
            assert digest in table
        finally:
            table.close(unlink=True)

    def test_colliding_digests_probe_past_each_other(self):
        table = SharedVisitedTable(16)
        try:
            # Same low-64-bits prefix -> same home slot; linear probing
            # must still distinguish them.
            first = (42).to_bytes(8, "little") + b"A" * 8
            second = (42).to_bytes(8, "little") + b"B" * 8
            assert table.test_and_set(first) is False
            assert table.test_and_set(second) is False
            assert table.test_and_set(first) is True
            assert table.test_and_set(second) is True
        finally:
            table.close(unlink=True)

    def test_all_zero_digest_always_absent(self):
        table = SharedVisitedTable(16)
        try:
            zero = b"\x00" * 16
            assert table.test_and_set(zero) is False
            assert table.test_and_set(zero) is False
            assert zero not in table
        finally:
            table.close(unlink=True)

    def test_overflow_reports_absent_and_counts(self, monkeypatch):
        monkeypatch.setattr("repro.engine.visited.PROBE_LIMIT", 4)
        table = SharedVisitedTable(16)
        try:
            # Five digests with the same home slot overflow a 4-probe
            # window; the fifth insert must degrade to "absent".
            digests = [
                (9).to_bytes(8, "little") + bytes([i]) * 8 for i in range(1, 6)
            ]
            for digest in digests[:4]:
                assert table.test_and_set(digest) is False
            assert table.test_and_set(digests[4]) is False
            assert table.overflows == 1
            assert table.test_and_set(digests[4]) is False  # still never inserted
        finally:
            table.close(unlink=True)


class TestCrossProcess:
    def test_forked_child_insert_visible_to_parent(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        table = SharedVisitedTable(16)
        digest = _digest(1234)

        def child(result):
            result.put(table.test_and_set(digest))

        try:
            queue = context.SimpleQueue()
            process = context.Process(target=child, args=(queue,))
            process.start()
            assert queue.get() is False  # child inserted it first
            process.join(timeout=30)
            assert process.exitcode == 0
            assert digest in table
            assert table.test_and_set(digest) is True
        finally:
            table.close(unlink=True)


class TestLocalVisitedFilter:
    def test_exact_semantics(self):
        table = LocalVisitedFilter()
        digest = _digest(5)
        assert table.test_and_set(digest) is False
        assert table.test_and_set(digest) is True
        assert digest in table
        table.add(_digest(6))
        assert table.overflows == 0
        assert table.slots == 0
        table.close()
