"""Fault-tolerance tests: the engine under deterministic chaos.

Every test here runs the *production* recovery code — crash detection,
partition reassignment, bounded respawn, quarantine, pool collapse —
against faults scheduled by :class:`repro.engine.FaultPlan`.  Nothing is
mocked: scheduled kills SIGKILL real forked workers mid-round, and the
identical-graph guarantee is checked against a sequential baseline
afterwards.
"""

import pytest

from repro.analysis import DeterministicSystemView, explore
from repro.engine import (
    Budget,
    ExplorationEngine,
    FaultPlan,
    PartitionRetryExhausted,
    StateQuarantined,
    fingerprint,
    fork_available,
)
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.protocols import delegation_consensus_system

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fault injection needs forked workers"
)


@pytest.fixture(scope="module")
def instance():
    system = delegation_consensus_system(3, resilience=1)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    return view, root


@pytest.fixture(scope="module")
def sequential_graph(instance):
    view, root = instance
    return explore(view, root, budget=Budget(max_states=50_000))


class TestFaultPlan:
    def test_parse_kills_and_poison(self):
        plan = FaultPlan.parse("kill=2:0,3:1 poison=deadbeef")
        assert plan.kills == frozenset({(2, 0), (3, 1)})
        assert plan.poison == frozenset({bytes.fromhex("deadbeef")})
        assert plan.enabled
        assert plan.victims_at(2) == (0,)
        assert plan.victims_at(3) == (1,)
        assert plan.victims_at(4) == ()

    def test_parse_semicolon_separated(self):
        plan = FaultPlan.parse("kill=1:0;kill=1:1")
        assert plan.victims_at(1) == (0, 1)

    @pytest.mark.parametrize(
        "spec",
        ["kill", "kill=abc", "kill=1", "poison=zz", "explode=1:0"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kills=frozenset({(1, -1)}))
        with pytest.raises(ValueError):
            FaultPlan(poison=frozenset({"not-bytes"}))

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_CHAOS": "  "}) is None
        plan = FaultPlan.from_env({"REPRO_CHAOS": "kill=2:0"})
        assert plan is not None and plan.kills == frozenset({(2, 0)})

    def test_empty_plan_disabled(self):
        assert not FaultPlan().enabled


@needs_fork
class TestKillRecovery:
    def test_killed_worker_same_graph_as_sequential(
        self, instance, sequential_graph
    ):
        """The tentpole guarantee: a SIGKILLed worker mid-round changes
        nothing about the produced graph — states, order, and edges."""
        view, root = instance
        metrics = MetricsRegistry()
        engine = ExplorationEngine(
            workers=2,
            budget=Budget(),
            fault_plan=FaultPlan(kills=frozenset({(2, 0)})),
        )
        graph = engine.explore(view, root, metrics=metrics)
        assert list(graph.states) == list(sequential_graph.states)
        assert graph.edges == sequential_graph.edges
        report = engine.last_report
        assert report.worker_failures == 1
        assert report.worker_respawns == 1
        assert report.partitions_reassigned >= 1
        assert not report.quarantined
        assert not report.degraded
        counters = metrics.snapshot()["counters"]
        assert counters["engine.worker_failures"] == 1
        assert counters["engine.worker_respawns"] == 1
        assert counters["engine.partitions_reassigned"] >= 1

    def test_fingerprint_set_identical_after_recovery(
        self, instance, sequential_graph
    ):
        """The issue's headline chaos assertion, stated on digests."""
        view, root = instance
        engine = ExplorationEngine(
            workers=3,
            budget=Budget(),
            fault_plan=FaultPlan(kills=frozenset({(2, 1), (4, 0)})),
        )
        graph = engine.explore(view, root)
        size = engine.digest_size
        recovered = {fingerprint(s, size) for s in graph.states}
        baseline = {fingerprint(s, size) for s in sequential_graph.states}
        assert recovered == baseline

    def test_respawn_emits_trace_events(self, instance):
        view, root = instance
        sink = RingBufferSink()
        tracer = Tracer(sink)
        engine = ExplorationEngine(
            workers=2,
            budget=Budget(),
            fault_plan=FaultPlan(kills=frozenset({(2, 0)})),
        )
        engine.explore(view, root, tracer=tracer)
        kinds = [event.kind for event in sink.events()]
        assert "worker_lost" in kinds
        assert "worker_respawned" in kinds
        lost = next(e for e in sink.events() if e.kind == "worker_lost")
        assert lost.data["worker"] == 0

    def test_pool_collapse_degrades_and_completes(
        self, instance, sequential_graph
    ):
        """Killing every worker with respawns disabled must not raise:
        the pool collapses to in-process expansion and still produces
        the identical graph."""
        view, root = instance
        metrics = MetricsRegistry()
        engine = ExplorationEngine(
            workers=2,
            budget=Budget(),
            max_worker_restarts=0,
            fault_plan=FaultPlan(kills=frozenset({(2, 0), (2, 1)})),
        )
        graph = engine.explore(view, root, metrics=metrics)
        assert list(graph.states) == list(sequential_graph.states)
        assert graph.edges == sequential_graph.edges
        report = engine.last_report
        assert report.degraded
        assert report.worker_failures == 2
        assert report.worker_respawns == 0
        assert metrics.snapshot()["counters"]["engine.pool_collapses"] == 1


@needs_fork
class TestQuarantine:
    def _poison_plan(self, instance, engine_digest_size):
        """Poison a mid-frontier state so it kills whoever expands it."""
        view, root = instance
        graph = explore(view, root, budget=Budget(max_states=50_000))
        victim = list(graph.states)[10]
        return FaultPlan(
            poison=frozenset({fingerprint(victim, engine_digest_size)})
        ), victim

    def test_poisoned_state_quarantined_and_surfaced(
        self, instance, sequential_graph
    ):
        view, root = instance
        engine = ExplorationEngine(workers=2, budget=Budget())
        plan, victim = self._poison_plan(instance, engine.digest_size)
        engine = ExplorationEngine(workers=2, budget=Budget(), fault_plan=plan)
        graph = engine.explore(view, root)
        report = engine.last_report
        assert len(report.quarantined) == 1
        assert report.quarantined[0] == fingerprint(
            victim, engine.digest_size
        ).hex()
        assert report.quarantined_states == (victim,)
        # The node is kept (documented graph caveat) but gets no edges.
        assert victim in graph.states
        assert graph.edges[victim] == []
        # Quarantine is the one divergence from the sequential graph:
        # the victim's outgoing edges (and any states reachable *only*
        # through it) are dropped; everything explored matches exactly.
        assert set(graph.states) <= set(sequential_graph.states)
        for state, out in graph.edges.items():
            if state != victim:
                assert out == sequential_graph.edges[state]
        assert "QUARANTINED" in report.summary()

    def test_quarantine_disabled_raises(self, instance):
        view, root = instance
        probe = ExplorationEngine(workers=2, budget=Budget())
        plan, _ = self._poison_plan(instance, probe.digest_size)
        engine = ExplorationEngine(
            workers=2, budget=Budget(), fault_plan=plan, quarantine=False
        )
        with pytest.raises(StateQuarantined):
            engine.explore(view, root)

    def test_partition_retries_exhausted_raises(self, instance):
        # Poison (not a scheduled kill) so the fatal chunk is
        # deterministically in flight when the worker dies.
        view, root = instance
        probe = ExplorationEngine(workers=2, budget=Budget())
        plan, _ = self._poison_plan(instance, probe.digest_size)
        engine = ExplorationEngine(
            workers=2,
            budget=Budget(),
            max_partition_retries=0,
            fault_plan=plan,
        )
        with pytest.raises(PartitionRetryExhausted):
            engine.explore(view, root)


class TestEngineFaultConfig:
    def test_max_worker_restarts_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_MAX_RESTARTS", "7")
        assert ExplorationEngine(workers=2).max_worker_restarts == 7

    def test_negative_restarts_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(workers=2, max_worker_restarts=-1)

    def test_fault_plan_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill=3:1")
        engine = ExplorationEngine(workers=2)
        assert engine.fault_plan is not None
        assert engine.fault_plan.kills == frozenset({(3, 1)})

    def test_report_to_json_round_trips(self, instance):
        import json

        view, root = instance
        engine = ExplorationEngine(workers=1, budget=Budget())
        engine.explore(view, root)
        report = engine.last_report
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["states"] == report.states
        assert payload["degraded"] is False
        assert "quarantined_states" not in payload
