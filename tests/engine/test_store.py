"""The pluggable StateStore backends and store-backed exploration.

Three layers of guarantees:

* unit: ``StoreConfig`` URI round-trips, the spillable frontier's FIFO
  invariant across its head/spill-file/tail windows, and the backend
  contract (add/get/contains, expansion log order, truncate-to-marks,
  clear, reopen) for all three backends;
* equivalence: a store-backed exploration — any backend, sequential or
  parallel — produces the *identical* graph (state order and edge dict)
  to the classic in-RAM engine, on tob(3,1) and delegation(5,1);
* durability: streaming delta segments let a SIGKILLed run resume to
  the identical graph, segment directories are first-class citizens of
  find/list/discard_checkpoint, and monolithic v1/v2 checkpoints seed a
  store-backed resume (cross-version).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis import refute_candidate
from repro.analysis.view import DeterministicSystemView
from repro.engine import (
    Budget,
    BudgetExhausted,
    CheckpointError,
    EngineError,
    ExplorationEngine,
    MemoryStore,
    MmapStore,
    ReductionConfig,
    SQLiteStore,
    StoreConfig,
    discard_checkpoint,
    find_checkpoint,
    fingerprint,
    list_checkpoints,
    load_checkpoint,
    open_store,
    resolve_store,
    segment_dir,
)
from repro.engine.store import _SpillFrontier
from repro.protocols import delegation_consensus_system, tob_delegation_system

BACKENDS = ("memory", "sqlite", "mmap")


def make_store(backend, tmp_path, **overrides):
    config = StoreConfig(
        backend=backend,
        path=None if backend == "memory" else str(tmp_path / backend),
        **overrides,
    )
    return open_store(config)


def store_uri(backend, tmp_path, suffix=""):
    if backend == "memory":
        return "memory"
    return f"{backend}:{tmp_path / (backend + suffix)}"


@pytest.fixture(scope="module")
def instances():
    """(name, view, root, classic graph) for the equivalence matrix."""
    rows = []
    for name, system, proposals in [
        (
            "tob(3,1)",
            tob_delegation_system(3, 1),
            {0: 0, 1: 1, 2: 0},
        ),
        (
            "delegation(5,1)",
            delegation_consensus_system(5, 1),
            {0: 0, 1: 1, 2: 0, 3: 1, 4: 0},
        ),
    ]:
        view = DeterministicSystemView(system)
        root = system.initialization(proposals).final_state
        graph = ExplorationEngine(
            workers=1, budget=Budget(max_states=2_000_000)
        ).explore(view, root)
        rows.append((name, view, root, graph))
    return rows


@pytest.fixture()
def small_instance():
    system = delegation_consensus_system(3, resilience=1)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    return view, root


class TestStoreConfig:
    def test_from_uri_memory(self):
        config = StoreConfig.from_uri("memory")
        assert config.backend == "memory" and config.path is None

    def test_from_uri_with_path(self):
        config = StoreConfig.from_uri("sqlite:/var/run/store")
        assert config.backend == "sqlite"
        assert config.path == "/var/run/store"

    def test_from_uri_query_overrides(self):
        config = StoreConfig.from_uri("mmap:/d?flush=100&window=64&shards=4")
        assert config.flush_interval == 100
        assert config.frontier_window == 64
        assert config.shards == 4

    def test_to_uri_round_trips(self):
        for uri in ("memory", "sqlite:/p", "mmap:/d?flush=100&window=64"):
            assert StoreConfig.from_uri(uri).to_uri() == uri

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            StoreConfig.from_uri("redis:/nope")
        with pytest.raises(ValueError, match="backend must be one of"):
            StoreConfig(backend="redis")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown store option"):
            StoreConfig.from_uri("sqlite:/p?turbo=1")

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="flush_interval"):
            StoreConfig(flush_interval=0)
        with pytest.raises(ValueError, match="must be an integer"):
            StoreConfig.from_uri("sqlite:/p?flush=soon")

    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        config = StoreConfig()
        assert resolve_store(config) is config
        resolved = resolve_store("sqlite:/p")
        assert isinstance(resolved, StoreConfig)
        assert resolved.backend == "sqlite"
        store = make_store("memory", tmp_path)
        assert resolve_store(store) is store
        with pytest.raises(TypeError):
            resolve_store(42)


class TestSpillFrontier:
    def digests(self, count):
        return [index.to_bytes(16, "little") for index in range(count)]

    def test_fifo_within_window(self, tmp_path):
        frontier = _SpillFrontier(tmp_path, 16, window=64)
        digests = self.digests(10)
        for digest in digests:
            frontier.push(digest)
        assert [frontier.pop() for _ in digests] == digests
        assert frontier.pop() is None
        assert frontier.spilled == 0
        frontier.close()

    def test_fifo_across_spill(self, tmp_path):
        frontier = _SpillFrontier(tmp_path, 16, window=8)
        digests = self.digests(100)
        for digest in digests:
            frontier.push(digest)
        assert frontier.spilled > 0
        assert len(frontier) == 100
        assert [frontier.pop() for _ in digests] == digests
        assert frontier.pop() is None
        frontier.close()

    def test_push_front(self, tmp_path):
        frontier = _SpillFrontier(tmp_path, 16, window=4)
        digests = self.digests(20)
        for digest in digests:
            frontier.push(digest)
        head = frontier.pop()
        frontier.push_front(head)
        assert [frontier.pop() for _ in digests] == digests
        frontier.close()

    def test_interleaved_push_pop(self, tmp_path):
        frontier = _SpillFrontier(tmp_path, 16, window=4)
        expected = []
        digests = iter(self.digests(60))
        got = []
        for _ in range(20):
            for _ in range(3):
                digest = next(digests)
                frontier.push(digest)
                expected.append(digest)
            got.append(frontier.pop())
        while len(frontier):
            got.append(frontier.pop())
        assert got == expected
        frontier.close()

    def test_snapshot_load_round_trip(self, tmp_path):
        frontier = _SpillFrontier(tmp_path, 16, window=4)
        digests = self.digests(30)
        for digest in digests:
            frontier.push(digest)
        blob = frontier.snapshot()
        other = _SpillFrontier(tmp_path / "other", 16, window=4)
        other.load(blob)
        assert [other.pop() for _ in digests] == digests
        frontier.close()
        other.close()


class TestBackendContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_get_contains(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            digest_a, digest_b = b"a" * 16, b"b" * 16
            assert store.add(digest_a, b"packed-a") == 0
            assert store.add(digest_b, b"packed-b") == 1
            # Re-adding is an idempotent no-op (returns -1, keeps the
            # first packed bytes).
            assert store.add(digest_a, b"other-bytes") == -1
            assert len(store) == 2
            assert digest_a in store and digest_b in store
            assert b"c" * 16 not in store
            assert store.get(digest_a) == b"packed-a"
            assert store.get(b"c" * 16) is None
            assert list(store.iter_packed()) == [b"packed-a", b"packed-b"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expansion_log_order(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            parent, child = b"p" * 16, b"c" * 16
            store.add(parent, b"packed-p")
            slot = store.action_slot("act")
            assert store.action_slot("act") == slot
            store.append_expansion(parent, [(0, slot, child)])
            store.append_expansion(child, [])
            assert store.actions()[slot] == "act"
            assert list(store.iter_expansions()) == [
                (parent, [(0, slot, child)]),
                (child, []),
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_frontier(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            digests = [index.to_bytes(16, "little") for index in range(5)]
            for digest in digests:
                store.push(digest)
            assert store.frontier_len() == 5
            blob = store.frontier_snapshot()
            assert store.pop() == digests[0]
            store.push_front(digests[0])
            store.frontier_load(blob)
            assert [store.pop() for _ in digests] == digests

    @pytest.mark.parametrize("backend", ("sqlite", "mmap"))
    def test_truncate_to_marks(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            digest_a, digest_b = b"a" * 16, b"b" * 16
            store.add(digest_a, b"packed-a")
            store.append_expansion(digest_a, [])
            store.flush()
            marks = store.marks()
            store.add(digest_b, b"packed-b")
            store.append_expansion(digest_b, [(0, 0, digest_a)])
            store.flush()
            store.truncate(marks)
            assert len(store) == 1
            assert digest_b not in store
            assert store.get(digest_b) is None
            assert list(store.iter_expansions()) == [(digest_a, [])]

    @pytest.mark.parametrize("backend", ("sqlite", "mmap"))
    def test_reopen_preserves_everything(self, backend, tmp_path):
        config = StoreConfig(backend=backend, path=str(tmp_path / backend))
        with open_store(config) as store:
            digest = b"a" * 16
            store.add(digest, b"packed-a")
            slot = store.action_slot("act")
            store.append_expansion(digest, [(1, slot, digest)])
            store.flush()
        with open_store(config) as store:
            assert len(store) == 1
            assert store.get(digest) == b"packed-a"
            assert store.actions()[slot] == "act"
            assert list(store.iter_expansions()) == [(digest, [(1, slot, digest)])]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clear(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            store.add(b"a" * 16, b"packed")
            store.append_expansion(b"a" * 16, [])
            store.push(b"a" * 16)
            store.clear()
            assert len(store) == 0
            assert store.frontier_len() == 0
            assert list(store.iter_expansions()) == []
            # Usable after clear.
            assert store.add(b"b" * 16, b"fresh") == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_backend_label(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            assert store.stats().backend == backend
            assert store.stats().to_json()["backend"] == backend

    def test_scratch_directory_cleaned_up(self):
        store = open_store(StoreConfig(backend="sqlite", path=None))
        directory = store.directory
        assert directory.exists()
        store.close()
        assert not directory.exists()

    def test_mmap_index_growth(self, tmp_path):
        # Push well past the initial index capacity to force rebuilds.
        with make_store("mmap", tmp_path) as store:
            digests = [index.to_bytes(16, "big") for index in range(5000)]
            for index, digest in enumerate(digests):
                assert store.add(digest, b"x" * 20 + digest) == index
            for index, digest in enumerate(digests):
                assert digest in store
                assert store.get(digest) == b"x" * 20 + digest

    def test_mmap_flushed_batches_survive_index_probes(self, tmp_path):
        # Regression: flushing a batch used to interleave buffered log
        # appends with index-probe reads of the same file (slot
        # collisions, and the offline rehash past 60% load) — on
        # CPython a+b files that interleaving silently LOSES writes.
        # Many small flushes + enough records to cross a rehash cover
        # both read paths; every record must survive, also on reopen.
        import random

        rng = random.Random(7)
        records = []
        config = StoreConfig(
            backend="mmap", path=str(tmp_path / "mmap"), flush_interval=500
        )
        with open_store(config) as store:
            for count in range(25_000):
                packed = bytes(
                    rng.randrange(256) for _ in range(rng.randrange(20, 60))
                )
                digest = fingerprint(packed)
                if store.add(digest, packed) >= 0:
                    records.append((digest, packed))
                if count % 500 == 499:
                    store.flush()
            store.flush()
            assert all(store.get(d) == p for d, p in records)
            assert [p for p in store.iter_packed()] == [p for _, p in records]
        with open_store(config) as store:
            assert len(store) == len(records)
            assert all(store.get(d) == p for d, p in records)

    def test_mmap_adopt_drops_torn_tail(self, tmp_path):
        config = StoreConfig(backend="mmap", path=str(tmp_path / "mmap"))
        with open_store(config) as store:
            store.add(b"a" * 16, b"packed-a")
            store.flush()
            marks = store.marks()
            store.add(b"b" * 16, b"packed-b")
            store.flush()
        # Simulate a torn append: truncate the log mid-record.
        log = tmp_path / "mmap" / "states.log"
        log_size = log.stat().st_size
        with open(log, "r+b") as handle:
            handle.truncate(marks["log_offset"] + 7)
        with open_store(config) as store:
            assert len(store) == 1
            assert b"a" * 16 in store and b"b" * 16 not in store
        assert log.stat().st_size < log_size


class TestIdenticalGraph:
    """The headline guarantee: every backend, same graph, byte for byte."""

    @pytest.mark.parametrize("workers", (1, 2))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_store_graph_matches_classic(
        self, backend, workers, instances, tmp_path
    ):
        for name, view, root, classic in instances:
            engine = ExplorationEngine(
                workers=workers,
                budget=Budget(max_states=2_000_000),
                store=store_uri(backend, tmp_path, suffix=f"-{name}-{workers}"),
            )
            graph = engine.explore(view, root)
            assert list(graph.states) == list(classic.states), (
                f"{backend} workers={workers} {name}: state order diverged"
            )
            assert graph.edges == classic.edges, (
                f"{backend} workers={workers} {name}: edges diverged"
            )
            report = engine.last_report
            assert report.store_backend == backend
            assert report.states == len(classic.states)

    def test_spill_window_still_identical(self, small_instance, tmp_path):
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        graph = ExplorationEngine(
            workers=1,
            store=f"sqlite:{tmp_path / 's'}?window=8",
        ).explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges

    def test_scan_reports_without_materializing(self, small_instance, tmp_path):
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        engine = ExplorationEngine(workers=1, store=store_uri("sqlite", tmp_path))
        report = engine.scan(view, root)
        assert report is engine.last_report
        assert report.states == len(classic.states)
        assert report.transitions == classic.edge_count()
        assert report.store_backend == "sqlite"
        assert report.peak_rss_kb > 0
        payload = report.to_json()
        assert payload["store_backend"] == "sqlite"
        assert payload["peak_rss_kb"] == report.peak_rss_kb


class TestComposability:
    def test_refute_candidate_accepts_store(self, tmp_path):
        system = delegation_consensus_system(3, resilience=1)
        verdict = refute_candidate(
            system,
            budget=Budget(max_states=100_000),
            store=f"sqlite:{tmp_path / 'store'}",
        )
        assert verdict.refuted

    def test_refute_candidate_store_and_engine_conflict(self, tmp_path):
        system = delegation_consensus_system(3, resilience=1)
        with pytest.raises(TypeError, match="not both"):
            refute_candidate(
                system,
                engine=ExplorationEngine(workers=1),
                store="memory",
            )

    def test_reduction_parallel_store_compose(self, tmp_path):
        """Reduction + parallelism + disk store in one run."""
        system = delegation_consensus_system(3, resilience=1)
        verdict = refute_candidate(
            system,
            budget=Budget(max_states=100_000),
            engine=ExplorationEngine(
                workers=2,
                budget=Budget(max_states=100_000),
                store=f"sqlite:{tmp_path / 'store'}",
            ),
            reduction=ReductionConfig.from_name("symmetry"),
        )
        assert verdict.refuted

    def test_audit_mode_rejects_store(self):
        with pytest.raises(ValueError, match="audit"):
            ExplorationEngine(store="memory", audit=True)

    def test_store_instance_bound_to_one_root(self, small_instance, tmp_path):
        view, root = small_instance
        with open_store(
            StoreConfig(backend="sqlite", path=str(tmp_path / "s"))
        ) as store:
            engine = ExplorationEngine(workers=1, store=store)
            engine.explore(view, root)
            with pytest.raises(EngineError, match="resume=True"):
                engine.explore(view, root)


class TestSegmentCheckpoints:
    def exhaust(self, view, root, tmp_path, backend="sqlite", workers=1):
        checkpoint_dir = tmp_path / "ck"
        uri = store_uri(backend, tmp_path)
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(
                workers=workers,
                budget=Budget(max_states=60),
                store=uri,
                checkpoint_dir=checkpoint_dir,
                flush_interval=25,
            ).explore(view, root)
        return checkpoint_dir, uri, info.value

    @pytest.mark.parametrize("backend", ("sqlite", "mmap"))
    def test_exhaust_writes_segments_and_resume_completes(
        self, backend, small_instance, tmp_path
    ):
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        checkpoint_dir, uri, error = self.exhaust(
            view, root, tmp_path, backend=backend
        )
        segments = segment_dir(checkpoint_dir, fingerprint(root))
        assert error.checkpoint == segments
        assert list(segments.glob("*.seg"))
        engine = ExplorationEngine(
            workers=1,
            budget=Budget(max_states=100_000),
            store=uri,
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        graph = engine.explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges
        # Completed runs retire their segments like classic checkpoints.
        assert not list(segments.glob("*.seg"))

    def test_segments_pruned_during_run(self, small_instance, tmp_path):
        view, root = small_instance
        with pytest.raises(BudgetExhausted):
            ExplorationEngine(
                workers=1,
                budget=Budget(max_states=150),
                store=store_uri("sqlite", tmp_path),
                checkpoint_dir=tmp_path / "ck",
                flush_interval=10,
            ).explore(view, root)
        segments = segment_dir(tmp_path / "ck", fingerprint(root))
        assert 1 <= len(list(segments.glob("*.seg"))) <= 2

    def test_find_checkpoint_recognizes_segments(self, small_instance, tmp_path):
        view, root = small_instance
        checkpoint_dir, _, _ = self.exhaust(view, root, tmp_path)
        digest = fingerprint(root)
        found = find_checkpoint(checkpoint_dir, digest)
        assert found == segment_dir(checkpoint_dir, digest)
        assert found.is_dir()

    def test_list_checkpoints_includes_segments(self, small_instance, tmp_path):
        view, root = small_instance
        checkpoint_dir, _, _ = self.exhaust(view, root, tmp_path)
        listed = list_checkpoints(checkpoint_dir)
        assert segment_dir(checkpoint_dir, fingerprint(root)) in listed

    def test_load_checkpoint_on_segments_explains(
        self, small_instance, tmp_path
    ):
        view, root = small_instance
        checkpoint_dir, _, _ = self.exhaust(view, root, tmp_path)
        segments = segment_dir(checkpoint_dir, fingerprint(root))
        with pytest.raises(CheckpointError, match="store="):
            load_checkpoint(segments)

    def test_discard_checkpoint_removes_segments(
        self, small_instance, tmp_path
    ):
        view, root = small_instance
        checkpoint_dir, _, _ = self.exhaust(view, root, tmp_path)
        digest = fingerprint(root)
        discard_checkpoint(checkpoint_dir, digest)
        assert find_checkpoint(checkpoint_dir, digest) is None

    def test_memory_store_writes_monolithic_checkpoint(
        self, small_instance, tmp_path
    ):
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        checkpoint_dir = tmp_path / "ck"
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(
                workers=1,
                budget=Budget(max_states=60),
                store="memory",
                checkpoint_dir=checkpoint_dir,
                flush_interval=25,
            ).explore(view, root)
        assert info.value.checkpoint.suffix == ".ckpt"
        graph = ExplorationEngine(
            workers=1,
            budget=Budget(max_states=100_000),
            store="memory",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges

    def test_classic_checkpoint_seeds_store_resume(
        self, small_instance, tmp_path
    ):
        """Cross-version: monolithic file -> store-backed continuation."""
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        checkpoint_dir = tmp_path / "ck"
        with pytest.raises(BudgetExhausted):
            ExplorationEngine(
                workers=1,
                budget=Budget(max_states=60),
                checkpoint_dir=checkpoint_dir,
                flush_interval=25,
            ).explore(view, root)
        graph = ExplorationEngine(
            workers=1,
            budget=Budget(max_states=100_000),
            store=store_uri("mmap", tmp_path),
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges

    def test_parallel_exhaust_resumes_identically(
        self, small_instance, tmp_path
    ):
        view, root = small_instance
        classic = ExplorationEngine(workers=1).explore(view, root)
        checkpoint_dir, uri, _ = self.exhaust(
            view, root, tmp_path, workers=2
        )
        graph = ExplorationEngine(
            workers=2,
            budget=Budget(max_states=100_000),
            store=uri,
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges


KILL_CHILD = textwrap.dedent(
    """
    import os, signal, sys

    from repro.analysis.view import DeterministicSystemView
    from repro.engine import Budget, ExplorationEngine
    from repro.protocols import delegation_consensus_system

    store_uri, checkpoint_dir = sys.argv[1], sys.argv[2]
    system = delegation_consensus_system(5, resilience=1)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1, 2: 0, 3: 1, 4: 0}).final_state

    expanded = 0

    def prune(state):
        global expanded
        expanded += 1
        if expanded == 1200:  # well past several 100-state flushes
            os.kill(os.getpid(), signal.SIGKILL)
        return False

    ExplorationEngine(
        workers=1,
        budget=Budget(max_states=1_000_000),
        store=store_uri,
        checkpoint_dir=checkpoint_dir,
        flush_interval=100,
    ).explore(view, root, prune=prune)
    raise SystemExit("unreachable: the run should have been killed")
    """
)


class TestKillAndResume:
    @pytest.mark.parametrize("backend", ("sqlite", "mmap"))
    def test_sigkill_mid_run_resumes_to_identical_graph(
        self, backend, instances, tmp_path
    ):
        _, view, root, classic = next(
            row for row in instances if row[0] == "delegation(5,1)"
        )
        uri = store_uri(backend, tmp_path)
        checkpoint_dir = tmp_path / "ck"
        script = tmp_path / "child.py"
        script.write_text(KILL_CHILD)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), *sys.path) if p
        )
        result = subprocess.run(
            [sys.executable, str(script), uri, str(checkpoint_dir)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        segments = segment_dir(checkpoint_dir, fingerprint(root))
        assert list(segments.glob("*.seg")), "no segment survived the kill"
        graph = ExplorationEngine(
            workers=1,
            budget=Budget(max_states=2_000_000),
            store=uri,
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).explore(view, root)
        assert list(graph.states) == list(classic.states)
        assert graph.edges == classic.edges
