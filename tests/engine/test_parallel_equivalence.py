"""Workers=2 identical-graph equivalence under the packed wire protocol.

The property suite (``tests/property/test_engine_properties.py``) drives
randomized small instances; these tests pin the two mid-size instances
the scaling benchmark uses — tob(3,1) and delegation(5,1), several
thousand states each — and assert the engine's strongest guarantee at
workers=2: the *identical* graph to the sequential explorer, including
discovery order, now that novel states cross the worker pipes as packed
bytes filtered through the shared visited table.
"""

import pytest

from repro.analysis import DeterministicSystemView, explore
from repro.engine import Budget, ExplorationEngine
from repro.protocols import delegation_consensus_system, tob_delegation_system

FACTORIES = {
    "tob-3-1": lambda: tob_delegation_system(3, resilience=1),
    "delegation-5-1": lambda: delegation_consensus_system(5, resilience=1),
}

_CACHE: dict = {}


def _instance(name):
    if name not in _CACHE:
        system = FACTORIES[name]()
        view = DeterministicSystemView(system)
        proposals = {
            endpoint: index % 2
            for index, endpoint in enumerate(system.process_ids)
        }
        root = system.initialization(proposals).final_state
        sequential = explore(view, root, budget=Budget(max_states=500_000))
        _CACHE[name] = (view, root, sequential)
    return _CACHE[name]


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_workers_2_identical_graph(name):
    view, root, sequential = _instance(name)
    graph = ExplorationEngine(workers=2, budget=Budget()).explore(view, root)
    assert list(graph.states) == list(sequential.states)  # discovery order too
    assert graph.edges == sequential.edges


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_workers_2_audit_mode_identical_graph(name):
    """Collision-audit mode still compares full states: the packed wire
    format ships the bytes alongside every audit row, so audited parallel
    runs must reproduce the sequential graph exactly too."""
    view, root, sequential = _instance(name)
    graph = ExplorationEngine(workers=2, budget=Budget(), audit=True).explore(
        view, root
    )
    assert list(graph.states) == list(sequential.states)
    assert graph.edges == sequential.edges
