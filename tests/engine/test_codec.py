"""Unit tests for the packed canonical state codec."""

import dataclasses
import enum

import pytest

from repro.engine import (
    Codec,
    CodecError,
    canonical_bytes,
    decode_bytes,
    digest_of_packed,
    fingerprint,
    register_codec_type,
    registered_codec_types,
)
from repro.engine.codec import _TYPE_REGISTRY


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: int


class Color(enum.Enum):
    RED = 1
    BLUE = 2


SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**70,
    3.25,
    -0.0,
    "",
    "hello",
    "unicode: héllo",
    b"",
    b"\x00\xff",
    (),
    (1, "two", (3.0, None)),
    frozenset(),
    frozenset({1, "a", (2, 3)}),
    {},
    {"k": 1, 2: "v", (3,): frozenset({4})},
    Point(1, 2),
    Color.RED,
    (Point(0, 0), Color.BLUE, {"deep": (frozenset({Point(1, 1)}),)}),
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_encode_decode_identity(self, value):
        assert decode_bytes(canonical_bytes(value)) == value

    def test_aliases_decode_to_canonical_forms(self):
        assert decode_bytes(canonical_bytes([1, 2])) == (1, 2)
        assert decode_bytes(canonical_bytes({1, 2})) == frozenset({1, 2})
        assert decode_bytes(canonical_bytes(bytearray(b"xy"))) == b"xy"

    def test_bool_int_distinct(self):
        assert decode_bytes(canonical_bytes(True)) is True
        assert decode_bytes(canonical_bytes(1)) == 1
        assert canonical_bytes(True) != canonical_bytes(1)


class TestDigestParity:
    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_digest_of_packed_matches_fingerprint(self, value):
        assert digest_of_packed(canonical_bytes(value)) == fingerprint(value)

    def test_encode_digest_single_pass(self):
        codec = Codec()
        state = (Point(1, 2), "phase", frozenset({3}))
        packed, digest = codec.encode_digest(state)
        assert packed == canonical_bytes(state)
        assert digest == fingerprint(state)
        assert digest == digest_of_packed(packed)

    def test_cached_digest_matches_uncached(self):
        codec = Codec()
        state = (Point(1, 2), "phase", (1, 2, 3))
        first = codec.digest(state)  # populates the component cache
        assert codec.digest(state) == first == fingerprint(state)


class TestCodecCache:
    def test_component_cache_hits_by_identity(self):
        codec = Codec()
        point = Point(1, 2)
        codec.encode((point, "a"))
        codec.encode((point, "b"))  # same Point object is a hit now
        hits, misses = codec.stats()
        assert hits == 1
        assert misses == 3

    def test_equal_scalars_hit_across_objects(self):
        codec = Codec()
        codec.encode((int("1" * 30), "endpoint-0"))
        # Equal-but-distinct int/str objects land in the equality tier.
        codec.encode((int("1" * 30), "endpoint-" + "0"))
        hits, misses = codec.stats()
        assert hits == 2
        assert misses == 2

    def test_unhashable_component_encodes_uncached(self):
        codec = Codec()
        packed = codec.encode(([1, 2], "x"))
        assert packed == canonical_bytes(((1, 2), "x"))

    def test_bool_int_components_never_share_cache(self):
        """Regression: ==-keyed caching returned the first-cached encoding
        for every ``True``/``1``/``1.0``-style equal value, making digests
        encounter-order dependent (REVIEW: codec.py component_bytes)."""
        codec = Codec()
        packed_true, digest_true = codec.encode_digest((True, "x"))
        packed_one, digest_one = codec.encode_digest((1, "x"))
        packed_float, digest_float = codec.encode_digest((1.0, "x"))
        assert len({packed_true, packed_one, packed_float}) == 3
        assert len({digest_true, digest_one, digest_float}) == 3
        # The packed bytes decode to their own value, not the first-seen.
        assert codec.decode(packed_one)[0] is not True
        assert codec.decode(packed_one) == (1, "x")
        assert codec.decode(packed_true)[0] is True
        # Digest parity with the uncached path, in every encounter order.
        assert digest_one == fingerprint((1, "x"))
        assert digest_true == fingerprint((True, "x"))
        reordered = Codec()
        assert reordered.encode_digest((1, "x")) == (packed_one, digest_one)
        assert reordered.encode_digest((True, "x")) == (packed_true, digest_true)

    def test_equal_containers_with_distinct_encodings(self):
        codec = Codec()
        packed_false = codec.encode(((False,), "x"))
        packed_zero = codec.encode(((0,), "x"))  # (0,) == (False,)
        assert packed_false != packed_zero
        assert codec.decode(packed_zero)[0][0] is not False
        assert packed_zero == canonical_bytes(((0,), "x"))

    def test_negative_zero_float_not_conflated(self):
        codec = Codec()
        assert codec.encode((0.0, "x")) != codec.encode((-0.0, "x"))
        assert codec.encode((0.0, "x")) == canonical_bytes((0.0, "x"))


class TestInterning:
    def test_equal_components_share_objects(self):
        codec = Codec()
        first = codec.decode(canonical_bytes((Point(1, 2), "a")))
        second = codec.decode(canonical_bytes((Point(1, 2), "b")))
        assert first[0] is second[0]

    def test_strings_interned(self):
        one = decode_bytes(canonical_bytes("endpoint-0"))
        two = decode_bytes(canonical_bytes("endpoint-0"))
        assert one is two

    def test_interning_never_changes_bytes(self):
        codec = Codec()
        state = (Point(3, 4), Point(3, 4))
        assert codec.encode(state) == canonical_bytes(state)
        assert codec.encode(state) == canonical_bytes(state)  # warm cache


class TestRegistry:
    def test_encoding_registers_automatically(self):
        canonical_bytes(Point(9, 9))
        assert registered_codec_types()["Point"] is Point

    def test_register_rejects_plain_class(self):
        class Plain:
            pass

        with pytest.raises(CodecError):
            register_codec_type(Plain)

    def test_register_rejects_init_false_fields(self):
        @dataclasses.dataclass(frozen=True)
        class Sneaky:
            x: int
            y: int = dataclasses.field(default=0, init=False)

        with pytest.raises(CodecError, match="init=False"):
            register_codec_type(Sneaky)

    def test_register_rejects_qualname_conflict(self):
        @dataclasses.dataclass(frozen=True)
        class Clash:
            x: int

        first = Clash

        @dataclasses.dataclass(frozen=True)  # noqa: F811
        class Clash:  # noqa: F811
            x: int

        register_codec_type(first)
        try:
            with pytest.raises(CodecError, match="already registered"):
                register_codec_type(Clash)
        finally:
            _TYPE_REGISTRY.pop(first.__qualname__, None)

    def test_decode_unregistered_dataclass_raises(self):
        packed = canonical_bytes(Point(5, 6))
        saved = _TYPE_REGISTRY.pop("Point")
        try:
            with pytest.raises(CodecError, match="unregistered dataclass"):
                decode_bytes(packed)
        finally:
            _TYPE_REGISTRY["Point"] = saved

    def test_decode_field_count_mismatch_raises(self):
        packed = canonical_bytes(Point(5, 6))

        @dataclasses.dataclass(frozen=True)
        class Shrunk:
            x: int

        saved = _TYPE_REGISTRY["Point"]
        _TYPE_REGISTRY["Point"] = Shrunk
        try:
            with pytest.raises(CodecError, match="stale class version"):
                decode_bytes(packed)
        finally:
            _TYPE_REGISTRY["Point"] = saved


class TestDecodeErrors:
    def test_repr_fallback_is_hash_only(self):
        class Exotic:
            def __repr__(self):
                return "Exotic()"

        packed = canonical_bytes(Exotic())
        with pytest.raises(CodecError, match="repr-encoded"):
            decode_bytes(packed)

    def test_truncated(self):
        packed = canonical_bytes((1, 2, 3))
        with pytest.raises(CodecError):
            decode_bytes(packed[:-1])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError, match="trailing garbage"):
            decode_bytes(canonical_bytes(1) + b"\x00")
        with pytest.raises(CodecError, match="trailing garbage"):
            Codec().decode(canonical_bytes((1,)) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(CodecError, match="unknown tag"):
            decode_bytes(b"\x7f")

    def test_empty(self):
        with pytest.raises(CodecError):
            decode_bytes(b"")
