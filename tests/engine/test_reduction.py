"""Unit tests for repro.engine.reduction.

Covers the symmetry machinery (group/stabilizer computation, canonical
representatives, refusal of unsound permutations on asymmetric wiring),
the ample-set POR counters, the audit/compare helpers on instances small
enough to explore both graphs, the supporting fingerprint changes, and
the CLI flags.
"""

import pytest

from repro.__main__ import main
from repro.analysis import DeterministicSystemView, analyze_valence, find_hook
from repro.engine import (
    Canonicalizer,
    ReductionConfig,
    StateIndex,
    audit_reduction,
    build_reduced_view,
    compare_reduction,
    fingerprint,
    fingerprint_components,
)
from repro.protocols import (
    delegation_consensus_system,
    grouped_delegation_system,
    last_writer_register_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


def _root(system, proposals=None):
    if proposals is None:
        proposals = {
            endpoint: index % 2
            for index, endpoint in enumerate(system.process_ids)
        }
    return system.initialization(proposals).final_state


class TestReductionConfig:
    def test_from_name(self):
        assert ReductionConfig.from_name("none") == ReductionConfig()
        assert ReductionConfig.from_name("symmetry").symmetry
        assert ReductionConfig.from_name("por").por
        full = ReductionConfig.from_name("full")
        assert full.symmetry and full.por and full.enabled
        assert not ReductionConfig.from_name("none").enabled

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            ReductionConfig.from_name("fast")


class TestCanonicalizer:
    def test_tob4_group_and_stabilizer(self):
        system = tob_delegation_system(4, resilience=1)
        root = _root(system)  # inputs 0,1,0,1: two interchangeable pairs
        canonicalizer = Canonicalizer(system, root)
        assert canonicalizer.group_size == 24  # all of S_4 respects the wiring
        assert canonicalizer.stabilizer_size == 4  # 2! x 2! fix the inputs
        assert canonicalizer.canon(root) == root

    def test_canon_is_idempotent_and_orbit_invariant(self):
        system = tob_delegation_system(2, resilience=1)
        root = _root(system, {0: 0, 1: 0})  # equal inputs: full stabilizer
        canonicalizer = Canonicalizer(system, root)
        assert canonicalizer.permuters, "equal inputs must leave a nontrivial group"
        view = DeterministicSystemView(system)
        frontier, states = [root], {root}
        while frontier and len(states) < 40:
            for _, _, post in view.successors(frontier.pop()):
                if post not in states:
                    states.add(post)
                    frontier.append(post)
        for state in states:
            representative = canonicalizer.canon(state)
            assert canonicalizer.canon(representative) == representative
            for permuter in canonicalizer.permuters:
                assert canonicalizer.canon(permuter.apply(state)) == representative

    def test_crossed_wiring_yields_trivial_group(self):
        # min-register and last-writer processes read the peer's register:
        # their symmetry keys differ per process, so no permutation is
        # sound and the canonicalizer must refuse all of them.
        for system in (min_register_consensus_system(), last_writer_register_system()):
            canonicalizer = Canonicalizer(system, _root(system))
            assert not canonicalizer.permuters
            assert canonicalizer.group_size == 1
            assert canonicalizer.reason

    def test_cross_group_permutations_refused(self):
        # Two delegation groups over separate consensus objects: swapping
        # processes across groups is unsound (it would not preserve the
        # services' endpoint sets) and must be filtered out, leaving only
        # the 2! x 2! within-group permutations.
        system = grouped_delegation_system([2, 2])
        canonicalizer = Canonicalizer(system, _root(system, {e: 0 for e in range(4)}))
        assert canonicalizer.group_size == 4


class TestReducedView:
    def test_counters_and_shrinkage(self):
        system = delegation_consensus_system(3, resilience=1)
        root = _root(system)
        view = build_reduced_view(
            DeterministicSystemView(system), root, ReductionConfig.from_name("full")
        )
        from repro.analysis import explore

        graph = explore(view, root, budget=Budget(max_states=100_000))
        assert view.canonicalizer.orbit_hits > 0
        assert view.pruned_tasks > 0
        full = explore(DeterministicSystemView(system), root, budget=Budget(max_states=100_000))
        assert len(graph.states) < len(full.states)

    def test_disabled_config_builds_passthrough(self):
        system = delegation_consensus_system(2, resilience=1)
        root = _root(system)
        view = build_reduced_view(
            DeterministicSystemView(system), root, ReductionConfig()
        )
        assert view.canonicalizer is None and not view.por
        assert view.successors(root) == view.base.successors(root)


class TestAuditAndCompare:
    @pytest.mark.parametrize("mode", ["symmetry", "por", "full"])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: delegation_consensus_system(3, resilience=1),
            lambda: tob_delegation_system(2, resilience=1),
        ],
        ids=["delegation-3", "tob-2"],
    )
    def test_audit_passes(self, factory, mode):
        system = factory()
        comparison = audit_reduction(
            system, _root(system), ReductionConfig.from_name(mode)
        )
        assert comparison.reduced_states <= comparison.full_states

    def test_audit_requires_enabled_config(self):
        system = delegation_consensus_system(2, resilience=1)
        with pytest.raises(ValueError):
            audit_reduction(system, _root(system), ReductionConfig())

    def test_compare_reports_committed_ratio(self):
        system = delegation_consensus_system(3, resilience=1)
        comparison = compare_reduction(
            system, _root(system), ReductionConfig.from_name("full")
        )
        assert comparison.state_ratio >= 3.0
        assert comparison.full_states == 188 and comparison.reduced_states == 50
        assert comparison.orbit_hits > 0 and comparison.pruned_tasks > 0


class TestAnalysisIntegration:
    def test_find_hook_refuses_por(self):
        system = delegation_consensus_system(2, resilience=1)
        root = _root(system)
        analysis = analyze_valence(
            system, root, reduction=ReductionConfig.from_name("por")
        )
        with pytest.raises(ValueError, match="partial-order"):
            find_hook(analysis, root)

    def test_symmetry_analysis_preserves_valence(self):
        system = delegation_consensus_system(3, resilience=1)
        root = _root(system)
        plain = analyze_valence(system, root)
        reduced = analyze_valence(
            system, root, reduction=ReductionConfig.from_name("symmetry")
        )
        assert len(reduced.graph.states) < len(plain.graph.states)
        for state in plain.graph.states:
            assert reduced.valence(state) == plain.valence(state)


class TestFingerprintSupport:
    def test_state_index_resolve_interns(self):
        index = StateIndex()
        first = (1, ("a", frozenset({2})))
        duplicate = (1, ("a", frozenset({2})))
        assert first is not duplicate
        index.add(first)
        assert index.resolve(duplicate) is first
        assert index.resolve(("novel",)) == ("novel",)

    def test_fingerprint_components_matches_fingerprint(self):
        cache: dict = {}
        states = [
            (1, "a", frozenset({1, 2})),
            (1, "a", frozenset({1, 2})),  # cache hit path
            ((1, 2), {"k": (3,)}, None),
            (),
        ]
        for state in states:
            assert fingerprint_components(state, cache, 16) == fingerprint(state, 16)
        assert fingerprint_components("scalar", cache) == fingerprint("scalar")

    def test_fingerprint_components_bool_int_not_conflated(self):
        """Regression: an ==-keyed cache made (1, ...) digest as (True, ...)
        once the bool had been cached first (REVIEW: codec cache)."""
        cache: dict = {}
        states = [(True, "x"), (1, "x"), (1.0, "x"), ((False,), "y"), ((0,), "y")]
        digests = [fingerprint_components(state, cache, 16) for state in states]
        assert len(set(digests)) == len(states)
        for state, digest in zip(states, digests):
            assert digest == fingerprint(state, 16)


class TestCli:
    def test_stats_compare_reduction(self, capsys):
        assert main(["stats", "delegation", "-n", "3", "--compare-reduction"]) == 0
        out = capsys.readouterr().out
        assert "Full:    188 states" in out
        assert "Reduced: 50 states" in out
        assert "Ratio:" in out

    def test_refute_with_reduction_flag(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "--reduction", "full"]) == 0
        assert "refuted:   True" in capsys.readouterr().out

    def test_audit_reduction_flag(self, capsys):
        code = main(
            ["refute", "delegation", "-n", "2", "--reduction", "full",
             "--audit-reduction"]
        )
        assert code == 0
        assert "Reduction audit OK" in capsys.readouterr().out
