"""Unit tests for canonical state fingerprinting."""

import enum
from dataclasses import dataclass

import pytest

from repro.engine import (
    DIGEST_SIZE,
    FingerprintCollision,
    FingerprintIndex,
    StateIndex,
    canonical_bytes,
    fingerprint,
    shard_of,
)
from repro.protocols import delegation_consensus_system


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Point:
    x: int
    y: int


class TestCanonicalBytes:
    def test_scalars_distinct(self):
        values = [None, True, False, 0, 1, -1, 0.5, "a", "b", b"a", ()]
        encodings = [canonical_bytes(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_bool_not_int(self):
        # bool is an int subclass; the encoding must still tell them apart.
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)

    def test_frozenset_order_independent(self):
        a = frozenset([("x", 1), ("y", 2), ("z", 3)])
        b = frozenset(reversed(sorted(a)))
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_tuple_order_matters(self):
        assert canonical_bytes((1, 2)) != canonical_bytes((2, 1))

    def test_nesting_is_unambiguous(self):
        assert canonical_bytes(((1,), 2)) != canonical_bytes((1, (2,)))

    def test_dataclass_and_enum(self):
        assert canonical_bytes(Point(1, 2)) == canonical_bytes(Point(1, 2))
        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))
        assert canonical_bytes(Color.RED) != canonical_bytes(Color.BLUE)


class TestFingerprint:
    def test_stable_across_calls(self):
        value = (frozenset([1, 2, 3]), {"k": (4, 5)})
        assert fingerprint(value) == fingerprint(value)

    def test_digest_size(self):
        assert len(fingerprint("x")) == DIGEST_SIZE
        assert len(fingerprint("x", 8)) == 8

    def test_real_states_fingerprint_distinctly(self):
        system = delegation_consensus_system(2, resilience=0)
        a = system.initialization({0: 0, 1: 1}).final_state
        b = system.initialization({0: 1, 1: 0}).final_state
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(a)

    def test_shard_of_covers_range(self):
        shards = {shard_of(fingerprint(i), 4) for i in range(256)}
        assert shards == {0, 1, 2, 3}


class TestIndexes:
    @pytest.mark.parametrize("index_cls", [FingerprintIndex, StateIndex])
    def test_check_add_roundtrip(self, index_cls):
        index = index_cls(DIGEST_SIZE)
        known, digest = index.check("alpha", None)
        assert not known
        index.add("alpha", digest)
        assert len(index) == 1
        known, _ = index.check("alpha", None)
        assert known

    def test_audit_mode_detects_collisions(self):
        index = FingerprintIndex(DIGEST_SIZE, audit=True)
        digest = fingerprint("a")
        index.add("a", digest)
        with pytest.raises(FingerprintCollision):
            index.check("b", digest)  # forged digest: same bytes, different state

    def test_audit_mode_accepts_equal_states(self):
        index = FingerprintIndex(DIGEST_SIZE, audit=True)
        digest = fingerprint("a")
        index.add("a", digest)
        known, _ = index.check("a", digest)
        assert known

    def test_index_distinguishes_bool_int_states(self):
        """Regression: the codec's shared component cache conflated
        (True, ...) and (1, ...) into one digest whichever was checked
        first, which audit mode then surfaced as a FingerprintCollision
        (REVIEW: codec cache).  Both orders, one warm cache."""
        for states in [((True, "x"), (1, "x")), ((1, "x"), (True, "x"))]:
            index = FingerprintIndex(DIGEST_SIZE, audit=True)
            digests = set()
            for state in states:
                known, digest = index.check(state, None)
                assert not known
                index.add(state, digest)
                assert digest == fingerprint(state, DIGEST_SIZE)
                digests.add(digest)
            assert len(digests) == 2
