"""Unit tests for the unified budget and structured exhaustion."""

import pytest

from repro.analysis import ExplorationBudget
from repro.engine import Budget, BudgetExhausted, DEFAULT_BUDGET, Deadline


class TestBudget:
    def test_defaults_unlimited_fields(self):
        budget = Budget()
        assert budget.unlimited
        assert budget.max_states is None

    def test_default_budget_matches_legacy_explorer(self):
        assert DEFAULT_BUDGET.max_states == 200_000
        assert DEFAULT_BUDGET.max_transitions is None
        assert DEFAULT_BUDGET.deadline_seconds is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_states": 0},
            {"max_states": -1},
            {"max_transitions": 0},
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -5.0},
        ],
    )
    def test_rejects_nonpositive_limits(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)


class TestBudgetExhausted:
    def test_subclasses_exploration_budget(self):
        # Existing `except ExplorationBudget` handlers (the CLI's
        # exit-code-2 path) must keep catching engine exhaustion.
        assert issubclass(BudgetExhausted, ExplorationBudget)

    def test_message_reports_progress(self):
        error = BudgetExhausted(
            resource="states",
            limit=50,
            states=50,
            transitions=123,
            elapsed_seconds=0.25,
        )
        message = str(error)
        assert "50 states" in message
        assert "123 transitions" in message
        assert error.states == 50
        assert error.transitions == 123

    def test_message_includes_checkpoint_path(self):
        error = BudgetExhausted(
            resource="deadline",
            limit=2.0,
            states=10,
            transitions=20,
            elapsed_seconds=2.1,
            checkpoint="/tmp/engine-abc.ckpt",
        )
        assert "checkpoint: /tmp/engine-abc.ckpt" in str(error)

    def test_message_includes_resume_command(self):
        error = BudgetExhausted(
            resource="states",
            limit=50,
            states=50,
            transitions=123,
            elapsed_seconds=0.25,
            checkpoint="/tmp/ckpt/engine-abc.ckpt",
            resume_command="--resume /tmp/ckpt",
        )
        assert error.resume_command == "--resume /tmp/ckpt"
        assert "resume: --resume /tmp/ckpt" in str(error)

    def test_summary_and_to_json_protocol(self):
        error = BudgetExhausted(
            resource="states",
            limit=50,
            states=50,
            transitions=123,
            elapsed_seconds=0.25,
            checkpoint="/tmp/ckpt/engine-abc.ckpt",
            resume_command="--resume /tmp/ckpt",
        )
        assert error.summary() == str(error)
        payload = error.to_json()
        assert payload["error"] == "budget_exhausted"
        assert payload["resource"] == "states"
        assert payload["checkpoint"] == "/tmp/ckpt/engine-abc.ckpt"
        assert payload["resume_command"] == "--resume /tmp/ckpt"

    def test_engine_attaches_checkpoint_and_resume_command(self, tmp_path):
        # The actionable exit-2 contract: exhaustion *after a checkpoint
        # write* must say where the snapshot is and how to continue.
        from repro.analysis.view import DeterministicSystemView
        from repro.engine import Budget, ExplorationEngine
        from repro.protocols import delegation_consensus_system

        system = delegation_consensus_system(3, resilience=1)
        view = DeterministicSystemView(system)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        engine = ExplorationEngine(
            workers=1,
            budget=Budget(max_states=50),
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(BudgetExhausted) as excinfo:
            engine.explore(view, root)
        error = excinfo.value
        assert error.checkpoint is not None
        assert str(error.checkpoint).startswith(str(tmp_path))
        assert error.resume_command is not None
        assert f"--resume {tmp_path}" in error.resume_command
        assert "resume=True" in error.resume_command

    def test_no_checkpoint_no_resume_command(self):
        from repro.analysis.view import DeterministicSystemView
        from repro.engine import Budget, ExplorationEngine
        from repro.protocols import delegation_consensus_system

        system = delegation_consensus_system(3, resilience=1)
        view = DeterministicSystemView(system)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        engine = ExplorationEngine(workers=1, budget=Budget(max_states=50))
        with pytest.raises(BudgetExhausted) as excinfo:
            engine.explore(view, root)
        assert excinfo.value.checkpoint is None
        assert excinfo.value.resume_command is None


class TestDeadline:
    def test_disabled_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.enabled
        assert not deadline.expired()
        deadline.check()  # never raises

    def test_expired_after_elapsed(self):
        deadline = Deadline(0.001, already_elapsed=10.0)
        assert deadline.enabled
        assert deadline.expired()
        with pytest.raises(BudgetExhausted) as info:
            deadline.check(states=7, transitions=9)
        assert info.value.resource == "deadline"
        assert info.value.states == 7

    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 0
