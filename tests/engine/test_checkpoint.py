"""Unit tests for checkpoint persistence."""

import pickle

import pytest

from repro.engine import (
    Checkpoint,
    CheckpointError,
    checkpoint_path,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    save_checkpoint,
    fingerprint,
)


def _sample(root="root"):
    digest = fingerprint(root)
    return Checkpoint(
        root=root,
        root_digest=digest,
        order=[root, "a", "b"],
        edges={root: [("t", "act", "a")]},
        frontier=["a", "b"],
        transitions=1,
        elapsed_seconds=0.5,
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        checkpoint = _sample()
        path = save_checkpoint(tmp_path, checkpoint)
        assert path == checkpoint_path(tmp_path, checkpoint.root_digest)
        loaded = load_checkpoint(path)
        assert loaded.order == checkpoint.order
        assert loaded.edges == checkpoint.edges
        assert loaded.frontier == checkpoint.frontier
        assert loaded.transitions == checkpoint.transitions
        assert loaded.root_digest == checkpoint.root_digest

    def test_find_by_root_digest(self, tmp_path):
        checkpoint = _sample()
        save_checkpoint(tmp_path, checkpoint)
        assert find_checkpoint(tmp_path, checkpoint.root_digest) is not None
        assert find_checkpoint(tmp_path, fingerprint("other")) is None

    def test_discard(self, tmp_path):
        checkpoint = _sample()
        save_checkpoint(tmp_path, checkpoint)
        discard_checkpoint(tmp_path, checkpoint.root_digest)
        assert find_checkpoint(tmp_path, checkpoint.root_digest) is None
        # Discarding a missing checkpoint is a no-op.
        discard_checkpoint(tmp_path, checkpoint.root_digest)

    def test_no_stray_tmp_files(self, tmp_path):
        save_checkpoint(tmp_path, _sample())
        names = [p.name for p in tmp_path.iterdir()]
        assert all(name.endswith(".ckpt") for name in names)


class TestValidation:
    def test_rejects_foreign_pickle(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_rejects_version_mismatch(self, tmp_path):
        checkpoint = _sample()
        path = save_checkpoint(tmp_path, checkpoint)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 999
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")
