"""Unit tests for checkpoint persistence."""

import dataclasses
import pickle

import pytest

from repro.engine.checkpoint import CHECKPOINT_FORMAT
from repro.engine import (
    Checkpoint,
    CheckpointError,
    checkpoint_path,
    digest_of_packed,
    discard_checkpoint,
    find_checkpoint,
    load_checkpoint,
    save_checkpoint,
    fingerprint,
)


class Opaque:
    """Hashable, picklable, but codec-hostile (repr-only encoding)."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Opaque({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.value == self.value

    def __hash__(self):
        return hash(("Opaque", self.value))


@dataclasses.dataclass(frozen=True)
class Cell:
    tag: str
    level: int


def _sample(root="root"):
    digest = fingerprint(root)
    return Checkpoint(
        root=root,
        root_digest=digest,
        order=[root, "a", "b"],
        edges={root: [("t", "act", "a")]},
        frontier=["a", "b"],
        transitions=1,
        elapsed_seconds=0.5,
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        checkpoint = _sample()
        path = save_checkpoint(tmp_path, checkpoint)
        assert path == checkpoint_path(tmp_path, checkpoint.root_digest)
        loaded = load_checkpoint(path)
        assert loaded.order == checkpoint.order
        assert loaded.edges == checkpoint.edges
        assert loaded.frontier == checkpoint.frontier
        assert loaded.transitions == checkpoint.transitions
        assert loaded.root_digest == checkpoint.root_digest

    def test_find_by_root_digest(self, tmp_path):
        checkpoint = _sample()
        save_checkpoint(tmp_path, checkpoint)
        assert find_checkpoint(tmp_path, checkpoint.root_digest) is not None
        assert find_checkpoint(tmp_path, fingerprint("other")) is None

    def test_discard(self, tmp_path):
        checkpoint = _sample()
        save_checkpoint(tmp_path, checkpoint)
        discard_checkpoint(tmp_path, checkpoint.root_digest)
        assert find_checkpoint(tmp_path, checkpoint.root_digest) is None
        # Discarding a missing checkpoint is a no-op.
        discard_checkpoint(tmp_path, checkpoint.root_digest)

    def test_no_stray_tmp_files(self, tmp_path):
        save_checkpoint(tmp_path, _sample())
        names = [p.name for p in tmp_path.iterdir()]
        assert all(name.endswith(".ckpt") for name in names)


class TestFormatV2:
    def test_saves_packed_mode_with_digest_parity(self, tmp_path):
        checkpoint = _sample()
        payload = pickle.loads(save_checkpoint(tmp_path, checkpoint).read_bytes())
        assert payload["version"] == 2
        assert payload["mode"] == "packed"
        # Resume's fast path: the visited digest set is rebuilt from the
        # packed bytes alone, so blake2b(packed) must equal fingerprint.
        assert [digest_of_packed(packed) for packed in payload["packed_order"]] == [
            fingerprint(state) for state in checkpoint.order
        ]

    def test_load_populates_packed_order(self, tmp_path):
        path = save_checkpoint(tmp_path, _sample())
        loaded = load_checkpoint(path)
        assert loaded.packed_order is not None
        assert len(loaded.packed_order) == len(loaded.order)

    def test_states_stored_once_not_per_edge(self, tmp_path):
        # Ten edges all pointing at one successor: the v1 format pickled
        # the successor ten times; v2 stores indices into packed_order.
        hub = Cell("hub", 0)
        spokes = [Cell("spoke", index) for index in range(10)]
        checkpoint = Checkpoint(
            root=hub,
            root_digest=fingerprint(hub),
            order=[hub, *spokes],
            edges={spoke: [("t", "act", hub)] for spoke in spokes},
            frontier=[hub],
            transitions=10,
            elapsed_seconds=0.1,
        )
        payload = pickle.loads(save_checkpoint(tmp_path, checkpoint).read_bytes())
        assert payload["mode"] == "packed"
        hub_index = 0
        assert all(rows == [(0, 0, hub_index)] for _, rows in payload["edges"])
        loaded = load_checkpoint(checkpoint_path(tmp_path, checkpoint.root_digest))
        assert loaded.edges == checkpoint.edges
        # Decoded successors are interned: every edge row references the
        # same hub object, not ten copies.
        decoded_hubs = {id(rows[0][2]) for rows in loaded.edges.values()}
        assert len(decoded_hubs) == 1

    def test_equal_but_digest_distinct_states_keep_their_indices(self, tmp_path):
        """Regression: ``index_of`` keyed by state equality collapsed
        digest-distinct nodes like ``(1,)``/``(True,)`` (they compare ==)
        to one order index, so saved edges and frontier pointed at the
        wrong node after resume (REVIEW: checkpoint.py _pack_payload)."""
        root = ("root",)
        one, true = (1, "x"), (True, "x")
        assert one == true and fingerprint(one) != fingerprint(true)
        checkpoint = Checkpoint(
            root=root,
            root_digest=fingerprint(root),
            order=[root, true, one],
            edges={root: [("t", "act", one)]},
            frontier=[one, true],
            transitions=1,
            elapsed_seconds=0.0,
        )
        payload = pickle.loads(save_checkpoint(tmp_path, checkpoint).read_bytes())
        assert payload["mode"] == "packed"
        # order[1] is (True, "x"), order[2] is (1, "x"): the edge must
        # reference index 2 and the frontier [2, 1] — not first-==-wins.
        assert payload["edges"] == [(0, [(0, 0, 2)])]
        assert payload["frontier"] == [2, 1]
        loaded = load_checkpoint(checkpoint_path(tmp_path, checkpoint.root_digest))
        assert [digest_of_packed(packed) for packed in loaded.packed_order] == [
            fingerprint(state) for state in checkpoint.order
        ]
        assert loaded.frontier[0][0] is not True  # decoded (1, "x"), not (True, "x")
        assert loaded.frontier[1][0] is True
        assert loaded.edges[root][0][2][0] is not True

    def test_dataclass_states_roundtrip_through_registry(self, tmp_path):
        root = Cell("root", 0)
        child = Cell("child", 1)
        checkpoint = Checkpoint(
            root=root,
            root_digest=fingerprint(root),
            order=[root, child],
            edges={root: [("t", "act", child)]},
            frontier=[child],
            transitions=1,
            elapsed_seconds=0.0,
        )
        loaded = load_checkpoint(save_checkpoint(tmp_path, checkpoint))
        assert loaded.order == checkpoint.order
        assert loaded.edges == checkpoint.edges
        assert loaded.frontier == checkpoint.frontier

    def test_codec_hostile_state_falls_back_to_pickle_mode(self, tmp_path):
        root = Opaque("root")
        child = Opaque("child")
        checkpoint = Checkpoint(
            root=root,
            root_digest=fingerprint(root),
            order=[root, child],
            edges={root: [("t", "act", child)]},
            frontier=[child],
            transitions=1,
            elapsed_seconds=0.0,
        )
        path = save_checkpoint(tmp_path, checkpoint)
        payload = pickle.loads(path.read_bytes())
        assert payload["version"] == 2
        assert payload["mode"] == "pickle"
        loaded = load_checkpoint(path)
        assert loaded.order == checkpoint.order
        assert loaded.edges == checkpoint.edges
        assert loaded.packed_order is None

    def test_v1_payload_still_loads(self, tmp_path):
        # Resume-across-the-format-bump: a file written by a pre-v2
        # engine (whole Checkpoint object, version 1) must keep loading.
        checkpoint = _sample()
        path = checkpoint_path(tmp_path, checkpoint.root_digest)
        path.write_bytes(
            pickle.dumps(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": 1,
                    "checkpoint": checkpoint,
                }
            )
        )
        loaded = load_checkpoint(path)
        assert loaded.order == checkpoint.order
        assert loaded.edges == checkpoint.edges
        assert loaded.packed_order is None


class TestValidation:
    def test_rejects_foreign_pickle(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_rejects_version_mismatch(self, tmp_path):
        checkpoint = _sample()
        path = save_checkpoint(tmp_path, checkpoint)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 999
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.ckpt")
