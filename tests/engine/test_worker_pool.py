"""Unit tests for WorkerPool recovery bookkeeping and dispatch sizing.

These drive the pool's internal machinery directly with stub handles —
no forking — to pin down two REVIEW regressions:

* crash blame under reply batching: the chunk being expanded at death
  (identified by the per-chunk acks) takes the retry bump, not the
  first un-replied chunk in flight;
* send-time chunk re-sizing: a digest-only chunk built against a warm
  worker store must be re-split when a respawn turns every entry into a
  bootstrap pair, keeping messages under the ``CHUNK_STATES`` bound.

The end-to-end behavior (real SIGKILLs, poison plans) is covered by
``test_chaos.py``; these tests exist because batching makes some blame
orderings hard to provoke deterministically from outside.
"""

from collections import deque

from repro.engine.parallel import ACK, CHUNK_STATES, QUARANTINED, WorkerPool, _Chunk


class _StubConn:
    """A dead worker's pipe end: replays pre-crash messages, then EOF."""

    def __init__(self, buffered=()):
        self.buffered = deque(buffered)

    def poll(self, *args):
        return bool(self.buffered)

    def recv(self):
        if not self.buffered:
            raise EOFError
        return self.buffered.popleft()

    def close(self):
        pass


class _StubProcess:
    def join(self, timeout=None):
        pass

    def is_alive(self):
        return False


class _StubHandle:
    def __init__(self, buffered=()):
        self.conn = _StubConn(buffered)
        self.process = _StubProcess()
        self.sent = []

    def send(self, message):
        self.sent.append(message)


def _pool(workers=2, **kwargs):
    pool = WorkerPool(
        workers, view=None, prune=None, digest_size=16, ship_states=False, **kwargs
    )
    pool._handles = [_StubHandle() for _ in range(workers)]
    pool._alive = [True] * workers
    # Exhaust restarts so a loss reassigns to survivors instead of forking.
    pool._restarts = [pool.max_worker_restarts] * workers
    pool._started = [0] * workers
    pool.seen = [set() for _ in range(workers)]
    pool.actions = [[] for _ in range(workers)]
    pool._pending = [deque() for _ in range(workers)]
    pool._inflight = [deque() for _ in range(workers)]
    pool._outstanding = [0] * workers
    pool._packed_of = {}
    pool._phase = {}
    pool._producers = set()
    pool._round = 1
    pool._round_span = None
    return pool


def _singleton(position):
    state = ("state", position)
    return _Chunk([position], [(state, position.to_bytes(16, "big"))])


class TestCrashBlame:
    def test_blame_lands_on_chunk_being_expanded_not_first_inflight(self):
        """Regression: with batched replies the worker may die expanding
        the 2nd..Nth in-flight chunk, but blame always hit the first
        (REVIEW: parallel.py _worker_lost)."""
        pool = _pool()
        chunks = [_singleton(0), _singleton(1), _singleton(2)]
        pool._inflight[0].extend(chunks)
        pool._outstanding[0] = 3
        pool._results = [None] * 3
        # Chunk 0 expanded into an unsent batch, chunk 1 mid-expansion,
        # chunk 2 unread: two acks reached the coordinator.
        pool._started[0] = 2
        pool._worker_lost(0)
        assert chunks[1].retries == 1  # blamed
        assert chunks[0].retries == 0 and chunks[2].retries == 0
        requeued = list(pool._pending[1])
        assert set(map(id, requeued)) == set(map(id, chunks))
        assert all(chunk.ship_all for chunk in requeued)
        assert not pool.quarantined

    def test_innocent_batchmates_not_quarantined(self):
        """A singleton at the quarantine threshold survives when the ack
        cursor says a different chunk was being expanded."""
        pool = _pool()
        innocent, poison = _singleton(0), _singleton(1)
        innocent.retries = pool.max_state_retries - 1
        pool._inflight[0].extend([innocent, poison])
        pool._outstanding[0] = 2
        pool._results = [None] * 2
        pool._started[0] = 2  # both acked: the *second* is in progress
        pool._worker_lost(0)
        assert innocent.retries == pool.max_state_retries - 1
        assert poison.retries == 1
        assert not pool.quarantined

    def test_blamed_singleton_quarantined_at_threshold(self):
        pool = _pool()
        victim = _singleton(0)
        victim.retries = pool.max_state_retries - 1
        trailing = _singleton(1)
        pool._inflight[0].extend([victim, trailing])
        pool._outstanding[0] = 2
        pool._results = [None] * 2
        pool._started[0] = 1  # victim in progress, trailing unread
        pool._worker_lost(0)
        assert pool.quarantined == [victim.items[0]]
        assert pool._results[0] == QUARANTINED
        assert trailing.retries == 0
        assert list(pool._pending[1]) == [trailing]

    def test_no_ack_means_no_blame(self):
        """A worker that died before expanding anything (no ack) bumps
        nothing: every in-flight chunk re-dispatches unbumped."""
        pool = _pool()
        chunks = [_singleton(0), _singleton(1)]
        pool._inflight[0].extend(chunks)
        pool._outstanding[0] = 2
        pool._results = [None] * 2
        pool._worker_lost(0)
        assert all(chunk.retries == 0 for chunk in chunks)
        assert not pool.quarantined
        assert len(pool._pending[1]) == 2

    def test_buffered_acks_salvaged_before_blame(self):
        """Acks the worker shipped before dying are drained from the pipe
        and advance the blame cursor."""
        pool = _pool()
        pool._handles[0] = _StubHandle(buffered=[ACK, ACK])
        chunks = [_singleton(0), _singleton(1)]
        pool._inflight[0].extend(chunks)
        pool._outstanding[0] = 2
        pool._results = [None] * 2
        pool._worker_lost(0)
        assert chunks[0].retries == 0
        assert chunks[1].retries == 1

    def test_blamed_multistate_chunk_splits_into_singletons(self):
        pool = _pool()
        states = [(("state", index), index.to_bytes(16, "big")) for index in range(3)]
        multi = _Chunk([0, 1, 2], states)
        pool._inflight[0].append(multi)
        pool._outstanding[0] = 1
        pool._results = [None] * 3
        pool._started[0] = 1
        pool._worker_lost(0)
        requeued = list(pool._pending[1])
        assert len(requeued) == 3
        assert all(len(chunk.items) == 1 for chunk in requeued)
        assert all(chunk.retries == 0 for chunk in requeued)  # fresh counts
        assert all(chunk.ship_all for chunk in requeued)


class TestSendTimeResplit:
    def test_stateful_chunk_resplit_to_chunk_states_bound(self):
        """Regression: a digest-only chunk sized to CHUNK_DIGESTS at build
        time shipped as one oversized bootstrap message after a respawn
        cleared the worker's store (REVIEW: parallel.py _encode)."""
        pool = _pool(workers=1)
        total = CHUNK_STATES + 44
        positions = list(range(total))
        items = [(("state", index), index.to_bytes(16, "big")) for index in positions]
        pool._pending[0].append(_Chunk(positions, items))
        # seen[0] is empty — as after a respawn — so every entry ships
        # as a (digest, packed) bootstrap pair.
        pool._pump(0)
        handle = pool._handles[0]
        # Stateful chunks go one at a time to an idle worker: the head
        # piece shipped, the tail piece waits, both within the bound.
        assert len(handle.sent) == 1
        entries, ship_all = handle.sent[0]
        assert len(entries) == CHUNK_STATES
        assert not ship_all
        assert all(type(entry) is tuple for entry in entries)  # bootstrap pairs
        assert [len(chunk.items) for chunk in pool._pending[0]] == [44]
        head = pool._inflight[0][0]
        assert head.positions == positions[:CHUNK_STATES]

    def test_digest_only_chunk_not_resplit(self):
        pool = _pool(workers=1)
        total = CHUNK_STATES + 44
        positions = list(range(total))
        items = [(("state", index), index.to_bytes(16, "big")) for index in positions]
        pool.seen[0].update(digest for _, digest in items)
        pool._pending[0].append(_Chunk(positions, items))
        pool._pump(0)
        handle = pool._handles[0]
        assert len(handle.sent) == 1
        entries, _ = handle.sent[0]
        assert len(entries) == total
        assert all(type(entry) is bytes for entry in entries)

    def test_resplit_preserves_retry_count_and_ship_all(self):
        pool = _pool(workers=1)
        total = 2 * CHUNK_STATES + 1
        positions = list(range(total))
        items = [(("state", index), index.to_bytes(16, "big")) for index in positions]
        pool._pending[0].append(_Chunk(positions, items, retries=2, ship_all=True))
        pool._pump(0)
        pieces = [pool._inflight[0][0], *pool._pending[0]]
        assert [len(piece.items) for piece in pieces] == [CHUNK_STATES, CHUNK_STATES, 1]
        assert all(piece.retries == 2 and piece.ship_all for piece in pieces)
        assert [position for piece in pieces for position in piece.positions] == positions
