"""End-to-end tests of the ExplorationEngine facade.

The load-bearing guarantees under test:

* at any worker count, a completed run produces a StateGraph identical
  to the sequential explorer's — same states *in the same discovery
  order*, same edges;
* budget exhaustion raises BudgetExhausted with the exact legacy
  semantics (`len(states) == max_states` at raise time) plus progress;
* an interrupted checkpointed run resumes to the same completed graph
  (state set and edges) and retires its checkpoint.
"""

import os

import pytest

from repro.analysis import DeterministicSystemView, explore
from repro.engine import (
    Budget,
    BudgetExhausted,
    ExplorationEngine,
    FingerprintIndex,
    find_checkpoint,
    fingerprint,
)
from repro.obs import MetricsRegistry
from repro.protocols import delegation_consensus_system, tob_delegation_system


@pytest.fixture(scope="module")
def instance():
    system = delegation_consensus_system(3, resilience=1)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    return view, root


@pytest.fixture(scope="module")
def sequential_graph(instance):
    view, root = instance
    return explore(view, root, budget=Budget(max_states=50_000))


class TestSequentialEquivalence:
    def test_wrapper_and_engine_agree(self, instance, sequential_graph):
        view, root = instance
        graph = ExplorationEngine(workers=1, budget=Budget()).explore(view, root)
        assert list(graph.states) == list(sequential_graph.states)
        assert graph.edges == sequential_graph.edges

    def test_forced_fingerprints_agree(self, instance, sequential_graph):
        view, root = instance
        engine = ExplorationEngine(workers=1, budget=Budget(), fingerprints=True)
        graph = engine.explore(view, root)
        assert list(graph.states) == list(sequential_graph.states)
        assert graph.edges == sequential_graph.edges

    def test_audit_mode_clean_run(self, instance, sequential_graph):
        view, root = instance
        engine = ExplorationEngine(workers=1, budget=Budget(), audit=True)
        graph = engine.explore(view, root)
        assert graph.states == sequential_graph.states


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_graph_including_order(
        self, instance, sequential_graph, workers
    ):
        view, root = instance
        graph = ExplorationEngine(workers=workers, budget=Budget()).explore(view, root)
        assert list(graph.states) == list(sequential_graph.states)
        assert graph.edges == sequential_graph.edges
        assert graph.edge_count() == sequential_graph.edge_count()

    def test_prune_respected_in_parallel(self, instance):
        view, root = instance

        def decided(state):
            return bool(view.decisions(state))

        sequential = explore(view, root, budget=Budget(max_states=50_000), prune=decided)
        parallel = ExplorationEngine(workers=2, budget=Budget()).explore(
            view, root, prune=decided
        )
        assert list(parallel.states) == list(sequential.states)
        assert parallel.edges == sequential.edges

    def test_worker_metrics_published(self, instance):
        view, root = instance
        metrics = MetricsRegistry()
        ExplorationEngine(workers=2, budget=Budget(), metrics=metrics).explore(
            view, root
        )
        counters = metrics.snapshot()["counters"]
        assert counters["engine.runs"] == 1
        assert counters["explore.states"] == counters["engine.expanded"]
        per_worker = [
            value
            for name, value in counters.items()
            if name.startswith("engine.worker") and name.endswith(".expanded")
        ]
        assert sum(per_worker) == counters["engine.expanded"]


class TestBudgets:
    def test_states_budget_matches_legacy_count(self, instance):
        view, root = instance
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(workers=1, budget=Budget(max_states=50)).explore(
                view, root
            )
        assert info.value.states == 50  # the CLI prints exactly this number

    def test_transitions_budget(self, instance):
        view, root = instance
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(
                workers=1, budget=Budget(max_transitions=100)
            ).explore(view, root)
        assert info.value.resource == "transitions"
        assert info.value.transitions <= 100

    def test_deadline_budget(self, instance):
        view, root = instance
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(
                workers=1, budget=Budget(deadline_seconds=1e-9)
            ).explore(view, root)
        assert info.value.resource == "deadline"

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(workers=0)


class TestCheckpointResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupt_then_resume_reaches_full_graph(
        self, instance, sequential_graph, tmp_path, workers
    ):
        view, root = instance
        directory = tmp_path / f"ckpt-{workers}"
        with pytest.raises(BudgetExhausted) as info:
            ExplorationEngine(
                workers=workers,
                budget=Budget(max_states=60),
                checkpoint_dir=directory,
            ).explore(view, root)
        assert info.value.checkpoint is not None
        assert find_checkpoint(directory, fingerprint(root)) is not None
        resumed = ExplorationEngine(
            workers=workers, budget=Budget(), checkpoint_dir=directory, resume=True
        ).explore(view, root)
        assert set(resumed.states) == set(sequential_graph.states)
        assert resumed.edges == sequential_graph.edges
        # The completed exploration retires its checkpoint.
        assert find_checkpoint(directory, fingerprint(root)) is None

    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_across_format_bump(
        self, instance, sequential_graph, tmp_path, workers
    ):
        """A v1 (pre-packed) checkpoint file still resumes to the full graph."""
        import pickle

        from repro.engine.checkpoint import (
            CHECKPOINT_FORMAT,
            checkpoint_path,
            load_checkpoint,
        )

        view, root = instance
        with pytest.raises(BudgetExhausted):
            ExplorationEngine(
                workers=workers,
                budget=Budget(max_states=60),
                checkpoint_dir=tmp_path,
            ).explore(view, root)
        # Rewrite the freshly written v2 file as a v1 payload (whole
        # Checkpoint object, version 1) — the format old engines wrote.
        path = checkpoint_path(tmp_path, fingerprint(root))
        checkpoint = load_checkpoint(path)
        checkpoint.packed_order = None
        path.write_bytes(
            pickle.dumps(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": 1,
                    "checkpoint": checkpoint,
                }
            )
        )
        resumed = ExplorationEngine(
            workers=workers, budget=Budget(), checkpoint_dir=tmp_path, resume=True
        ).explore(view, root)
        assert set(resumed.states) == set(sequential_graph.states)
        assert resumed.edges == sequential_graph.edges

    def test_resume_without_checkpoint_starts_fresh(
        self, instance, sequential_graph, tmp_path
    ):
        view, root = instance
        graph = ExplorationEngine(
            workers=1, budget=Budget(), checkpoint_dir=tmp_path, resume=True
        ).explore(view, root)
        assert list(graph.states) == list(sequential_graph.states)

    def test_periodic_checkpoints_written(self, instance, tmp_path):
        view, root = instance
        metrics = MetricsRegistry()
        ExplorationEngine(
            workers=1,
            budget=Budget(),
            checkpoint_dir=tmp_path,
            flush_interval=25,
            metrics=metrics,
        ).explore(view, root)
        counters = metrics.snapshot()["counters"]
        assert counters["engine.checkpoints_written"] >= 1
        # ... and still retired at the end.
        assert find_checkpoint(tmp_path, fingerprint(root)) is None

    def test_resume_metrics(self, instance, tmp_path):
        view, root = instance
        with pytest.raises(BudgetExhausted):
            ExplorationEngine(
                workers=1, budget=Budget(max_states=60), checkpoint_dir=tmp_path
            ).explore(view, root)
        metrics = MetricsRegistry()
        ExplorationEngine(
            workers=1,
            budget=Budget(),
            checkpoint_dir=tmp_path,
            resume=True,
            metrics=metrics,
        ).explore(view, root)
        assert metrics.snapshot()["counters"]["engine.resumes"] == 1


class TestMultiRootCheckpointDirectory:
    def test_only_the_interrupted_root_resumes(self, tmp_path):
        system = tob_delegation_system(2, resilience=0)
        view = DeterministicSystemView(system)
        root_a = system.initialization({0: 0, 1: 1}).final_state
        root_b = system.initialization({0: 1, 1: 0}).final_state
        with pytest.raises(BudgetExhausted):
            ExplorationEngine(
                workers=1, budget=Budget(max_states=40), checkpoint_dir=tmp_path
            ).explore(view, root_a)
        assert find_checkpoint(tmp_path, fingerprint(root_a)) is not None
        assert find_checkpoint(tmp_path, fingerprint(root_b)) is None
        # Exploring the other root in the same directory starts fresh and
        # does not disturb root_a's snapshot.
        ExplorationEngine(
            workers=1, budget=Budget(), checkpoint_dir=tmp_path, resume=True
        ).explore(view, root_b)
        assert find_checkpoint(tmp_path, fingerprint(root_a)) is not None
