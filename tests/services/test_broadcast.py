"""Unit tests for totally ordered broadcast (Section 5.2, Figs. 5-7)."""

from repro.ioa import Action, RoundRobinScheduler, Task, fail, invoke, run
from repro.services import (
    DELIVERY_TASK,
    TotallyOrderedBroadcast,
    bcast,
    delivered_sequence,
    is_prefix,
    rcv,
)


def make_tob(endpoints=(0, 1, 2), resilience=1):
    return TotallyOrderedBroadcast(
        service_id="tob", endpoints=endpoints, messages=("a", "b"), resilience=resilience
    )


def perform(service, endpoint):
    return Task(service.name, ("perform", endpoint))


def deliver(service):
    return Task(service.name, ("compute", DELIVERY_TASK))


class TestOrdering:
    def test_bcast_appends_to_msgs(self):
        tob = make_tob()
        state = tob.apply_input(tob.some_start_state(), invoke("tob", 1, bcast("a")))
        state = tob.enabled(state, perform(tob, 1))[0].post
        assert state.val == (("a", 1),)

    def test_delivery_fans_out_to_all_endpoints(self):
        tob = make_tob()
        state = tob.apply_input(tob.some_start_state(), invoke("tob", 0, bcast("b")))
        state = tob.enabled(state, perform(tob, 0))[0].post
        state = tob.enabled(state, deliver(tob))[0].post
        assert state.val == ()
        for endpoint in tob.endpoints:
            assert tob.resp_buffer(state, endpoint) == (rcv("b", 0),)

    def test_total_order_is_perform_order(self):
        tob = make_tob()
        state = tob.some_start_state()
        state = tob.apply_input(state, invoke("tob", 0, bcast("a")))
        state = tob.apply_input(state, invoke("tob", 1, bcast("b")))
        state = tob.enabled(state, perform(tob, 1))[0].post
        state = tob.enabled(state, perform(tob, 0))[0].post
        assert state.val == (("b", 1), ("a", 0))

    def test_empty_delivery_is_noop(self):
        tob = make_tob()
        state = tob.some_start_state()
        (transition,) = tob.enabled(state, deliver(tob))
        assert transition.post == state

    def test_one_invocation_many_responses(self):
        # The property that no atomic object can express (Section 5.2).
        tob = make_tob(endpoints=(0, 1, 2, 3))
        state = tob.apply_input(tob.some_start_state(), invoke("tob", 2, bcast("a")))
        state = tob.enabled(state, perform(tob, 2))[0].post
        state = tob.enabled(state, deliver(tob))[0].post
        delivered = sum(len(tob.resp_buffer(state, e)) for e in tob.endpoints)
        assert delivered == 4


class TestEndToEnd:
    def test_agreement_on_delivery_order(self):
        """All endpoints receive the same delivery sequence (prefix-wise)."""
        from repro.system import DistributedSystem, ScriptProcess

        tob = make_tob()
        processes = [
            ScriptProcess(0, [invoke("tob", 0, bcast("a"))], connections=["tob"]),
            ScriptProcess(1, [invoke("tob", 1, bcast("b"))], connections=["tob"]),
            ScriptProcess(2, [], connections=["tob"]),
        ]
        system = DistributedSystem(processes, services=[tob])
        execution = run(system, RoundRobinScheduler(), max_steps=100)
        sequences = [
            delivered_sequence(execution.actions, endpoint, "tob")
            for endpoint in (0, 1, 2)
        ]
        # Everyone saw both messages, in the same order.
        assert all(len(seq) == 2 for seq in sequences)
        assert len(set(sequences)) == 1

    def test_is_prefix_helper(self):
        assert is_prefix((), (1, 2))
        assert is_prefix((1,), (1, 2))
        assert not is_prefix((2,), (1, 2))
        assert not is_prefix((1, 2, 3), (1, 2))


class TestResilience:
    def test_delivery_survives_up_to_f_failures(self):
        tob = make_tob(resilience=1)
        state = tob.apply_input(tob.some_start_state(), invoke("tob", 0, bcast("a")))
        state = tob.enabled(state, perform(tob, 0))[0].post
        state = tob.apply_input(state, fail(0))
        transitions = tob.enabled(state, deliver(tob))
        kinds = {t.action.kind for t in transitions}
        assert kinds == {"compute"}  # no dummy yet: only 1 <= f failures

    def test_delivery_may_stop_beyond_f_failures(self):
        tob = make_tob(resilience=1)
        state = tob.some_start_state()
        state = tob.apply_input(state, fail(0))
        state = tob.apply_input(state, fail(1))
        transitions = tob.enabled(state, deliver(tob))
        assert any(t.action.kind == "dummy_compute" for t in transitions)
