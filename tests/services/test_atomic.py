"""Unit tests for the canonical atomic object (Fig. 1)."""

import pytest

from repro.ioa import Action, Task, fail, invoke
from repro.services import CanonicalAtomicObject, wait_free_atomic_object
from repro.types import binary_consensus_type, read_write_type


def make_object(resilience=1, endpoints=(0, 1, 2)):
    return CanonicalAtomicObject(
        sequential_type=binary_consensus_type(),
        endpoints=endpoints,
        resilience=resilience,
        service_id="cons",
    )


def perform_task(obj, endpoint):
    return Task(obj.name, ("perform", endpoint))


def output_task(obj, endpoint):
    return Task(obj.name, ("output", endpoint))


class TestConstruction:
    def test_requires_endpoints(self):
        with pytest.raises(ValueError):
            make_object(endpoints=())

    def test_rejects_duplicate_endpoints(self):
        with pytest.raises(ValueError):
            make_object(endpoints=(0, 0))

    def test_rejects_negative_resilience(self):
        with pytest.raises(ValueError):
            make_object(resilience=-1)

    def test_wait_free_helper(self):
        obj = wait_free_atomic_object(binary_consensus_type(), (0, 1), "c")
        assert obj.resilience == 1
        assert obj.is_wait_free

    def test_wait_free_predicate(self):
        assert not make_object(resilience=1).is_wait_free
        assert make_object(resilience=2).is_wait_free
        assert make_object(resilience=5).is_wait_free


class TestSignature:
    def test_invoke_input_for_endpoints_only(self):
        obj = make_object()
        assert obj.is_input(invoke("cons", 1, ("init", 0)))
        assert not obj.is_input(invoke("cons", 9, ("init", 0)))
        assert not obj.is_input(invoke("other", 1, ("init", 0)))
        assert not obj.is_input(invoke("cons", 1, ("bogus",)))

    def test_fail_input_for_endpoints_only(self):
        obj = make_object()
        assert obj.is_input(fail(2))
        assert not obj.is_input(fail(9))

    def test_respond_output(self):
        obj = make_object()
        assert obj.is_output(Action("respond", ("cons", 0, ("decide", 1))))
        assert not obj.is_output(Action("respond", ("cons", 0, ("bogus",))))

    def test_internal_actions(self):
        obj = make_object()
        assert obj.is_internal(Action("perform", ("cons", 0)))
        assert obj.is_internal(Action("dummy_perform", ("cons", 0)))
        assert obj.is_internal(Action("dummy_output", ("cons", 0)))
        assert not obj.is_internal(Action("compute", ("cons", "g")))


class TestTasks:
    def test_two_tasks_per_endpoint(self):
        obj = make_object(endpoints=(0, 1))
        names = {task.name for task in obj.tasks()}
        assert names == {
            ("perform", 0),
            ("perform", 1),
            ("output", 0),
            ("output", 1),
        }


class TestOperation:
    def test_invocation_queues_in_buffer(self):
        obj = make_object()
        state = obj.some_start_state()
        state = obj.apply_input(state, invoke("cons", 1, ("init", 0)))
        assert obj.inv_buffer(state, 1) == (("init", 0),)
        assert obj.inv_buffer(state, 0) == ()

    def test_perform_applies_delta_and_queues_response(self):
        obj = make_object()
        state = obj.apply_input(
            obj.some_start_state(), invoke("cons", 1, ("init", 1))
        )
        (transition,) = obj.enabled(state, perform_task(obj, 1))
        assert transition.action == Action("perform", ("cons", 1))
        post = transition.post
        assert post.val == frozenset({1})
        assert obj.inv_buffer(post, 1) == ()
        assert obj.resp_buffer(post, 1) == (("decide", 1),)

    def test_output_delivers_head_response(self):
        obj = make_object()
        state = obj.apply_input(
            obj.some_start_state(), invoke("cons", 0, ("init", 0))
        )
        state = obj.enabled(state, perform_task(obj, 0))[0].post
        (transition,) = obj.enabled(state, output_task(obj, 0))
        assert transition.action == Action("respond", ("cons", 0, ("decide", 0)))
        assert obj.resp_buffer(transition.post, 0) == ()

    def test_fifo_order_per_endpoint(self):
        obj = make_object()
        state = obj.some_start_state()
        state = obj.apply_input(state, invoke("cons", 0, ("init", 1)))
        state = obj.apply_input(state, invoke("cons", 0, ("init", 0)))
        state = obj.enabled(state, perform_task(obj, 0))[0].post
        state = obj.enabled(state, perform_task(obj, 0))[0].post
        # First-value-wins: both responses decide 1, in order.
        assert obj.resp_buffer(state, 0) == (("decide", 1), ("decide", 1))

    def test_perform_disabled_without_invocation(self):
        obj = make_object()
        assert obj.enabled(obj.some_start_state(), perform_task(obj, 0)) == []

    def test_concurrent_endpoints_interleave(self):
        obj = make_object()
        state = obj.some_start_state()
        state = obj.apply_input(state, invoke("cons", 0, ("init", 0)))
        state = obj.apply_input(state, invoke("cons", 1, ("init", 1)))
        # Either perform order is allowed; the first perform fixes val.
        state01 = obj.enabled(state, perform_task(obj, 0))[0].post
        state01 = obj.enabled(state01, perform_task(obj, 1))[0].post
        assert state01.val == frozenset({0})
        state10 = obj.enabled(state, perform_task(obj, 1))[0].post
        state10 = obj.enabled(state10, perform_task(obj, 0))[0].post
        assert state10.val == frozenset({1})


class TestResilienceSemantics:
    def test_no_dummies_when_failure_free(self):
        obj = make_object()
        state = obj.some_start_state()
        for endpoint in obj.endpoints:
            assert obj.enabled(state, perform_task(obj, endpoint)) == []
            assert obj.enabled(state, output_task(obj, endpoint)) == []

    def test_dummy_enabled_for_failed_endpoint(self):
        obj = make_object()
        state = obj.apply_input(obj.some_start_state(), fail(1))
        actions = [t.action for t in obj.enabled(state, perform_task(obj, 1))]
        assert Action("dummy_perform", ("cons", 1)) in actions
        # Other endpoints remain dummy-free below the resilience bound.
        assert obj.enabled(state, perform_task(obj, 0)) == []

    def test_dummy_enabled_everywhere_beyond_resilience(self):
        obj = make_object(resilience=1)
        state = obj.some_start_state()
        state = obj.apply_input(state, fail(0))
        state = obj.apply_input(state, fail(1))  # |failed| = 2 > f = 1
        for endpoint in obj.endpoints:
            actions = [
                t.action for t in obj.enabled(state, perform_task(obj, endpoint))
            ]
            assert Action("dummy_perform", ("cons", endpoint)) in actions
            actions = [
                t.action for t in obj.enabled(state, output_task(obj, endpoint))
            ]
            assert Action("dummy_output", ("cons", endpoint)) in actions

    def test_dummy_does_not_change_state(self):
        obj = make_object()
        state = obj.apply_input(obj.some_start_state(), fail(1))
        (transition,) = obj.enabled(state, perform_task(obj, 1))
        assert transition.post == state

    def test_real_perform_still_allowed_after_failure(self):
        # Dummies allow but never force silence (Section 2.1.3).
        obj = make_object()
        state = obj.some_start_state()
        state = obj.apply_input(state, invoke("cons", 1, ("init", 1)))
        state = obj.apply_input(state, fail(1))
        actions = [t.action for t in obj.enabled(state, perform_task(obj, 1))]
        assert Action("perform", ("cons", 1)) in actions
        assert Action("dummy_perform", ("cons", 1)) in actions


class TestNondeterministicTypes:
    def test_kset_perform_offers_all_outcomes(self):
        from repro.types import k_set_consensus_type

        obj = CanonicalAtomicObject(
            sequential_type=k_set_consensus_type(2, proposals=(0, 1, 2)),
            endpoints=(0,),
            resilience=0,
            service_id="kset",
        )
        state = obj.some_start_state()
        state = obj.apply_input(state, invoke("kset", 0, ("init", 1)))
        state = obj.enabled(state, perform_task(obj, 0))[0].post
        state = obj.apply_input(state, invoke("kset", 0, ("init", 2)))
        transitions = obj.enabled(state, perform_task(obj, 0))
        # Two remembered values are possible responses.
        responses = {obj.resp_buffer(t.post, 0)[-1] for t in transitions}
        assert responses == {("decide", 1), ("decide", 2)}
