"""Unit tests for the asynchronous network service."""

import pytest

from repro.ioa import RandomScheduler, RoundRobinScheduler, Task, fail, invoke, run
from repro.services.network import (
    AsynchronousNetwork,
    Channel,
    channel_id,
    deliver,
    deliveries_in_trace,
    network_type,
    send,
)
from repro.system import DistributedSystem, ScriptProcess


def make_network(endpoints=(0, 1, 2), resilience=1):
    return AsynchronousNetwork(
        "net", endpoints=endpoints, messages=("a", "b"), resilience=resilience
    )


class TestNetworkSemantics:
    def test_send_queues_delivery_at_target(self):
        net = make_network()
        state = net.apply_input(net.some_start_state(), invoke("net", 0, send(2, "a")))
        state = net.enabled(state, Task(net.name, ("perform", 0)))[0].post
        assert net.resp_buffer(state, 2) == (deliver(0, "a"),)
        assert net.resp_buffer(state, 1) == ()

    def test_fifo_per_sender_receiver_pair(self):
        net = make_network()
        state = net.some_start_state()
        state = net.apply_input(state, invoke("net", 0, send(1, "a")))
        state = net.apply_input(state, invoke("net", 0, send(1, "b")))
        state = net.enabled(state, Task(net.name, ("perform", 0)))[0].post
        state = net.enabled(state, Task(net.name, ("perform", 0)))[0].post
        assert net.resp_buffer(state, 1) == (deliver(0, "a"), deliver(0, "b"))

    def test_cross_sender_races(self):
        # Sends from different endpoints may perform in either order.
        net = make_network()
        state = net.some_start_state()
        state = net.apply_input(state, invoke("net", 0, send(2, "a")))
        state = net.apply_input(state, invoke("net", 1, send(2, "b")))
        one_way = net.enabled(state, Task(net.name, ("perform", 0)))[0].post
        one_way = net.enabled(one_way, Task(net.name, ("perform", 1)))[0].post
        other = net.enabled(state, Task(net.name, ("perform", 1)))[0].post
        other = net.enabled(other, Task(net.name, ("perform", 0)))[0].post
        assert net.resp_buffer(one_way, 2) != net.resp_buffer(other, 2)

    def test_send_to_unknown_target_vanishes(self):
        net = make_network()
        state = net.apply_input(
            net.some_start_state(), invoke("net", 0, send(99, "a"))
        )
        state = net.enabled(state, Task(net.name, ("perform", 0)))[0].post
        assert all(net.resp_buffer(state, e) == () for e in (0, 1, 2))

    def test_network_is_failure_oblivious(self):
        # delta1 signature carries no failed set — structural obliviousness.
        nt = network_type((0, 1), ("m",))
        ((response_map, value),) = nt.apply_perform(send(1, "m"), 0, ())
        assert response_map == {1: (deliver(0, "m"),)}


class TestNetworkResilience:
    def test_silent_beyond_resilience(self):
        net = make_network(resilience=0)
        state = net.apply_input(net.some_start_state(), fail(0))
        transitions = net.enabled(state, Task(net.name, ("perform", 1)))
        assert any(t.action.kind == "dummy_perform" for t in transitions)

    def test_live_within_resilience(self):
        net = make_network(resilience=1)
        state = net.apply_input(net.some_start_state(), fail(0))
        state = net.apply_input(state, invoke("net", 1, send(2, "a")))
        transitions = net.enabled(state, Task(net.name, ("perform", 1)))
        assert {t.action.kind for t in transitions} == {"perform"}


class TestChannels:
    def test_channel_is_two_endpoint_network(self):
        channel = Channel(0, 1, messages=("x",))
        assert channel.endpoints == (0, 1)
        assert channel.service_id == channel_id(0, 1)
        state = channel.apply_input(
            channel.some_start_state(), invoke(channel_id(0, 1), 0, send(1, "x"))
        )
        state = channel.enabled(state, Task(channel.name, ("perform", 0)))[0].post
        assert channel.resp_buffer(state, 1) == (deliver(0, "x"),)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_messages_eventually_delivered(self, seed):
        net = make_network(resilience=2)
        processes = [
            ScriptProcess(
                0, [invoke("net", 0, send(1, "a")), invoke("net", 0, send(2, "a"))],
                connections=["net"],
            ),
            ScriptProcess(1, [invoke("net", 1, send(2, "b"))], connections=["net"]),
            ScriptProcess(2, [], connections=["net"]),
        ]
        system = DistributedSystem(processes, services=[net])
        execution = run(system, RandomScheduler(seed), max_steps=300)
        assert deliveries_in_trace(execution.actions, 1, "net") == [(0, "a")]
        received_at_2 = deliveries_in_trace(execution.actions, 2, "net")
        assert sorted(received_at_2) == [(0, "a"), (1, "b")]

    def test_no_message_invented(self):
        net = make_network()
        processes = [
            ScriptProcess(0, [invoke("net", 0, send(1, "a"))], connections=["net"]),
            ScriptProcess(1, [], connections=["net"]),
            ScriptProcess(2, [], connections=["net"]),
        ]
        system = DistributedSystem(processes, services=[net])
        execution = run(system, RoundRobinScheduler(), max_steps=100)
        for endpoint in (0, 2):
            assert deliveries_in_trace(execution.actions, endpoint, "net") == []
