"""Unit tests for the failure detectors P and <>P (Section 6.2)."""

from repro.ioa import (
    Action,
    RoundRobinScheduler,
    Task,
    fail,
    run,
)
from repro.services import (
    IMPERFECT,
    MODE_SWITCH_TASK,
    PERFECT,
    EventuallyPerfectFailureDetector,
    PerfectFailureDetector,
    suspect,
    suspicions_in_trace,
)


def compute_task(service, name):
    return Task(service.name, ("compute", name))


class TestPerfectDetector:
    def test_no_invocations(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1, 2), resilience=1)
        assert not detector.is_input(Action("invoke", ("P", 0, ("query",))))
        assert detector.is_input(fail(0))

    def test_reports_exact_failed_set(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1, 2), resilience=2)
        state = detector.some_start_state()
        state = detector.apply_input(state, fail(2))
        (transition,) = detector.enabled(state, compute_task(detector, 0))
        assert detector.resp_buffer(transition.post, 0) == (suspect({2}),)

    def test_empty_report_when_no_failures(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1), resilience=1)
        (transition,) = detector.enabled(
            detector.some_start_state(), compute_task(detector, 1)
        )
        assert detector.resp_buffer(transition.post, 1) == (suspect(()),)

    def test_one_global_task_per_endpoint(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1, 2), resilience=1)
        names = {task.name for task in detector.tasks()}
        for endpoint in (0, 1, 2):
            assert ("compute", endpoint) in names

    def test_strong_accuracy_along_runs(self):
        """Every suspicion delivered is a subset of the failures so far."""
        detector = PerfectFailureDetector("P", endpoints=(0, 1, 2), resilience=2)
        execution = run(
            detector,
            RoundRobinScheduler(),
            max_steps=60,
            inputs=[(10, fail(1)), (30, fail(2))],
        )
        failed_so_far = set()
        for step in execution.steps:
            if step.action.kind == "fail":
                failed_so_far.add(step.action.args[0])
            if step.action.kind == "respond":
                reported = step.action.args[2][1]
                assert reported <= failed_so_far

    def test_strong_completeness_eventually(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1, 2), resilience=2)
        execution = run(
            detector,
            RoundRobinScheduler(),
            max_steps=80,
            inputs=[(0, fail(1))],
        )
        reports = suspicions_in_trace(execution.actions, 0, "P")
        assert reports, "fair run must deliver reports"
        assert reports[-1] == frozenset({1})


class TestEventuallyPerfectDetector:
    def test_starts_imperfect(self):
        detector = EventuallyPerfectFailureDetector(
            "evP", endpoints=(0, 1), resilience=1
        )
        assert detector.some_start_state().val == IMPERFECT

    def test_mode_switch_task(self):
        detector = EventuallyPerfectFailureDetector(
            "evP", endpoints=(0, 1), resilience=1
        )
        state = detector.some_start_state()
        (transition,) = detector.enabled(
            state, compute_task(detector, MODE_SWITCH_TASK)
        )
        assert transition.post.val == PERFECT

    def test_imperfect_mode_allows_arbitrary_suspicions(self):
        detector = EventuallyPerfectFailureDetector(
            "evP", endpoints=(0, 1), resilience=1
        )
        transitions = detector.enabled(
            detector.some_start_state(), compute_task(detector, 0)
        )
        reported = {
            detector.resp_buffer(t.post, 0)[-1][1] for t in transitions
        }
        # All four subsets of {0, 1} can be reported while imperfect.
        assert reported == {
            frozenset(),
            frozenset({0}),
            frozenset({1}),
            frozenset({0, 1}),
        }

    def test_perfect_mode_reports_exactly(self):
        detector = EventuallyPerfectFailureDetector(
            "evP", endpoints=(0, 1), resilience=1
        )
        state = detector.some_start_state()
        state = detector.enabled(state, compute_task(detector, MODE_SWITCH_TASK))[
            0
        ].post
        state = detector.apply_input(state, fail(1))
        (transition,) = detector.enabled(state, compute_task(detector, 0))
        assert detector.resp_buffer(transition.post, 0) == (suspect({1}),)

    def test_restricted_arbitrary_suspicions(self):
        detector = EventuallyPerfectFailureDetector(
            "evP",
            endpoints=(0, 1),
            resilience=1,
            arbitrary_suspicions=[frozenset({0})],
        )
        transitions = detector.enabled(
            detector.some_start_state(), compute_task(detector, 1)
        )
        reported = {detector.resp_buffer(t.post, 1)[-1][1] for t in transitions}
        assert reported == {frozenset({0})}

    def test_eventual_accuracy_under_fair_scheduling(self):
        """Reports eventually stabilize to the exact failed set.

        Pre-switch (arbitrary) reports may still drain from the response
        buffers after the mode switch; eventual accuracy says the *tail*
        of the report stream is exact.
        """
        detector = EventuallyPerfectFailureDetector(
            "evP",
            endpoints=(0, 1),
            resilience=1,
            arbitrary_suspicions=[frozenset({0, 1})],  # maximally wrong
        )
        execution = run(
            detector,
            RoundRobinScheduler(),
            max_steps=60,
            inputs=[(0, fail(1))],
        )
        switched = any(
            step.action == Action("compute", ("evP", MODE_SWITCH_TASK))
            for step in execution.steps
        )
        assert switched, "fairness must eventually run the mode-switch task"
        reports = suspicions_in_trace(execution.actions, 0, "evP")
        assert reports and reports[-1] == frozenset({1})
        # Some early report was wrong (the detector really was imperfect).
        assert frozenset({0, 1}) in reports
