"""Unit tests for the canonical failure-oblivious service (Fig. 4)."""

import pytest

from repro.ioa import Action, Task, fail, invoke
from repro.services import CanonicalFailureObliviousService
from repro.types import FailureObliviousServiceType, single_response


def make_echo_service(endpoints=(0, 1, 2), resilience=1):
    """A service whose perform echoes to everyone and whose global task
    appends a heartbeat response to endpoint 0."""

    def delta1(invocation, endpoint, value):
        responses = {e: (("echo", invocation, endpoint),) for e in endpoints}
        return ((responses, value + 1),)

    def delta2(global_task, value):
        if value % 2 == 0:
            return ((single_response(0, ("beat", value)), value + 1),)
        return (({}, value),)

    service_type = FailureObliviousServiceType(
        name="echo",
        initial_values=(0,),
        invocations=(("ping",),),
        responses=tuple(("echo", ("ping",), e) for e in endpoints)
        + tuple(("beat", n) for n in range(10)),
        global_tasks=("g",),
        delta1=delta1,
        delta2=delta2,
    )
    return CanonicalFailureObliviousService(
        service_type=service_type,
        endpoints=endpoints,
        resilience=resilience,
        service_id="echo",
    )


class TestGeneralizationsOverAtomic:
    def test_perform_may_respond_to_many_endpoints(self):
        service = make_echo_service()
        state = service.apply_input(
            service.some_start_state(), invoke("echo", 1, ("ping",))
        )
        (transition,) = service.enabled(state, Task(service.name, ("perform", 1)))
        post = transition.post
        for endpoint in service.endpoints:
            assert service.resp_buffer(post, endpoint) == (("echo", ("ping",), 1),)

    def test_perform_result_may_depend_on_endpoint(self):
        service = make_echo_service()
        state = service.some_start_state()
        s1 = service.apply_input(state, invoke("echo", 1, ("ping",)))
        s2 = service.apply_input(state, invoke("echo", 2, ("ping",)))
        post1 = service.enabled(s1, Task(service.name, ("perform", 1)))[0].post
        post2 = service.enabled(s2, Task(service.name, ("perform", 2)))[0].post
        assert service.resp_buffer(post1, 0) != service.resp_buffer(post2, 0)

    def test_compute_steps_are_spontaneous(self):
        service = make_echo_service()
        state = service.some_start_state()  # no invocation pending
        (transition,) = service.enabled(state, Task(service.name, ("compute", "g")))
        assert transition.action == Action("compute", ("echo", "g"))
        assert service.resp_buffer(transition.post, 0) == (("beat", 0),)

    def test_compute_noop_branch_keeps_delta2_total(self):
        service = make_echo_service()
        state = service.some_start_state()
        state = service.enabled(state, Task(service.name, ("compute", "g")))[0].post
        # value is now odd: delta2 is a no-op but still defined.
        (transition,) = service.enabled(state, Task(service.name, ("compute", "g")))
        assert transition.post.val == state.val


class TestComputeTaskResilience:
    def test_dummy_compute_disabled_when_failure_free(self):
        service = make_echo_service()
        transitions = service.enabled(
            service.some_start_state(), Task(service.name, ("compute", "g"))
        )
        assert all(t.action.kind != "dummy_compute" for t in transitions)

    def test_dummy_compute_enabled_beyond_resilience(self):
        service = make_echo_service(resilience=1)
        state = service.some_start_state()
        state = service.apply_input(state, fail(0))
        state = service.apply_input(state, fail(1))
        transitions = service.enabled(state, Task(service.name, ("compute", "g")))
        assert any(t.action.kind == "dummy_compute" for t in transitions)

    def test_dummy_compute_enabled_when_all_endpoints_fail(self):
        service = make_echo_service(endpoints=(0, 1), resilience=5)
        state = service.some_start_state()
        state = service.apply_input(state, fail(0))
        state = service.apply_input(state, fail(1))
        transitions = service.enabled(state, Task(service.name, ("compute", "g")))
        assert any(t.action.kind == "dummy_compute" for t in transitions)

    def test_dummy_compute_not_enabled_by_single_failure(self):
        service = make_echo_service(resilience=1)
        state = service.apply_input(service.some_start_state(), fail(0))
        transitions = service.enabled(state, Task(service.name, ("compute", "g")))
        assert all(t.action.kind != "dummy_compute" for t in transitions)


class TestObliviousnessIsStructural:
    def test_delta_callbacks_never_see_failures(self):
        observed = []

        def delta1(invocation, endpoint, value):
            observed.append(("delta1", invocation, endpoint, value))
            return (({}, value),)

        def delta2(global_task, value):
            observed.append(("delta2", global_task, value))
            return (({}, value),)

        service = CanonicalFailureObliviousService(
            service_type=FailureObliviousServiceType(
                name="probe",
                initial_values=(0,),
                invocations=(("op",),),
                responses=(),
                global_tasks=("g",),
                delta1=delta1,
                delta2=delta2,
            ),
            endpoints=(0, 1),
            resilience=0,
            service_id="probe",
        )
        state = service.apply_input(service.some_start_state(), fail(1))
        state = service.apply_input(state, invoke("probe", 0, ("op",)))
        service.enabled(state, Task(service.name, ("perform", 0)))
        service.enabled(state, Task(service.name, ("compute", "g")))
        # Every recorded call signature carries no failure information:
        # the arity check *is* the obliviousness guarantee.
        assert observed == [
            ("delta1", ("op",), 0, 0),
            ("delta2", "g", 0),
        ]

    def test_global_tasks_appear_in_task_list(self):
        service = make_echo_service()
        names = {task.name for task in service.tasks()}
        assert ("compute", "g") in names
