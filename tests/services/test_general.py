"""Unit tests for the canonical general (failure-aware) service (Fig. 8)."""

from repro.ioa import Action, Task, fail, invoke
from repro.services import CanonicalGeneralService
from repro.types import GeneralServiceType, single_response


def make_failure_counter(endpoints=(0, 1, 2), resilience=1):
    """A deliberately failure-AWARE service: perform reports |failed|."""

    def delta1(invocation, endpoint, value, failed):
        return ((single_response(endpoint, ("failures", len(failed))), value),)

    def delta2(global_task, value, failed):
        return ((single_response(0, ("snapshot", frozenset(failed))), value),)

    service_type = GeneralServiceType(
        name="failure-counter",
        initial_values=("v",),
        invocations=(("count",),),
        responses=tuple(("failures", n) for n in range(4))
        + tuple(
            ("snapshot", frozenset(s))
            for s in [(), (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]
        ),
        global_tasks=("g",),
        delta1=delta1,
        delta2=delta2,
    )
    return CanonicalGeneralService(
        service_type=service_type,
        endpoints=endpoints,
        resilience=resilience,
        service_id="fc",
    )


class TestFailureAwareness:
    def test_perform_sees_failed_set(self):
        service = make_failure_counter()
        state = service.some_start_state()
        state = service.apply_input(state, fail(2))
        state = service.apply_input(state, invoke("fc", 0, ("count",)))
        (transition,) = service.enabled(state, Task(service.name, ("perform", 0)))
        assert service.resp_buffer(transition.post, 0) == (("failures", 1),)

    def test_compute_sees_failed_set(self):
        service = make_failure_counter()
        state = service.some_start_state()
        state = service.apply_input(state, fail(1))
        (transition,) = service.enabled(state, Task(service.name, ("compute", "g")))
        assert service.resp_buffer(transition.post, 0) == (
            ("snapshot", frozenset({1})),
        )

    def test_awareness_tracks_failures_over_time(self):
        service = make_failure_counter()
        state = service.some_start_state()
        snapshots = []
        for victim in (0, 1):
            state = service.apply_input(state, fail(victim))
            post = service.enabled(state, Task(service.name, ("compute", "g")))[0].post
            snapshots.append(service.resp_buffer(post, 0)[-1])
        assert snapshots == [
            ("snapshot", frozenset({0})),
            ("snapshot", frozenset({0, 1})),
        ]


class TestResilienceStillApplies:
    def test_dummies_beyond_resilience(self):
        service = make_failure_counter(resilience=1)
        state = service.some_start_state()
        state = service.apply_input(state, fail(0))
        state = service.apply_input(state, fail(1))
        transitions = service.enabled(state, Task(service.name, ("compute", "g")))
        assert any(t.action.kind == "dummy_compute" for t in transitions)
        transitions = service.enabled(state, Task(service.name, ("perform", 2)))
        assert any(t.action.kind == "dummy_perform" for t in transitions)

    def test_no_dummies_within_resilience(self):
        service = make_failure_counter(resilience=2)
        state = service.some_start_state()
        state = service.apply_input(state, fail(0))
        transitions = service.enabled(state, Task(service.name, ("compute", "g")))
        assert all(t.action.kind == "compute" for t in transitions)
