"""Unit tests for the Omega leader oracle."""

from repro.ioa import Action, RoundRobinScheduler, Task, fail, run
from repro.services.failure_detectors import (
    IMPERFECT,
    LEADER,
    MODE_SWITCH_TASK,
    PERFECT,
    OmegaFailureDetector,
    leader_of,
    leaders_in_trace,
)


def compute_task(service, name):
    return Task(service.name, ("compute", name))


class TestLeaderRule:
    def test_least_alive_endpoint(self):
        assert leader_of((0, 1, 2), frozenset()) == 0
        assert leader_of((0, 1, 2), frozenset({0})) == 1
        assert leader_of((0, 1, 2), frozenset({0, 1})) == 2

    def test_all_failed(self):
        assert leader_of((0, 1), frozenset({0, 1})) is None


class TestOmegaService:
    def test_starts_imperfect(self):
        omega = OmegaFailureDetector("om", endpoints=(0, 1, 2), resilience=2)
        assert omega.some_start_state().val == IMPERFECT

    def test_imperfect_mode_reports_anything(self):
        omega = OmegaFailureDetector("om", endpoints=(0, 1, 2), resilience=2)
        transitions = omega.enabled(
            omega.some_start_state(), compute_task(omega, 0)
        )
        reported = {omega.resp_buffer(t.post, 0)[-1][1] for t in transitions}
        assert reported == {0, 1, 2}

    def test_restricted_lies(self):
        omega = OmegaFailureDetector(
            "om", endpoints=(0, 1, 2), resilience=2, arbitrary_leaders=[2]
        )
        transitions = omega.enabled(
            omega.some_start_state(), compute_task(omega, 1)
        )
        reported = {omega.resp_buffer(t.post, 1)[-1][1] for t in transitions}
        assert reported == {2}

    def test_perfect_mode_reports_least_alive(self):
        omega = OmegaFailureDetector("om", endpoints=(0, 1, 2), resilience=2)
        state = omega.some_start_state()
        state = omega.enabled(state, compute_task(omega, MODE_SWITCH_TASK))[0].post
        assert state.val == PERFECT
        state = omega.apply_input(state, fail(0))
        (transition,) = omega.enabled(state, compute_task(omega, 1))
        assert omega.resp_buffer(transition.post, 1) == ((LEADER, 1),)

    def test_eventual_stable_leadership(self):
        """After the fair mode switch and the last failure, all endpoints
        converge on the same correct leader."""
        omega = OmegaFailureDetector(
            "om", endpoints=(0, 1, 2), resilience=2, arbitrary_leaders=[2]
        )
        execution = run(
            omega,
            RoundRobinScheduler(),
            max_steps=80,
            inputs=[(5, fail(0))],
        )
        for observer in (1, 2):
            reports = leaders_in_trace(execution.actions, observer, "om")
            assert reports and reports[-1] == 1  # least alive

    def test_stable_leader_is_correct(self):
        omega = OmegaFailureDetector("om", endpoints=(0, 1, 2), resilience=2)
        execution = run(
            omega,
            RoundRobinScheduler(),
            max_steps=100,
            inputs=[(0, fail(1))],
        )
        failed = {1}
        # Find the mode switch; every report after it names a live process.
        switched = False
        for step in execution.steps:
            if step.action == Action("compute", ("om", MODE_SWITCH_TASK)):
                switched = True
            if (
                switched
                and step.action.kind == "compute"
                and step.action.args[1] in (0, 1, 2)
            ):
                # The freshly computed report is accurate.
                post_buffer = step.post
        reports = leaders_in_trace(execution.actions, 0, "om")
        assert reports[-1] not in failed
