"""The paper's special-case embeddings, verified step for step.

Section 5.1: the canonical atomic object is a special case of the
canonical failure-oblivious service (via the ``from_sequential`` lift).
Section 6.1: the canonical failure-oblivious service is a special case
of the canonical general service (via the ``oblivious_as_general``
lift).  These tests drive both automata of each pair through identical
action sequences and assert the observable behavior coincides.
"""

import pytest

from repro.ioa import Action, RandomScheduler, Task, fail, invoke, run
from repro.services import (
    CanonicalAtomicObject,
    CanonicalFailureObliviousService,
    TotallyOrderedBroadcast,
    atomic_object_as_oblivious_service,
    oblivious_service_as_general,
)
from repro.types import binary_consensus_type


def drive_pair(left, right, inputs, task_names, steps=40, seed=1):
    """Apply the same inputs and task picks to both automata; compare.

    Returns the pair of final states.  Raises on any divergence in
    enabled actions along the way.
    """
    ls = left.some_start_state()
    rs = right.some_start_state()
    for action in inputs:
        ls = left.apply_input(ls, action)
        rs = right.apply_input(rs, action)
    import random

    rng = random.Random(seed)
    for _ in range(steps):
        name = rng.choice(task_names)
        lt = left.enabled(ls, Task(left.name, name))
        rt = right.enabled(rs, Task(right.name, name))
        assert [t.action for t in lt] == [t.action for t in rt], (
            f"enabled actions diverge at task {name}: {lt} vs {rt}"
        )
        if not lt:
            continue
        choice = rng.randrange(len(lt))
        ls = lt[choice].post
        rs = rt[choice].post
    return ls, rs


class TestAtomicAsOblivious:
    def make_pair(self, resilience=1):
        endpoints = (0, 1, 2)
        atomic = CanonicalAtomicObject(
            sequential_type=binary_consensus_type(),
            endpoints=endpoints,
            resilience=resilience,
            service_id="cons",
            name="obj",
        )
        oblivious = atomic_object_as_oblivious_service(
            binary_consensus_type(),
            endpoints=endpoints,
            resilience=resilience,
            service_id="cons",
            name="obj",
        )
        return atomic, oblivious

    def test_same_task_structure_modulo_globals(self):
        atomic, oblivious = self.make_pair()
        atomic_tasks = {task.name for task in atomic.tasks()}
        oblivious_tasks = {task.name for task in oblivious.tasks()}
        assert atomic_tasks == oblivious_tasks  # glob is empty

    def test_identical_behavior_failure_free(self):
        atomic, oblivious = self.make_pair()
        inputs = [
            invoke("cons", 0, ("init", 0)),
            invoke("cons", 1, ("init", 1)),
            invoke("cons", 2, ("init", 1)),
        ]
        task_names = [("perform", e) for e in (0, 1, 2)] + [
            ("output", e) for e in (0, 1, 2)
        ]
        ls, rs = drive_pair(atomic, oblivious, inputs, task_names)
        assert ls.val == rs.val
        assert ls.resp_buffers == rs.resp_buffers
        assert ls.inv_buffers == rs.inv_buffers

    def test_identical_behavior_with_failures(self):
        atomic, oblivious = self.make_pair(resilience=0)
        inputs = [
            invoke("cons", 0, ("init", 0)),
            fail(1),
            fail(2),
            invoke("cons", 1, ("init", 1)),
        ]
        task_names = [("perform", e) for e in (0, 1, 2)] + [
            ("output", e) for e in (0, 1, 2)
        ]
        for seed in range(5):
            ls, rs = drive_pair(
                atomic, oblivious, inputs, task_names, seed=seed
            )
            assert ls.failed == rs.failed
            assert ls.val == rs.val


class TestObliviousAsGeneral:
    def make_pair(self, resilience=1):
        endpoints = (0, 1, 2)
        tob = TotallyOrderedBroadcast(
            service_id="tob",
            endpoints=endpoints,
            messages=("a", "b"),
            resilience=resilience,
            name="svc",
        )
        general = oblivious_service_as_general(
            tob.service_type,
            endpoints=endpoints,
            resilience=resilience,
            service_id="tob",
            name="svc",
        )
        return tob, general

    def test_same_task_structure(self):
        tob, general = self.make_pair()
        assert {t.name for t in tob.tasks()} == {t.name for t in general.tasks()}

    def test_identical_behavior_failure_free(self):
        tob, general = self.make_pair()
        inputs = [
            invoke("tob", 0, ("bcast", "a")),
            invoke("tob", 2, ("bcast", "b")),
        ]
        task_names = (
            [("perform", e) for e in (0, 1, 2)]
            + [("output", e) for e in (0, 1, 2)]
            + [("compute", "g")]
        )
        ls, rs = drive_pair(tob, general, inputs, task_names)
        assert ls == rs

    def test_identical_behavior_with_failures(self):
        tob, general = self.make_pair(resilience=0)
        inputs = [
            invoke("tob", 0, ("bcast", "a")),
            fail(0),
            fail(1),
        ]
        task_names = (
            [("perform", e) for e in (0, 1, 2)]
            + [("output", e) for e in (0, 1, 2)]
            + [("compute", "g")]
        )
        for seed in range(5):
            ls, rs = drive_pair(tob, general, inputs, task_names, seed=seed)
            assert ls == rs
