"""Unit tests for canonical reliable registers."""

import pytest

from repro.ioa import Action, Task, fail, invoke
from repro.services import CanonicalRegister, read, write


def make_register(endpoints=(0, 1)):
    return CanonicalRegister(
        "reg", endpoints=endpoints, values=("empty", 0, 1), initial="empty"
    )


class TestInvocations:
    def test_read_and_write_helpers(self):
        assert read() == ("read",)
        assert write(3) == ("write", 3)


class TestRegisterBehavior:
    def test_registers_are_wait_free(self):
        assert make_register().is_wait_free
        assert make_register(endpoints=(0, 1, 2, 3)).resilience == 3

    def test_initial_value(self):
        register = make_register()
        assert register.some_start_state().val == "empty"

    def test_write_then_read(self):
        register = make_register()
        state = register.some_start_state()
        state = register.apply_input(state, invoke("reg", 0, write(1)))
        state = register.enabled(state, Task(register.name, ("perform", 0)))[0].post
        assert state.val == 1
        state = register.apply_input(state, invoke("reg", 1, read()))
        state = register.enabled(state, Task(register.name, ("perform", 1)))[0].post
        assert register.resp_buffer(state, 1) == (("value", 1),)

    def test_write_overwrites(self):
        register = make_register()
        state = register.some_start_state()
        for value in (0, 1, 0):
            state = register.apply_input(state, invoke("reg", 0, write(value)))
            state = register.enabled(state, Task(register.name, ("perform", 0)))[
                0
            ].post
        assert state.val == 0

    def test_multi_writer_multi_reader(self):
        register = make_register(endpoints=(0, 1, 2))
        state = register.some_start_state()
        state = register.apply_input(state, invoke("reg", 2, write(1)))
        state = register.enabled(state, Task(register.name, ("perform", 2)))[0].post
        for reader in (0, 1):
            s = register.apply_input(state, invoke("reg", reader, read()))
            s = register.enabled(s, Task(register.name, ("perform", reader)))[0].post
            assert register.resp_buffer(s, reader) == (("value", 1),)


class TestRegisterResilience:
    def test_single_failure_does_not_silence_two_endpoint_register(self):
        register = make_register()
        state = register.apply_input(register.some_start_state(), fail(0))
        # Endpoint 1 is still served: no dummy for it.
        state = register.apply_input(state, invoke("reg", 1, read()))
        transitions = register.enabled(state, Task(register.name, ("perform", 1)))
        actions = {t.action.kind for t in transitions}
        assert actions == {"perform"}

    def test_all_endpoints_failed_enables_dummies(self):
        register = make_register()
        state = register.some_start_state()
        state = register.apply_input(state, fail(0))
        state = register.apply_input(state, fail(1))
        transitions = register.enabled(state, Task(register.name, ("perform", 1)))
        actions = {t.action.kind for t in transitions}
        assert "dummy_perform" in actions
