"""Unit tests for process automata (Section 2.2.1 assumptions)."""

import pytest

from repro.ioa import Action, Task, decide, dummy_step, fail, init, invoke, respond
from repro.system import IdleProcess, Process, ProcessState, ScriptProcess


class Echo(Process):
    """Decides the value of its init input, after one internal step."""

    def initial_locals(self):
        return ("idle",)

    def handle_input(self, locals_value, action):
        if action.kind == "init" and locals_value[0] == "idle":
            return ("think", action.args[1])
        return locals_value

    def next_action(self, locals_value):
        if locals_value[0] == "think":
            return Action("local", (self.endpoint, "pondered")), (
                "speak",
                locals_value[1],
            )
        if locals_value[0] == "speak":
            return decide(self.endpoint, locals_value[1]), ("done",)
        return None, locals_value


class TestSignature:
    def test_inputs(self):
        process = Echo(3, connections=("svc",), input_values=(0, 1))
        assert process.is_input(init(3, 0))
        assert not process.is_input(init(3, 7))  # not in input_values
        assert not process.is_input(init(4, 0))  # wrong endpoint
        assert process.is_input(respond("svc", 3, "x"))
        assert not process.is_input(respond("other", 3, "x"))
        assert process.is_input(fail(3))
        assert not process.is_input(fail(4))

    def test_outputs(self):
        process = Echo(3, connections=("svc",), input_values=(0, 1))
        assert process.is_output(invoke("svc", 3, "op"))
        assert not process.is_output(invoke("svc", 4, "op"))
        assert not process.is_output(invoke("other", 3, "op"))
        assert process.is_output(decide(3, 1))
        assert not process.is_output(decide(4, 1))

    def test_internal(self):
        process = Echo(3)
        assert process.is_internal(dummy_step(3))
        assert process.is_internal(Action("local", (3, "tag")))
        assert not process.is_internal(dummy_step(4))


class TestSingleTaskAlwaysEnabled:
    def test_single_task(self):
        process = Echo(0, input_values=(0, 1))
        assert len(process.tasks()) == 1

    def test_some_action_enabled_in_every_state(self):
        process = Echo(0, input_values=(0, 1))
        task = process.tasks()[0]
        state = next(iter(process.start_states()))
        # Idle: dummy step keeps the task enabled.
        (transition,) = process.enabled(state, task)
        assert transition.action == dummy_step(0)

    def test_deterministic_single_transition(self):
        process = Echo(0, input_values=(0, 1))
        task = process.tasks()[0]
        state = process.apply_input(next(iter(process.start_states())), init(0, 1))
        assert len(process.enabled(state, task)) == 1


class TestDecisionRecording:
    def run_to_decision(self, process):
        task = process.tasks()[0]
        state = next(iter(process.start_states()))
        state = process.apply_input(state, init(0, 1))
        for _ in range(5):
            (transition,) = process.enabled(state, task)
            state = transition.post
        return state

    def test_decision_recorded_in_special_component(self):
        process = Echo(0, input_values=(0, 1))
        state = self.run_to_decision(process)
        assert state.decision == 1

    def test_first_decision_sticks(self):
        class DoubleDecider(Echo):
            def next_action(self, locals_value):
                if locals_value[0] == "think":
                    return decide(self.endpoint, locals_value[1]), (
                        "again",
                        locals_value[1],
                    )
                if locals_value[0] == "again":
                    return decide(self.endpoint, 1 - locals_value[1]), ("done",)
                return None, locals_value

        process = DoubleDecider(0, input_values=(0, 1))
        state = self.run_to_decision(process)
        assert state.decision == 1  # the first decide(1) is what is recorded


class TestFailureSemantics:
    def test_no_outputs_after_fail(self):
        process = Echo(0, input_values=(0, 1))
        task = process.tasks()[0]
        state = next(iter(process.start_states()))
        state = process.apply_input(state, init(0, 1))  # ready to act
        state = process.apply_input(state, fail(0))
        for _ in range(5):
            (transition,) = process.enabled(state, task)
            assert transition.action == dummy_step(0)
            state = transition.post

    def test_task_remains_enabled_after_fail(self):
        # Section 2.2.1: some locally controlled action must stay enabled.
        process = Echo(0, input_values=(0, 1))
        state = process.apply_input(next(iter(process.start_states())), fail(0))
        assert process.enabled(state, process.tasks()[0])

    def test_failed_flag_set(self):
        process = Echo(0)
        state = process.apply_input(next(iter(process.start_states())), fail(0))
        assert state.failed


class TestProtocolMisuse:
    def test_emitting_foreign_action_rejected(self):
        class Rogue(Echo):
            def next_action(self, locals_value):
                return invoke("unconnected", self.endpoint, "x"), locals_value

        process = Rogue(0, input_values=(0, 1))
        with pytest.raises(ValueError):
            process.enabled(next(iter(process.start_states())), process.tasks()[0])

    def test_unknown_input_rejected(self):
        process = Echo(0, input_values=(0, 1))
        with pytest.raises(ValueError):
            process.apply_input(
                next(iter(process.start_states())), respond("ghost", 0, "x")
            )


class TestHelperProcesses:
    def test_idle_process_only_dummies(self):
        process = IdleProcess(5)
        task = process.tasks()[0]
        state = next(iter(process.start_states()))
        (transition,) = process.enabled(state, task)
        assert transition.action == dummy_step(5)

    def test_script_process_replays_and_logs(self):
        process = ScriptProcess(
            1, [Action("local", (1, "a")), Action("local", (1, "b"))]
        )
        task = process.tasks()[0]
        state = next(iter(process.start_states()))
        actions = []
        for _ in range(3):
            (transition,) = process.enabled(state, task)
            actions.append(transition.action)
            state = transition.post
        assert actions == [
            Action("local", (1, "a")),
            Action("local", (1, "b")),
            dummy_step(1),
        ]

    def test_script_process_records_inputs(self):
        process = ScriptProcess(1, [], connections=("svc",))
        state = next(iter(process.start_states()))
        state = process.apply_input(state, respond("svc", 1, "hello"))
        assert ScriptProcess.received(state) == (respond("svc", 1, "hello"),)
