"""Model-comparison semantics the paper calls out (Related work, S1).

The paper distinguishes its model from Chandra et al. [3] and
Jayanti-Toueg [14] on specific points; these tests pin the distinguishing
behaviors:

1. "an access to every service (even wait-free) incurs a delay" and a
   process may "access multiple services concurrently";
2. "a connected process P_i that does not apply an invocation is
   considered alive until a fail_i action arrives" — a silent process
   does NOT count against a service's resilience budget.
"""

import pytest

from repro.ioa import RoundRobinScheduler, Task, fail, invoke, run
from repro.services import CanonicalAtomicObject, CanonicalRegister
from repro.system import DistributedSystem, IdleProcess, ScriptProcess
from repro.types import binary_consensus_type


class TestAccessesIncurDelay:
    def test_invocation_and_response_are_separate_steps(self):
        """Even on a wait-free object, an operation takes distinct
        invoke / perform / respond steps — never instantaneous."""
        service = CanonicalAtomicObject(
            binary_consensus_type(), (0,), 0, service_id="c"
        )
        process = ScriptProcess(0, [invoke("c", 0, ("init", 1))], connections=["c"])
        system = DistributedSystem([process], services=[service])
        execution = run(system, RoundRobinScheduler(), max_steps=10)
        kinds = [a.kind for a in execution.actions]
        assert kinds.index("invoke") < kinds.index("perform") < kinds.index("respond")

    def test_state_between_invocation_and_response_is_observable(self):
        service = CanonicalAtomicObject(
            binary_consensus_type(), (0,), 0, service_id="c"
        )
        process = ScriptProcess(0, [invoke("c", 0, ("init", 1))], connections=["c"])
        system = DistributedSystem([process], services=[service])
        state = system.some_start_state()
        state = system.enabled(state, process.tasks()[0])[0].post
        # Invocation pending, no response yet: the delay is real state.
        assert system.service_buffer(state, "c", 0)[0] == (("init", 1),)
        assert system.service_buffer(state, "c", 0)[1] == ()


class TestConcurrentMultiServiceAccess:
    def test_process_may_have_outstanding_ops_at_two_services(self):
        rega = CanonicalRegister("a", (0,), values=(0, 1))
        regb = CanonicalRegister("b", (0,), values=(0, 1))
        process = ScriptProcess(
            0,
            [invoke("a", 0, ("write", 1)), invoke("b", 0, ("write", 1))],
            connections=["a", "b"],
        )
        system = DistributedSystem([process], registers=[rega, regb])
        state = system.some_start_state()
        # Issue both invocations before any service performs anything.
        state = system.enabled(state, process.tasks()[0])[0].post
        state = system.enabled(state, process.tasks()[0])[0].post
        assert system.service_buffer(state, "a", 0)[0] == (("write", 1),)
        assert system.service_buffer(state, "b", 0)[0] == (("write", 1),)

    def test_pipelined_invocations_at_one_service(self):
        reg = CanonicalRegister("a", (0,), values=(0, 1, 2))
        process = ScriptProcess(
            0,
            [invoke("a", 0, ("write", 1)), invoke("a", 0, ("write", 2))],
            connections=["a"],
        )
        system = DistributedSystem([process], registers=[reg])
        state = system.some_start_state()
        state = system.enabled(state, process.tasks()[0])[0].post
        state = system.enabled(state, process.tasks()[0])[0].post
        # Two queued invocations, FIFO, no response waited on.
        assert system.service_buffer(state, "a", 0)[0] == (
            ("write", 1),
            ("write", 2),
        )


class TestSilentProcessesAreAlive:
    def test_non_invoking_process_does_not_consume_resilience(self):
        """Paper point 2 vs. Chandra et al.'s weakly f-resilient objects:
        endpoint 1 never invokes anything — the 0-resilient object must
        still serve endpoint 0 (no dummy actions enabled), because
        silence is not failure."""
        service = CanonicalAtomicObject(
            binary_consensus_type(), (0, 1), 0, service_id="c"
        )
        process0 = ScriptProcess(0, [invoke("c", 0, ("init", 0))], connections=["c"])
        process1 = IdleProcess(1)  # connected implicitly silent endpoint
        system = DistributedSystem([process0, process1], services=[service])
        execution = run(system, RoundRobinScheduler(), max_steps=40)
        final = execution.final_state
        # Endpoint 0 got its decision; no dummy action ever fired.
        assert any(a.kind == "respond" for a in execution.actions)
        assert all(not a.kind.startswith("dummy_p") for a in execution.actions)

    def test_fail_is_what_flips_aliveness(self):
        service = CanonicalAtomicObject(
            binary_consensus_type(), (0, 1), 0, service_id="c"
        )
        state = service.some_start_state()
        perform_1 = Task(service.name, ("perform", 1))
        # Silent but alive: no dummies.
        assert service.enabled(state, perform_1) == []
        # After fail_1: dummies for endpoint 1 appear.
        state = service.apply_input(state, fail(1))
        actions = {t.action.kind for t in service.enabled(state, perform_1)}
        assert "dummy_perform" in actions
