"""Lemma 1: applicable tasks remain applicable until they occur.

"Let alpha be any finite failure-free execution of C, e be any task of C
applicable to alpha, and alpha.beta any finite failure-free extension
such that beta includes no actions of e.  Then e is applicable to
alpha.beta."

Verified by exhaustive exploration on small instances of all three
service classes.
"""

import pytest

from repro.analysis import DeterministicSystemView, explore
from repro.protocols import (
    delegation_consensus_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


def assert_lemma1_on(system, proposals, max_states=20_000):
    """Check Lemma 1 over the full failure-free reachable graph.

    For every explored state and every applicable task ``e``, every
    successor reached by a different task must keep ``e`` applicable.
    """
    view = DeterministicSystemView(system)
    root = system.initialization(proposals).final_state
    graph = explore(view, root, budget=Budget(max_states=max_states))
    checked = 0
    for state in graph.states:
        applicable = [t for t in view.tasks if view.applicable(state, t)]
        for task, _, successor in graph.successors(state):
            for e in applicable:
                if e == task:
                    continue
                assert view.applicable(successor, e), (
                    f"Lemma 1 violated: task {e} lost applicability after "
                    f"{task} from state {state}"
                )
                checked += 1
    assert checked > 0


class TestLemma1:
    def test_atomic_object_system(self):
        assert_lemma1_on(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )

    def test_three_process_atomic_system(self):
        assert_lemma1_on(
            delegation_consensus_system(3, resilience=1), {0: 0, 1: 1, 2: 0}
        )

    def test_register_system(self):
        assert_lemma1_on(min_register_consensus_system(), {0: 0, 1: 1})

    def test_failure_oblivious_system(self):
        # Extends Lemma 1 to failure-oblivious services (Section 5.3):
        # g-compute tasks are always enabled because delta2 is total.
        assert_lemma1_on(tob_delegation_system(2, resilience=0), {0: 0, 1: 1})

    def test_process_tasks_always_applicable(self):
        system = delegation_consensus_system(2, resilience=0)
        view = DeterministicSystemView(system)
        root = system.initialization({0: 1, 1: 0}).final_state
        graph = explore(view, root, budget=Budget(max_states=20_000))
        process_tasks = system.process_tasks()
        for state in graph.states:
            for task in process_tasks:
                assert view.applicable(state, task)
