"""Hiding the communication actions (Section 2.2.3).

"The complete system C is constructed by composing the P_i, S_r, and
S_k automata in parallel and then hiding the actions used to communicate
among these automata."  After hiding, C's external interface is exactly
the canonical consensus interface: init/decide plus fail.
"""

import pytest

from repro.ioa import Action, Hidden, RoundRobinScheduler, run
from repro.protocols import delegation_consensus_system

COMMUNICATION_KINDS = ("invoke", "respond")


def hidden_system():
    system = delegation_consensus_system(2, resilience=1)
    hidden = Hidden(
        system, lambda action: action.kind in COMMUNICATION_KINDS, name="C"
    )
    return system, hidden


class TestHiddenCompleteSystem:
    def test_communication_becomes_internal(self):
        system, hidden = hidden_system()
        invoke_action = Action("invoke", ("cons", 0, ("init", 1)))
        assert system.is_output(invoke_action)
        assert hidden.is_internal(invoke_action)
        assert not hidden.is_output(invoke_action)

    def test_external_interface_is_the_consensus_interface(self):
        system, hidden = hidden_system()
        start = system.initialization({0: 1, 1: 0}).final_state
        execution = run(hidden, RoundRobinScheduler(), max_steps=60, start=start)
        trace = execution.trace(hidden)
        assert trace, "the run must produce external actions"
        assert all(action.kind == "decide" for action in trace)

    def test_init_and_fail_remain_external(self):
        _, hidden = hidden_system()
        assert hidden.is_input(Action("init", (0, 1)))
        assert hidden.is_input(Action("fail", (0,)))

    def test_dummy_and_perform_stay_internal(self):
        system, hidden = hidden_system()
        assert hidden.is_internal(Action("perform", ("cons", 0)))
        assert hidden.is_internal(Action("dummy_perform", ("cons", 0)))

    def test_hidden_trace_is_canonical_consensus_trace(self):
        """C implements the canonical consensus object: its (hidden)
        trace must be a trace of that object — the paper's definition of
        'solves consensus', checked literally."""
        from repro.analysis import canonical_accepts_trace
        from repro.services import CanonicalAtomicObject
        from repro.types import binary_consensus_type

        system, hidden = hidden_system()
        start = system.initialization({0: 1, 1: 0}).final_state
        execution = run(hidden, RoundRobinScheduler(), max_steps=60, start=start)
        # Translate the system's external consensus events into the
        # canonical object's interface (init_i -> invoke, decide_i ->
        # respond), prefixing the initialization inputs.
        object_trace = []
        for endpoint, value in ((0, 1), (1, 0)):
            object_trace.append(
                Action("invoke", ("consensus", endpoint, ("init", value)))
            )
        for action in execution.trace(hidden):
            endpoint, value = action.args
            object_trace.append(
                Action("respond", ("consensus", endpoint, ("decide", value)))
            )
        canonical = CanonicalAtomicObject(
            binary_consensus_type(),
            endpoints=(0, 1),
            resilience=1,
            service_id="consensus",
        )
        assert canonical_accepts_trace(canonical, object_trace)
