"""Unit tests for the complete system C (Sections 2.2.2-2.2.3)."""

import pytest

from repro.ioa import Action, RoundRobinScheduler, fail, init, invoke, run
from repro.services import CanonicalAtomicObject, CanonicalRegister
from repro.system import DistributedSystem, IdleProcess, ScriptProcess
from repro.protocols import DelegationProcess, delegation_consensus_system
from repro.types import binary_consensus_type


class TestConstruction:
    def test_validates_service_endpoints_are_processes(self):
        service = CanonicalAtomicObject(
            binary_consensus_type(), endpoints=(0, 9), resilience=0, service_id="c"
        )
        with pytest.raises(ValueError, match="endpoint 9"):
            DistributedSystem([IdleProcess(0)], services=[service])

    def test_validates_process_connections_exist(self):
        process = ScriptProcess(0, [], connections=("ghost",))
        with pytest.raises(ValueError, match="unknown service"):
            DistributedSystem([process])

    def test_validates_process_is_endpoint_of_connection(self):
        service = CanonicalAtomicObject(
            binary_consensus_type(), endpoints=(1,), resilience=0, service_id="c"
        )
        process0 = ScriptProcess(0, [], connections=("c",))
        with pytest.raises(ValueError, match="not an endpoint"):
            DistributedSystem([process0, IdleProcess(1)], services=[service])

    def test_duplicate_service_ids_rejected(self):
        a = CanonicalAtomicObject(
            binary_consensus_type(), (0,), 0, service_id="dup", name="a"
        )
        b = CanonicalAtomicObject(
            binary_consensus_type(), (0,), 0, service_id="dup", name="b"
        )
        with pytest.raises(ValueError, match="duplicate"):
            DistributedSystem([IdleProcess(0)], services=[a, b])

    def test_index_sets(self):
        system = delegation_consensus_system(3, resilience=1)
        assert system.process_ids == (0, 1, 2)
        assert system.service_ids == ("cons",)
        assert system.register_ids == ()


class TestParticipants:
    def test_invoke_has_process_and_service(self):
        system = delegation_consensus_system(2, resilience=0)
        action = invoke("cons", 1, ("init", 0))
        names = {c.name for c in system.participants(action)}
        assert names == {"P[1]", "atomic[cons]"}

    def test_fail_has_process_and_connected_services(self):
        system = delegation_consensus_system(2, resilience=0)
        names = {c.name for c in system.participants(fail(0))}
        assert names == {"P[0]", "atomic[cons]"}

    def test_non_fail_actions_have_at_most_two_participants(self):
        system = delegation_consensus_system(3, resilience=1)
        state = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        for task in system.tasks():
            for transition in system.enabled(state, task):
                if transition.action.kind == "fail":
                    continue
                assert len(system.participants(transition.action)) <= 2

    def test_no_two_services_share_an_action(self):
        register = CanonicalRegister("r", (0, 1), values=(0, 1))
        service = CanonicalAtomicObject(
            binary_consensus_type(), (0, 1), 0, service_id="c"
        )
        p0 = ScriptProcess(0, [], connections=("r", "c"), input_values=(0, 1))
        p1 = ScriptProcess(1, [], connections=("r", "c"), input_values=(0, 1))
        system = DistributedSystem([p0, p1], services=[service], registers=[register])
        probe_actions = [
            invoke("r", 0, ("read",)),
            invoke("c", 0, ("init", 1)),
            Action("perform", ("r", 0)),
            Action("perform", ("c", 0)),
        ]
        for action in probe_actions:
            services_sharing = [
                c
                for c in (system.services + system.registers)
                if c.in_signature(action)
            ]
            assert len(services_sharing) <= 1


class TestStateProjections:
    def test_process_state_projection(self):
        system = delegation_consensus_system(2, resilience=0)
        state = system.some_start_state()
        assert system.process_state(state, 0).locals == ("idle",)

    def test_service_projections(self):
        system = delegation_consensus_system(2, resilience=0)
        state = system.initialization({0: 1, 1: 0}).final_state
        execution = run(system, RoundRobinScheduler(), max_steps=2, start=state)
        final = execution.final_state
        assert system.service_val(final, "cons") in (
            frozenset(),
            frozenset({0}),
            frozenset({1}),
        )
        inv, resp = system.service_buffer(final, "cons", 0)
        assert isinstance(inv, tuple) and isinstance(resp, tuple)


class TestInitializations:
    def test_initialization_applies_one_init_per_process(self):
        system = delegation_consensus_system(3, resilience=1)
        execution = system.initialization({0: 0, 1: 1, 2: 0})
        assert [a.kind for a in execution.actions] == ["init"] * 3
        assert execution.is_failure_free()

    def test_initialization_requires_all_endpoints(self):
        system = delegation_consensus_system(3, resilience=1)
        with pytest.raises(ValueError, match="missing"):
            system.initialization({0: 0})

    def test_all_initializations_enumerates_value_vectors(self):
        system = delegation_consensus_system(2, resilience=0)
        combos = list(system.all_initializations())
        assert len(combos) == 4
        assignments = {tuple(sorted(a.items())) for a, _ in combos}
        assert ((0, 0), (1, 1)) in assignments


class TestFailuresAndDecisions:
    def test_fail_process_updates_process_and_services(self):
        system = delegation_consensus_system(2, resilience=0)
        state = system.fail_process(system.some_start_state(), 1)
        assert system.failed_processes(state) == frozenset({1})
        assert 1 in system.service_state(state, "cons").failed

    def test_decisions_empty_initially(self):
        system = delegation_consensus_system(2, resilience=0)
        assert system.decisions(system.some_start_state()) == {}

    def test_decisions_after_full_run(self):
        system = delegation_consensus_system(2, resilience=0)
        start = system.initialization({0: 1, 1: 1}).final_state
        execution = run(system, RoundRobinScheduler(), max_steps=60, start=start)
        decisions = system.decisions(execution.final_state)
        assert decisions == {0: 1, 1: 1}
        assert system.decision_values(execution.final_state) == frozenset({1})

    def test_task_partition_helpers(self):
        system = delegation_consensus_system(2, resilience=0)
        assert len(system.process_tasks()) == 2
        assert len(system.service_tasks()) == 4  # perform+output per endpoint
        assert set(system.process_tasks()) | set(system.service_tasks()) == set(
            system.tasks()
        )
