"""Unit tests for failure schedules."""

from repro.ioa import fail
from repro.system import (
    FailureSchedule,
    all_failure_sets,
    no_failures,
    random_failures,
    spread_failures,
    upfront_failures,
)


class TestSchedules:
    def test_no_failures(self):
        schedule = no_failures()
        assert len(schedule) == 0
        assert schedule.victims == frozenset()
        assert schedule.as_inputs() == []

    def test_upfront_failures(self):
        schedule = upfront_failures([2, 0])
        assert schedule.as_inputs() == [(0, fail(2)), (0, fail(0))]
        assert schedule.victims == frozenset({0, 2})

    def test_spread_failures(self):
        schedule = spread_failures([1, 2], start=5, gap=10)
        assert schedule.events == ((5, 1), (15, 2))

    def test_random_failures_reproducible(self):
        a = random_failures(range(5), max_failures=3, horizon=100, seed=42)
        b = random_failures(range(5), max_failures=3, horizon=100, seed=42)
        assert a == b

    def test_random_failures_respect_bound(self):
        for seed in range(30):
            schedule = random_failures(range(6), max_failures=2, horizon=50, seed=seed)
            assert len(schedule.victims) <= 2
            assert all(0 <= step < 50 for step, _ in schedule.events)

    def test_random_failures_vary_with_seed(self):
        schedules = {
            random_failures(range(6), 3, 50, seed).events for seed in range(20)
        }
        assert len(schedules) > 1


class TestFailureSets:
    def test_all_failure_sets_exact_size(self):
        sets = list(all_failure_sets(range(4), exactly=2))
        assert len(sets) == 6
        assert all(len(s) == 2 for s in sets)

    def test_all_failure_sets_zero(self):
        assert list(all_failure_sets(range(3), exactly=0)) == [frozenset()]
