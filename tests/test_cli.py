"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "delegation" in out
        assert "boost-kset" in out


class TestRefute:
    def test_refute_delegation(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        out = capsys.readouterr().out
        assert "refuted:   True" in out
        assert "claim4.1" in out

    def test_refute_last_writer(self, capsys):
        assert main(["refute", "last-writer"]) == 0
        out = capsys.readouterr().out
        assert "claim5.1b" in out

    def test_unknown_candidate_rejected(self):
        with pytest.raises(SystemExit):
            main(["refute", "nonsense"])


class TestConstructions:
    def test_boost_kset(self, capsys):
        assert main(["boost-kset", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "3 failures: ok=True" in out

    def test_boost_fd(self, capsys):
        assert main(["boost-fd", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 failures: ok=True" in out

    def test_paxos(self, capsys):
        assert main(["paxos", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "ok=True" in out
