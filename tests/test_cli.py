"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestVersion:
    def test_version_flag_prints_the_package_version(self, capsys):
        from repro.serve import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {package_version()}"


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "delegation" in out
        assert "boost-kset" in out


class TestRefute:
    def test_refute_delegation(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        out = capsys.readouterr().out
        assert "refuted:   True" in out
        assert "claim4.1" in out

    def test_refute_last_writer(self, capsys):
        assert main(["refute", "last-writer"]) == 0
        out = capsys.readouterr().out
        assert "claim5.1b" in out

    def test_unknown_candidate_rejected(self):
        with pytest.raises(SystemExit):
            main(["refute", "nonsense"])

    def test_reports_exploration_and_elapsed(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        out = capsys.readouterr().out
        assert "Explored" in out and "states" in out and "transitions" in out

    def test_budget_exhaustion_exits_2(self, capsys):
        assert main(["refute", "delegation", "--max-states", "50"]) == 2
        out = capsys.readouterr().out
        assert "Exploration budget exhausted" in out
        assert "Explored 50 states" in out

    def test_seed_flag_runs_deterministic_probe(self, capsys):
        assert main(["refute", "delegation", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["refute", "delegation", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        probe_lines = [
            line for line in first.splitlines() if line.startswith("probe[")
        ]
        assert probe_lines and "seed=7" in probe_lines[0]
        assert probe_lines == [
            line for line in second.splitlines() if line.startswith("probe[")
        ]


class TestEngineFlags:
    def test_workers_flag_same_verdict(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        sequential = capsys.readouterr().out
        assert main(["refute", "delegation", "-n", "2", "-f", "0", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda out: [
            line for line in out.splitlines() if not line.startswith("Explored")
        ]
        assert strip(parallel) == strip(sequential)

    def test_deadline_exhaustion_exits_2(self, capsys):
        assert main(["refute", "delegation", "--deadline", "1e-9"]) == 2
        out = capsys.readouterr().out
        assert "Exploration budget exhausted" in out
        assert "deadline" in out

    def test_interrupted_run_resumes_to_same_verdict(self, capsys, tmp_path):
        checkpoints = str(tmp_path / "ckpt")
        assert main(["refute", "delegation"]) == 0
        uninterrupted = capsys.readouterr().out
        # Interrupt: a states budget too small for the Lemma 4 chain.
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                ]
            )
            == 2
        )
        interrupted = capsys.readouterr().out
        assert "checkpoint:" in interrupted
        # Resume with the full budget: same verdict as never interrupted.
        assert main(["refute", "delegation", "--resume", checkpoints]) == 0
        resumed = capsys.readouterr().out
        strip = lambda out: [
            line for line in out.splitlines() if not line.startswith("Explored")
        ]
        assert strip(resumed) == strip(uninterrupted)


class TestJsonOutput:
    def test_json_document_replaces_narrative(self, capsys):
        import json

        assert main(["refute", "delegation", "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)  # the whole stdout is one document
        assert document["candidate"] == {"name": "delegation", "n": 3, "f": 1}
        assert document["verdict"]["refuted"] is True
        assert document["verdict"]["mechanism"]
        assert document["verdict"]["lemma4"]["bivalent_index"] is not None
        assert document["engine"]["states"] > 0
        assert "refuted:" not in out  # narrative suppressed

    def test_json_budget_exhaustion_is_actionable(self, capsys, tmp_path):
        import json

        checkpoints = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                    "--json",
                ]
            )
            == 2
        )
        document = json.loads(capsys.readouterr().out)
        assert document["verdict"] is None
        assert document["error"]["error"] == "budget_exhausted"
        assert document["error"]["resource"] == "states"
        assert document["error"]["checkpoint"]
        assert "--resume" in document["error"]["resume_command"]

    def test_stats_json_includes_metrics(self, capsys):
        import json

        assert main(["stats", "delegation", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["counters"]["explore.states"] > 0

    def test_trace_json_reports_trace_file(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "delegation", "-o", "t.jsonl", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["path"] == "t.jsonl"
        assert document["trace"]["events"] > 0


class TestBudgetExhaustionPath:
    def test_exit_2_prints_checkpoint_and_resume_command(self, capsys, tmp_path):
        checkpoints = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "Checkpoint: " in out
        assert f"--resume {checkpoints}" in out


class TestChaosFlags:
    def test_chaos_kill_recovers_to_same_verdict(self, capsys, monkeypatch):
        assert main(["refute", "delegation", "--workers", "2"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CHAOS", "kill=2:0")
        assert main(["refute", "delegation", "--workers", "2"]) == 0
        chaotic = capsys.readouterr().out
        strip = lambda out: [
            line
            for line in out.splitlines()
            if not line.startswith(("Explored", "engine:"))
        ]
        assert strip(chaotic) == strip(clean)

    def test_max_worker_restarts_flag_accepted(self, capsys):
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--workers",
                    "2",
                    "--max-worker-restarts",
                    "0",
                ]
            )
            == 0
        )


class TestTrace:
    def test_trace_writes_replayable_jsonl(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "delegation", "-o", "out.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "events -> out.jsonl" in out
        from repro.obs.replay import load_events, split_runs

        events = load_events(tmp_path / "out.jsonl")
        assert events
        assert any(
            segment[0].data.get("op") == "run_silenced"
            for segment in split_runs(events)
        )

    def test_trace_default_output_name(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "last-writer"]) == 0
        assert (tmp_path / "last-writer-trace.jsonl").exists()


class TestStats:
    def test_stats_reports_nonzero_exploration(self, capsys):
        assert main(["stats", "delegation"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "explore.states" in line:
                assert int(line.split()[-1]) > 0
                break
        else:
            raise AssertionError("explore.states missing from stats output")
        assert any(
            "explore.transitions" in line and int(line.split()[-1]) > 0
            for line in out.splitlines()
        )
        assert "pipeline.wall_seconds" in out


class TestObs:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["trace", "last-writer", "-o", str(path)]) == 0
        capsys.readouterr()
        return str(path)

    def test_summarize_renders_span_table(self, capsys, trace_path):
        assert main(["obs", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "engine.run" in out
        assert "p95_ms" in out

    def test_summarize_json(self, capsys, trace_path):
        import json

        assert main(["obs", "summarize", trace_path, "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["engine.run"]["count"] >= 1
        assert set(profile["engine.run"]["statuses"]) == {"ok"}

    def test_flame_writes_folded_stacks(self, capsys, tmp_path, trace_path):
        output = tmp_path / "stacks.folded"
        assert main(["obs", "flame", trace_path, "-o", str(output)]) == 0
        assert f"Wrote {output}" in capsys.readouterr().out
        lines = output.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 0

    def test_diff_against_itself_is_flat(self, capsys, trace_path):
        import json

        assert main(["obs", "diff", trace_path, trace_path, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        for row in rows:
            assert row["ratio"] == pytest.approx(1.0)

    def test_chrome_defaults_output_next_to_trace(self, capsys, trace_path):
        import json

        assert main(["obs", "chrome", trace_path]) == 0
        out = capsys.readouterr().out
        expected = f"{trace_path}.chrome.json"
        assert expected in out
        document = json.loads(open(expected, encoding="utf-8").read())
        assert any(event["ph"] == "X" for event in document["traceEvents"])

    def test_prom_from_trace(self, capsys, trace_path):
        assert main(["obs", "prom", trace_path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_trace_events_span_start_total counter" in out

    def test_prom_from_stats_json_document(self, capsys, tmp_path):
        assert main(["stats", "last-writer", "--json"]) == 0
        document = capsys.readouterr().out
        path = tmp_path / "stats.json"
        path.write_text(document, encoding="utf-8")
        assert main(["obs", "prom", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_explore_states_total" in out

    def test_prom_empty_input_exits_loudly(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["obs", "prom", str(empty)])

    def test_refute_progress_flag_reports_on_stderr(self, capsys):
        assert main(["refute", "last-writer", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "states" in err


class TestConstructions:
    def test_boost_kset(self, capsys):
        assert main(["boost-kset", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "3 failures: ok=True" in out

    def test_boost_fd(self, capsys):
        assert main(["boost-fd", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 failures: ok=True" in out

    def test_paxos(self, capsys):
        assert main(["paxos", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "ok=True" in out


class TestSim:
    def test_sim_benign_exchange_exits_0(self, capsys):
        assert main(["sim", "exchange", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "exchange(n=2, f=0)" in out
        assert "-> ok" in out

    def test_sim_lossy_exchange_finds_violation_and_saves_script(
        self, capsys, tmp_path
    ):
        script = str(tmp_path / "run.json")
        code = main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION modified-termination" in out
        assert "repro sim --replay" in out

    def test_sim_replay_round_trip(self, capsys, tmp_path):
        script = str(tmp_path / "run.json")
        main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        capsys.readouterr()
        assert main(["sim", "--replay", script]) == 0
        out = capsys.readouterr().out
        assert "Replay OK" in out

    def test_sim_replay_detects_tampering(self, capsys, tmp_path):
        import json

        script = str(tmp_path / "run.json")
        main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        capsys.readouterr()
        document = json.loads(open(script).read())
        document["actions"] = list(reversed(document["actions"]))
        open(script, "w").write(json.dumps(document))
        assert main(["sim", "--replay", script]) == 1
        assert "REPLAY MISMATCH" in capsys.readouterr().out

    def test_sim_json_output(self, capsys):
        import json

        assert main(["sim", "exchange", "--seed", "1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["candidate"]["family"] == "exchange"
        assert document["violations"] == []

    def test_sim_requires_family_or_replay(self):
        with pytest.raises(SystemExit):
            main(["sim"])

    def test_sim_rejects_malformed_faults(self):
        with pytest.raises(SystemExit):
            main(["sim", "exchange", "--faults", "drop=lots"])
        with pytest.raises(SystemExit):
            main(["sim", "exchange", "--faults", "explode=1"])


class TestFuzz:
    def test_fuzz_expect_violation_finds_and_saves(self, capsys, tmp_path):
        script = str(tmp_path / "cex.json")
        code = main(
            ["fuzz", "--family", "exchange", "--faults", "drop=1",
             "--seed", "19", "--expect-violation", "-o", script]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "counterexample" in out
        assert "% shrunk" in out
        # the saved script replays bit-for-bit
        assert main(["sim", "--replay", script]) == 0
        assert "Replay OK" in capsys.readouterr().out

    def test_fuzz_expect_violation_fails_on_benign_candidate(self, capsys):
        code = main(
            ["fuzz", "--family", "exchange", "--seed", "3", "--runs", "4",
             "--campaigns", "1", "--expect-violation"]
        )
        assert code == 1
        assert "none found" in capsys.readouterr().err

    def test_fuzz_json_report(self, capsys):
        import json

        assert main(["fuzz", "--campaigns", "2", "--runs", "2", "--seed", "9",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["specs_tried"] >= 1
        assert "schedules_per_second" in document

    def test_fuzz_faults_requires_single_family(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--faults", "drop=1"])
