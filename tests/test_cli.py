"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestVersion:
    def test_version_flag_prints_the_package_version(self, capsys):
        from repro.serve import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {package_version()}"


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "delegation" in out
        assert "boost-kset" in out


class TestRefute:
    def test_refute_delegation(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        out = capsys.readouterr().out
        assert "refuted:   True" in out
        assert "claim4.1" in out

    def test_refute_last_writer(self, capsys):
        assert main(["refute", "last-writer"]) == 0
        out = capsys.readouterr().out
        assert "claim5.1b" in out

    def test_unknown_candidate_rejected(self):
        with pytest.raises(SystemExit):
            main(["refute", "nonsense"])

    def test_reports_exploration_and_elapsed(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        out = capsys.readouterr().out
        assert "Explored" in out and "states" in out and "transitions" in out

    def test_budget_exhaustion_exits_2(self, capsys):
        assert main(["refute", "delegation", "--max-states", "50"]) == 2
        out = capsys.readouterr().out
        assert "Exploration budget exhausted" in out
        assert "Explored 50 states" in out

    def test_seed_flag_runs_deterministic_probe(self, capsys):
        assert main(["refute", "delegation", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["refute", "delegation", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        probe_lines = [
            line for line in first.splitlines() if line.startswith("probe[")
        ]
        assert probe_lines and "seed=7" in probe_lines[0]
        assert probe_lines == [
            line for line in second.splitlines() if line.startswith("probe[")
        ]


class TestEngineFlags:
    def test_workers_flag_same_verdict(self, capsys):
        assert main(["refute", "delegation", "-n", "2", "-f", "0"]) == 0
        sequential = capsys.readouterr().out
        assert main(["refute", "delegation", "-n", "2", "-f", "0", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda out: [
            line
            for line in out.splitlines()
            if not line.startswith(("Explored", "Run id:"))
        ]
        assert strip(parallel) == strip(sequential)

    def test_deadline_exhaustion_exits_2(self, capsys):
        assert main(["refute", "delegation", "--deadline", "1e-9"]) == 2
        out = capsys.readouterr().out
        assert "Exploration budget exhausted" in out
        assert "deadline" in out

    def test_interrupted_run_resumes_to_same_verdict(self, capsys, tmp_path):
        checkpoints = str(tmp_path / "ckpt")
        assert main(["refute", "delegation"]) == 0
        uninterrupted = capsys.readouterr().out
        # Interrupt: a states budget too small for the Lemma 4 chain.
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                ]
            )
            == 2
        )
        interrupted = capsys.readouterr().out
        assert "checkpoint:" in interrupted
        # Resume with the full budget: same verdict as never interrupted.
        assert main(["refute", "delegation", "--resume", checkpoints]) == 0
        resumed = capsys.readouterr().out
        strip = lambda out: [
            line
            for line in out.splitlines()
            if not line.startswith(("Explored", "Run id:"))
        ]
        assert strip(resumed) == strip(uninterrupted)


class TestJsonOutput:
    def test_json_document_replaces_narrative(self, capsys):
        import json

        assert main(["refute", "delegation", "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)  # the whole stdout is one document
        assert document["candidate"] == {"name": "delegation", "n": 3, "f": 1}
        assert document["verdict"]["refuted"] is True
        assert document["verdict"]["mechanism"]
        assert document["verdict"]["lemma4"]["bivalent_index"] is not None
        assert document["engine"]["states"] > 0
        assert "refuted:" not in out  # narrative suppressed

    def test_json_budget_exhaustion_is_actionable(self, capsys, tmp_path):
        import json

        checkpoints = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                    "--json",
                ]
            )
            == 2
        )
        document = json.loads(capsys.readouterr().out)
        assert document["verdict"] is None
        assert document["error"]["error"] == "budget_exhausted"
        assert document["error"]["resource"] == "states"
        assert document["error"]["checkpoint"]
        assert "--resume" in document["error"]["resume_command"]

    def test_stats_json_includes_metrics(self, capsys):
        import json

        assert main(["stats", "delegation", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["counters"]["explore.states"] > 0

    def test_trace_json_reports_trace_file(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "delegation", "-o", "t.jsonl", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["path"] == "t.jsonl"
        assert document["trace"]["events"] > 0


class TestBudgetExhaustionPath:
    def test_exit_2_prints_checkpoint_and_resume_command(self, capsys, tmp_path):
        checkpoints = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--max-states",
                    "50",
                    "--checkpoint",
                    checkpoints,
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "Checkpoint: " in out
        assert f"--resume {checkpoints}" in out


class TestChaosFlags:
    def test_chaos_kill_recovers_to_same_verdict(self, capsys, monkeypatch):
        assert main(["refute", "delegation", "--workers", "2"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CHAOS", "kill=2:0")
        assert main(["refute", "delegation", "--workers", "2"]) == 0
        chaotic = capsys.readouterr().out
        strip = lambda out: [
            line
            for line in out.splitlines()
            if not line.startswith(("Explored", "engine:", "Run id:"))
        ]
        assert strip(chaotic) == strip(clean)

    def test_max_worker_restarts_flag_accepted(self, capsys):
        assert (
            main(
                [
                    "refute",
                    "delegation",
                    "--workers",
                    "2",
                    "--max-worker-restarts",
                    "0",
                ]
            )
            == 0
        )


class TestTrace:
    def test_trace_writes_replayable_jsonl(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "delegation", "-o", "out.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "events -> out.jsonl" in out
        from repro.obs.replay import load_events, split_runs

        events = load_events(tmp_path / "out.jsonl")
        assert events
        assert any(
            segment[0].data.get("op") == "run_silenced"
            for segment in split_runs(events)
        )

    def test_trace_default_output_name(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "last-writer"]) == 0
        assert (tmp_path / "last-writer-trace.jsonl").exists()


class TestStats:
    def test_stats_reports_nonzero_exploration(self, capsys):
        assert main(["stats", "delegation"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "explore.states" in line:
                assert int(line.split()[-1]) > 0
                break
        else:
            raise AssertionError("explore.states missing from stats output")
        assert any(
            "explore.transitions" in line and int(line.split()[-1]) > 0
            for line in out.splitlines()
        )
        assert "pipeline.wall_seconds" in out


class TestObs:
    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["trace", "last-writer", "-o", str(path)]) == 0
        capsys.readouterr()
        return str(path)

    def test_summarize_renders_span_table(self, capsys, trace_path):
        assert main(["obs", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "engine.run" in out
        assert "p95_ms" in out

    def test_summarize_json(self, capsys, trace_path):
        import json

        assert main(["obs", "summarize", trace_path, "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["engine.run"]["count"] >= 1
        assert set(profile["engine.run"]["statuses"]) == {"ok"}

    def test_flame_writes_folded_stacks(self, capsys, tmp_path, trace_path):
        output = tmp_path / "stacks.folded"
        assert main(["obs", "flame", trace_path, "-o", str(output)]) == 0
        assert f"Wrote {output}" in capsys.readouterr().out
        lines = output.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 0

    def test_diff_against_itself_is_flat(self, capsys, trace_path):
        import json

        assert main(["obs", "diff", trace_path, trace_path, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        for row in rows:
            assert row["ratio"] == pytest.approx(1.0)

    def test_chrome_defaults_output_next_to_trace(self, capsys, trace_path):
        import json

        assert main(["obs", "chrome", trace_path]) == 0
        out = capsys.readouterr().out
        expected = f"{trace_path}.chrome.json"
        assert expected in out
        document = json.loads(open(expected, encoding="utf-8").read())
        assert any(event["ph"] == "X" for event in document["traceEvents"])

    def test_prom_from_trace(self, capsys, trace_path):
        assert main(["obs", "prom", trace_path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_trace_events_span_start_total counter" in out

    def test_prom_from_stats_json_document(self, capsys, tmp_path):
        assert main(["stats", "last-writer", "--json"]) == 0
        document = capsys.readouterr().out
        path = tmp_path / "stats.json"
        path.write_text(document, encoding="utf-8")
        assert main(["obs", "prom", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_explore_states_total" in out

    def test_prom_empty_input_exits_loudly(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["obs", "prom", str(empty)])

    def test_refute_progress_flag_reports_on_stderr(self, capsys):
        assert main(["refute", "last-writer", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "states" in err


class TestConstructions:
    def test_boost_kset(self, capsys):
        assert main(["boost-kset", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "3 failures: ok=True" in out

    def test_boost_fd(self, capsys):
        assert main(["boost-fd", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 failures: ok=True" in out

    def test_paxos(self, capsys):
        assert main(["paxos", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "ok=True" in out


class TestSim:
    def test_sim_benign_exchange_exits_0(self, capsys):
        assert main(["sim", "exchange", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "exchange(n=2, f=0)" in out
        assert "-> ok" in out

    def test_sim_lossy_exchange_finds_violation_and_saves_script(
        self, capsys, tmp_path
    ):
        script = str(tmp_path / "run.json")
        code = main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATION modified-termination" in out
        assert "repro sim --replay" in out

    def test_sim_replay_round_trip(self, capsys, tmp_path):
        script = str(tmp_path / "run.json")
        main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        capsys.readouterr()
        assert main(["sim", "--replay", script]) == 0
        out = capsys.readouterr().out
        assert "Replay OK" in out

    def test_sim_replay_detects_tampering(self, capsys, tmp_path):
        import json

        script = str(tmp_path / "run.json")
        main(
            ["sim", "exchange", "--faults", "drop=1", "--seed", "18",
             "--fault-rate", "0.4", "-o", script]
        )
        capsys.readouterr()
        document = json.loads(open(script).read())
        document["actions"] = list(reversed(document["actions"]))
        open(script, "w").write(json.dumps(document))
        assert main(["sim", "--replay", script]) == 1
        assert "REPLAY MISMATCH" in capsys.readouterr().out

    def test_sim_json_output(self, capsys):
        import json

        assert main(["sim", "exchange", "--seed", "1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["candidate"]["family"] == "exchange"
        assert document["violations"] == []

    def test_sim_requires_family_or_replay(self):
        with pytest.raises(SystemExit):
            main(["sim"])

    def test_sim_rejects_malformed_faults(self):
        with pytest.raises(SystemExit):
            main(["sim", "exchange", "--faults", "drop=lots"])
        with pytest.raises(SystemExit):
            main(["sim", "exchange", "--faults", "explode=1"])


class TestFuzz:
    def test_fuzz_expect_violation_finds_and_saves(self, capsys, tmp_path):
        script = str(tmp_path / "cex.json")
        code = main(
            ["fuzz", "--family", "exchange", "--faults", "drop=1",
             "--seed", "19", "--expect-violation", "-o", script]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "counterexample" in out
        assert "% shrunk" in out
        # the saved script replays bit-for-bit
        assert main(["sim", "--replay", script]) == 0
        assert "Replay OK" in capsys.readouterr().out

    def test_fuzz_expect_violation_fails_on_benign_candidate(self, capsys):
        code = main(
            ["fuzz", "--family", "exchange", "--seed", "3", "--runs", "4",
             "--campaigns", "1", "--expect-violation"]
        )
        assert code == 1
        assert "none found" in capsys.readouterr().err

    def test_fuzz_json_report(self, capsys):
        import json

        assert main(["fuzz", "--campaigns", "2", "--runs", "2", "--seed", "9",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["specs_tried"] >= 1
        assert "schedules_per_second" in document

    def test_fuzz_faults_requires_single_family(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--faults", "drop=1"])


class TestRuns:
    def _refute(self, capsys, runs_dir):
        assert main(["refute", "last-writer", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("Run id:"))
        return line.split()[-1]

    def test_refute_registers_run_and_show_reconstructs_it(
        self, capsys, tmp_path
    ):
        runs_dir = str(tmp_path / "runs")
        run_id = self._refute(capsys, runs_dir)
        assert run_id.startswith("refute-")
        assert main(["runs", "show", run_id, "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert f"Run:      {run_id}" in out
        assert "Status:   completed" in out
        assert "Kind:     refute  last-writer(n=3,f=1)" in out
        assert "Verdict:" in out and '"refuted": true' in out
        assert "Counters:" in out and "explore.states" in out
        assert "Phases:" in out

    def test_show_accepts_unique_prefix(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        run_id = self._refute(capsys, runs_dir)
        assert main(["runs", "show", run_id[:14], "--runs-dir", runs_dir]) == 0
        assert run_id in capsys.readouterr().out

    def test_list_renders_and_filters_by_kind(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        run_id = self._refute(capsys, runs_dir)
        assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert run_id in out and "completed" in out
        assert main(
            ["runs", "list", "--runs-dir", runs_dir, "--kind", "sim"]
        ) == 0
        assert run_id not in capsys.readouterr().out

    def test_list_json(self, capsys, tmp_path):
        import json

        runs_dir = str(tmp_path / "runs")
        run_id = self._refute(capsys, runs_dir)
        assert main(["runs", "list", "--runs-dir", runs_dir, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["run_id"] for row in rows] == [run_id]
        assert rows[0]["status"] == "completed"

    def test_diff_between_two_runs(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        before = self._refute(capsys, runs_dir)
        after = self._refute(capsys, runs_dir)
        assert main(
            ["runs", "diff", before, after, "--runs-dir", runs_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "METRIC" in out and "RATIO" in out
        assert "explore.states" in out
        assert "1.00x" in out  # identical runs diff flat

    def test_tail_of_finished_run_exits_immediately(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        run_id = self._refute(capsys, runs_dir)
        assert main(["runs", "tail", run_id, "--runs-dir", runs_dir]) == 0
        assert f"{run_id}: completed" in capsys.readouterr().out

    def test_gc_compacts_and_reports(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        self._refute(capsys, runs_dir)
        self._refute(capsys, runs_dir)
        assert main(
            ["runs", "gc", "--runs-dir", runs_dir, "--keep", "1"]
        ) == 0
        assert "1 runs kept, 1 dropped" in capsys.readouterr().out

    def test_runs_dir_none_disables_the_ledger(self, capsys, tmp_path):
        assert main(["refute", "last-writer", "--runs-dir", "none"]) == 0
        assert "Run id:" not in capsys.readouterr().out
        with pytest.raises(SystemExit, match="disabled"):
            main(["runs", "list", "--runs-dir", "none"])

    def test_unknown_run_id_exits_loudly(self, tmp_path):
        runs_dir = str(tmp_path / "runs")
        with pytest.raises(SystemExit, match="no run"):
            main(["runs", "show", "missing", "--runs-dir", runs_dir])

    def test_json_refute_carries_run_id(self, capsys, tmp_path):
        import json

        runs_dir = str(tmp_path / "runs")
        assert main(
            ["refute", "last-writer", "--json", "--runs-dir", runs_dir]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["run_id"].startswith("refute-")

    def test_sim_and_fuzz_register_runs(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        assert main(
            ["sim", "exchange", "--seed", "3", "--runs-dir", runs_dir]
        ) == 0
        capsys.readouterr()
        assert main(
            ["fuzz", "--campaigns", "1", "--runs", "2", "--seed", "9",
             "--runs-dir", runs_dir]
        ) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--runs-dir", runs_dir, "--json"]) == 0
        import json

        rows = json.loads(capsys.readouterr().out)
        kinds = sorted(row["kind"] for row in rows)
        assert kinds == ["fuzz", "sim"]
        fuzz = next(row for row in rows if row["kind"] == "fuzz")
        assert fuzz["counters"]["sim.fuzz.schedules"] >= 1

    def test_trace_events_carry_run_id(self, capsys, tmp_path):
        import json

        runs_dir = str(tmp_path / "runs")
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "last-writer", "-o", str(trace),
             "--runs-dir", runs_dir]
        ) == 0
        out = capsys.readouterr().out
        run_id = next(
            l for l in out.splitlines() if l.startswith("Run id:")
        ).split()[-1]
        for line in trace.read_text().splitlines():
            assert json.loads(line)["run"] == run_id

    def test_prom_auto_labels_series_with_the_run(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "last-writer", "-o", str(trace),
             "--runs-dir", runs_dir]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "prom", str(trace)]) == 0
        out = capsys.readouterr().out
        assert 'run="trace-' in out
        # An explicit --label run=... wins over the derived one.
        assert main(
            ["obs", "prom", str(trace), "--label", "run=custom"]
        ) == 0
        out = capsys.readouterr().out
        assert 'run="custom"' in out
        assert 'run="trace-' not in out


class TestRunsCrashSafety:
    def test_sigkill_mid_run_derives_interrupted_with_resume(
        self, capsys, tmp_path
    ):
        """SIGKILL a store-backed 2-worker run mid-flight; the ledger must
        derive ``interrupted`` (no terminal record) and still surface the
        resume command written into the opening record."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        runs_dir = tmp_path / "runs"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "refute", "tob",
             "--max-states", "400000", "--workers", "2",
             "--store", f"sqlite:{tmp_path / 'store'}",
             "--checkpoint", str(tmp_path / "ck"),
             "--runs-dir", str(runs_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        try:
            heartbeats = runs_dir / "heartbeats"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if heartbeats.is_dir() and list(heartbeats.glob("*.json")):
                    break
                assert child.poll() is None, (
                    "run finished before a heartbeat appeared"
                )
                time.sleep(0.1)
            else:
                pytest.fail("no heartbeat within 60s")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        assert main(["runs", "list", "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "interrupted" in out
        run_id = next(
            line.split()[0]
            for line in out.splitlines()
            if line.startswith("refute-")
        )
        assert main(["runs", "show", run_id, "--runs-dir", str(runs_dir)]) == 0
        out = capsys.readouterr().out
        assert "Status:   interrupted (derived: no terminal record)" in out
        assert "Resume:   repro refute tob" in out
        assert "--resume" in out
        # gc finalizes the interruption durably and drops the heartbeat
        assert main(["runs", "gc", "--runs-dir", str(runs_dir)]) == 0
        assert "1 finalized interrupted" in capsys.readouterr().out
