"""Restart tests: journal recovery, checkpoint resume, cache persistence.

The flow mirrors the issue's acceptance criterion without kill-timing
flakiness: a ``fleet=0`` server accepts (and journals) a job it can
never run, stops, and a second server on the same data dir must pick
the job up — same id — and complete it.  A third server then answers
the identical resubmission from the persisted verdict cache.
"""

from .conftest import FAST_SPEC


class TestRestartRecovery:
    def test_inflight_job_survives_restart_and_cache_persists(
        self, serve_factory, tmp_path
    ):
        # Server 1 accepts the job but has no fleet: the job is journaled
        # as submitted and still queued when the server goes down.
        handle1, client1 = serve_factory(fleet=0, data_dir=tmp_path)
        _, _, submitted = client1.submit(FAST_SPEC, tenant="alice")
        job_id = submitted["id"]
        handle1.stop()
        assert (tmp_path / "jobs.jsonl").exists()

        # Server 2 on the same data dir recovers the job under its
        # original id and runs it to completion.
        handle2, client2 = serve_factory(fleet=1, data_dir=tmp_path)
        status, _, recovered = client2.get(f"/jobs/{job_id}")
        assert status == 200, recovered
        assert recovered["resumed"] is True
        document = client2.poll(job_id)
        assert document["state"] == "completed"
        assert document["verdict"]["refuted"] is True
        assert handle2.server.metrics.snapshot()["counters"][
            "serve.jobs.recovered"
        ] == 1
        handle2.stop()

        # Server 3 has never run anything, yet answers the identical
        # submission from the persisted cache.
        handle3, client3 = serve_factory(fleet=0, data_dir=tmp_path)
        status, headers, answer = client3.submit(FAST_SPEC, tenant="bob")
        assert status == 200
        assert answer["cached"] is True
        assert answer["verdict"] == document["verdict"]
        assert headers["X-Repro-Cache"] == "hit"

    def test_done_jobs_are_not_recovered(self, serve_factory, tmp_path):
        handle1, client1 = serve_factory(fleet=1, data_dir=tmp_path)
        _, _, submitted = client1.submit(FAST_SPEC)
        client1.poll(submitted["id"])
        handle1.stop()

        handle2, client2 = serve_factory(fleet=0, data_dir=tmp_path)
        status, _, _ = client2.get(f"/jobs/{submitted['id']}")
        assert status == 404  # finished: journaled done, not recreated
        _, _, health = client2.get("/healthz")
        assert health["jobs"] == {}
