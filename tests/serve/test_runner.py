"""Runner tests: outcomes, cancellation, and checkpoint resume.

These drive :func:`repro.serve.runner.execute_job` directly (no HTTP, no
event loop) — the fleet calls it exactly this way from a worker thread.
"""

from repro.obs import MetricsRegistry
from repro.serve import (
    CANCELLED,
    COMPLETED,
    EXHAUSTED,
    FAILED,
    Job,
    JobSpec,
    execute_job,
    job_checkpoint_dir,
    job_key,
    job_store_dir,
)


def make_job(document, job_id="job-test", resume=False):
    spec = JobSpec.from_json(document)
    return Job(job_id, spec, job_key(spec), resume=resume)


def run(job, data_dir=None, metrics=None):
    events = []
    return (
        execute_job(
            job,
            data_dir=data_dir,
            publish=events.append,
            metrics=metrics if metrics is not None else MetricsRegistry(),
        ),
        events,
    )


class TestOutcomes:
    def test_fast_candidate_completes_with_a_refutation(self):
        job = make_job({"candidate": "delegation", "n": 2, "f": 0})
        outcome, _ = run(job)
        assert outcome.state == COMPLETED
        assert outcome.verdict["refuted"] is True
        assert outcome.engine_report is not None

    def test_progress_events_flow_through(self):
        job = make_job({"candidate": "delegation", "n": 2, "f": 0})
        _, events = run(job)
        # The reporter throttles, so a short run may publish few events,
        # but any published one carries the structured snapshot fields.
        for event in events:
            assert event["kind"] == "progress"
            assert set(event) >= {"states", "frontier", "workers", "elapsed"}

    def test_exhausted_budget_is_a_state_not_an_exception(self):
        job = make_job(
            {"candidate": "delegation", "budget": {"max_states": 50}}
        )
        outcome, _ = run(job)
        assert outcome.state == EXHAUSTED
        assert outcome.verdict is None
        assert outcome.error["error"] == "budget_exhausted"
        assert "version" in outcome.error

    def test_preset_cancel_event_yields_cancelled(self):
        job = make_job({"candidate": "delegation", "n": 3, "f": 1})
        job.cancel_event.set()
        outcome, _ = run(job)
        assert outcome.state == CANCELLED
        assert outcome.error["error"] == "cancelled"
        assert outcome.error["status"] == 499

    def test_pipeline_exception_yields_failed(self, monkeypatch):
        import repro.analysis

        def boom(*args, **kwargs):
            raise RuntimeError("the pipeline broke")

        monkeypatch.setattr(repro.analysis, "refute_candidate", boom)
        job = make_job({"candidate": "last-writer"})
        outcome, _ = run(job)
        assert outcome.state == FAILED
        assert "the pipeline broke" in outcome.error["detail"]
        assert "traceback" in outcome.error


class TestCheckpointResume:
    def test_exhausted_run_resumes_and_completes(self, tmp_path):
        document = {"candidate": "delegation", "n": 2, "f": 0}
        starved = make_job({**document, "budget": {"max_states": 20}})
        outcome, _ = run(starved, data_dir=tmp_path)
        assert outcome.state == EXHAUSTED
        checkpoints = job_checkpoint_dir(tmp_path, starved.key)
        assert checkpoints.is_dir() and any(checkpoints.iterdir())

        metrics = MetricsRegistry()
        retry = make_job(document, job_id="job-retry", resume=True)
        assert retry.key == starved.key  # budget is not part of the key
        outcome, _ = run(retry, data_dir=tmp_path, metrics=metrics)
        assert outcome.state == COMPLETED
        assert outcome.verdict["refuted"] is True
        assert metrics.snapshot()["counters"].get("engine.resumes", 0) >= 1
        # Terminal success cleans the checkpoint directory up.
        assert not checkpoints.exists()

    def test_no_data_dir_means_no_checkpoints(self, tmp_path):
        job = make_job({"candidate": "delegation", "n": 2, "f": 0})
        outcome, _ = run(job, data_dir=None)
        assert outcome.state == COMPLETED
        assert not any(tmp_path.iterdir())


class TestStoreJobs:
    def test_store_backed_job_completes(self, tmp_path):
        job = make_job({"candidate": "delegation", "n": 3, "f": 1, "store": "sqlite"})
        outcome, _ = run(job, data_dir=tmp_path)
        assert outcome.state == COMPLETED
        assert outcome.verdict["refuted"] is True
        assert outcome.engine_report["store_backend"] == "sqlite"
        # Terminal success cleans the per-key store directory up.
        assert not job_store_dir(tmp_path, job.key).exists()

    def test_store_backed_job_without_data_dir_uses_scratch(self, tmp_path):
        job = make_job({"candidate": "delegation", "n": 3, "f": 1, "store": "mmap"})
        outcome, _ = run(job, data_dir=None)
        assert outcome.state == COMPLETED
        assert outcome.engine_report["store_backend"] == "mmap"
        assert not any(tmp_path.iterdir())

    def test_exhausted_store_job_resumes_from_segments(self, tmp_path):
        document = {"candidate": "delegation", "n": 3, "f": 1, "store": "sqlite"}
        starved = make_job({**document, "budget": {"max_states": 60}})
        outcome, _ = run(starved, data_dir=tmp_path)
        assert outcome.state == EXHAUSTED
        # The store directory survives a non-terminal outcome for resume.
        store_dir = job_store_dir(tmp_path, starved.key)
        assert store_dir.is_dir() and any(store_dir.iterdir())

        retry = make_job(document, job_id="job-retry", resume=True)
        outcome, _ = run(retry, data_dir=tmp_path)
        assert outcome.state == COMPLETED
        assert outcome.verdict["refuted"] is True
        assert not store_dir.exists()

    def test_rss_limit_is_clamped_and_reported(self, tmp_path):
        job = make_job(
            {"candidate": "delegation", "n": 3, "f": 1, "rss_limit_mb": 4096}
        )
        events = []
        outcome = execute_job(
            job,
            data_dir=None,
            publish=events.append,
            metrics=MetricsRegistry(),
            max_rss_limit_mb=1024,
        )
        assert outcome.state == COMPLETED
        assert outcome.engine_report["rss_limit_mb"] == 1024
        assert outcome.engine_report["peak_rss_kb"] > 0
