"""Scheduler tests: token buckets, shed decisions, deficit round-robin."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.serve import FairScheduler, LoadShedder, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst spent
        clock.advance(1.0)
        assert bucket.try_take()  # one token refilled

    def test_retry_after_estimates_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.retry_after() == pytest.approx(0.0)

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.try_take(3.0)
        assert not bucket.try_take(0.5)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestLoadShedder:
    def test_admits_below_watermarks(self):
        shedder = LoadShedder(max_queue_depth=4, max_tenant_depth=2)
        assert shedder.check(3, 1, fleet=1) is None

    def test_sheds_at_queue_watermark(self):
        shedder = LoadShedder(max_queue_depth=4, max_tenant_depth=2)
        decision = shedder.check(4, 0, fleet=1)
        assert decision is not None and decision.reason == "queue_full"
        assert decision.retry_after >= 1.0

    def test_sheds_at_tenant_watermark(self):
        shedder = LoadShedder(max_queue_depth=100, max_tenant_depth=2)
        decision = shedder.check(2, 2, fleet=1)
        assert decision is not None and decision.reason == "tenant_queue_full"

    def test_retry_hint_tracks_observed_durations(self):
        shedder = LoadShedder(max_queue_depth=4, default_job_seconds=1.0)
        for _ in range(50):
            shedder.observe_job_seconds(10.0)
        slow = shedder.check(4, 0, fleet=1)
        fast_fleet = shedder.check(4, 0, fleet=8)
        assert slow.retry_after > fast_fleet.retry_after
        assert slow.retry_after <= 300.0  # clamped

    def test_rejects_silly_watermarks(self):
        with pytest.raises(ValueError):
            LoadShedder(max_queue_depth=0)


@dataclass
class FakeSpec:
    tenant: str
    cost: int


@dataclass
class FakeJob:
    spec: FakeSpec
    name: str


def fake_job(name, tenant, cost):
    return FakeJob(FakeSpec(tenant, cost), name)


class TestFairScheduler:
    def test_fifo_within_one_tenant(self):
        scheduler = FairScheduler(quantum=10)
        jobs = [fake_job(f"a{i}", "alice", 5) for i in range(3)]
        for job in jobs:
            scheduler.enqueue(job)
        assert [scheduler.poll().name for _ in range(3)] == ["a0", "a1", "a2"]
        assert scheduler.poll() is None

    def test_expensive_tenant_cannot_starve_cheap_tenant(self):
        scheduler = FairScheduler(quantum=10)
        for i in range(4):
            scheduler.enqueue(fake_job(f"big{i}", "alice", 100))
        for i in range(4):
            scheduler.enqueue(fake_job(f"small{i}", "bob", 1))
        order = [scheduler.poll().name for _ in range(8)]
        assert scheduler.poll() is None
        # All of bob's cheap jobs dispatch before alice's last big one:
        # DRR grants by work, so 4 units of bob never wait for 400 of alice.
        assert order.index("small3") < order.index("big3")

    def test_depth_accounting(self):
        scheduler = FairScheduler()
        job = fake_job("a0", "alice", 1)
        scheduler.enqueue(job)
        scheduler.enqueue(fake_job("b0", "bob", 1))
        assert scheduler.depth == 2
        assert scheduler.tenant_depth("alice") == 1
        assert scheduler.tenant_depth("nobody") == 0
        assert scheduler.remove(job)
        assert not scheduler.remove(job)  # already gone
        assert scheduler.depth == 1

    def test_costs_beyond_the_quantum_still_dispatch(self):
        scheduler = FairScheduler(quantum=1)
        scheduler.enqueue(fake_job("huge", "alice", 10_000))
        assert scheduler.poll().name == "huge"

    def test_idle_tenant_does_not_bank_deficit(self):
        scheduler = FairScheduler(quantum=10)
        scheduler.enqueue(fake_job("a0", "alice", 1))
        assert scheduler.poll().name == "a0"
        # Alice drained; several polls on an empty scheduler must reset
        # her deficit rather than growing it.
        assert scheduler.poll() is None
        scheduler.enqueue(fake_job("b0", "bob", 1))
        assert scheduler.poll().name == "b0"

    def test_next_job_wakes_on_enqueue(self):
        async def scenario():
            scheduler = FairScheduler()
            waiter = asyncio.create_task(scheduler.next_job())
            await asyncio.sleep(0)  # the waiter parks
            scheduler.enqueue(fake_job("a0", "alice", 1))
            return (await asyncio.wait_for(waiter, timeout=5)).name

        assert asyncio.run(scenario()) == "a0"

    def test_rejects_silly_quantum(self):
        with pytest.raises(ValueError):
            FairScheduler(quantum=0)
