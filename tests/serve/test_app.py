"""End-to-end HTTP tests against a real server on an ephemeral port.

The issue's acceptance criteria live here: the HTTP verdict matches the
CLI's ``--json`` verdict byte for byte, an identical resubmission is
served from cache (observable via ``serve.cache.hits`` and the absence
of new ``engine.run`` spans), and over-admission yields 429 with
``Retry-After``.
"""

import json

from repro.__main__ import main
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.serve import package_version

from .conftest import FAST_SPEC


def engine_run_spans(sink):
    return [
        event
        for event in sink.events()
        if event.kind == "span_start" and event.data.get("name") == "engine.run"
    ]


class TestHealthz:
    def test_reports_version_and_shape(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.get("/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["version"] == package_version()
        assert document["fleet"] == 0
        assert "cache" in document and "watermarks" in document


class TestVerdicts:
    def test_http_verdict_matches_the_cli(self, serve_factory, capsys):
        assert main(
            ["refute", "delegation", "-n", "2", "-f", "0", "--json"]
        ) == 0
        cli_verdict = json.loads(capsys.readouterr().out)["verdict"]

        _, client = serve_factory(fleet=1)
        status, headers, submitted = client.submit(FAST_SPEC)
        assert status == 202
        assert headers["Location"] == f"/jobs/{submitted['id']}"
        document = client.poll(submitted["id"])
        assert document["state"] == "completed"
        assert document["verdict"] == cli_verdict
        assert document["engine"] is not None
        assert document["wall_seconds"] > 0

    def test_exhausted_budget_surfaces_as_a_state(self, serve_factory):
        _, client = serve_factory(fleet=1)
        starved = {**FAST_SPEC, "budget": {"max_states": 20}}
        _, _, submitted = client.submit(starved)
        document = client.poll(submitted["id"])
        assert document["state"] == "exhausted"
        assert document["error"]["error"] == "budget_exhausted"
        assert document["verdict"] is None


class TestCaching:
    def test_identical_resubmission_is_served_from_cache(self, serve_factory):
        sink = RingBufferSink()
        metrics = MetricsRegistry()
        handle, client = serve_factory(
            fleet=1, tracer=Tracer(sink), metrics=metrics
        )
        _, _, submitted = client.submit(FAST_SPEC, tenant="alice")
        client.poll(submitted["id"])
        runs_before = len(engine_run_spans(sink))
        assert runs_before > 0

        status, headers, document = client.submit(FAST_SPEC, tenant="bob")
        assert status == 200
        assert document["cached"] is True
        assert document["verdict"]["refuted"] is True
        assert headers["X-Repro-Cache"] == "hit"
        # Serving from cache ran no exploration at all.
        assert len(engine_run_spans(sink)) == runs_before
        assert metrics.snapshot()["counters"]["serve.cache.hits"] == 1

    def test_symmetry_equivalent_submission_hits_the_same_entry(
        self, serve_factory
    ):
        _, client = serve_factory(fleet=1)
        _, _, submitted = client.submit(
            {**FAST_SPEC, "proposals": {"0": 0, "1": 1}}
        )
        client.poll(submitted["id"])
        # The mirror-image proposal assignment is the same question.
        status, _, document = client.submit(
            {**FAST_SPEC, "proposals": {"0": 1, "1": 0}}
        )
        assert status == 200
        assert document["cached"] is True

    def test_larger_budget_request_misses_a_smaller_budget_entry(
        self, serve_factory
    ):
        _, client = serve_factory(fleet=1)
        _, _, submitted = client.submit(FAST_SPEC)
        client.poll(submitted["id"])
        status, _, document = client.submit(
            {**FAST_SPEC, "budget": {"max_states": 2_000_000}}
        )
        assert status == 202  # a fresh job, not a cache answer
        assert "cached" not in document or document["cached"] is False


class TestCoalescing:
    def test_identical_inflight_submission_coalesces(self, serve_factory):
        _, client = serve_factory(fleet=0)  # accept-only: job stays queued
        _, _, first = client.submit(FAST_SPEC)
        status, headers, second = client.submit(FAST_SPEC)
        assert status == 202
        assert second["coalesced"] is True
        assert second["id"] == first["id"]
        assert headers["Location"] == f"/jobs/{first['id']}"


class TestAdmission:
    def test_queue_watermark_sheds_with_retry_after(self, serve_factory):
        _, client = serve_factory(fleet=0, max_queue_depth=2)
        for n in (2, 3):  # distinct keys so nothing coalesces
            status, _, _ = client.submit({"candidate": "delegation", "n": n})
            assert status == 202
        status, headers, document = client.submit(
            {"candidate": "delegation", "n": 4}
        )
        assert status == 429
        assert document["error"] == "overloaded"
        assert document["detail"] == "queue_full"
        assert float(headers["Retry-After"]) >= 1.0
        assert document["version"] == package_version()

    def test_tenant_token_bucket_limits_submission_rate(self, serve_factory):
        _, client = serve_factory(
            fleet=0,
            max_queue_depth=100,
            max_tenant_depth=100,
            tenant_rate=0.001,
            tenant_burst=2,
        )
        for n in (2, 3):
            status, _, _ = client.submit(
                {"candidate": "delegation", "n": n}, tenant="greedy"
            )
            assert status == 202
        status, headers, document = client.submit(
            {"candidate": "delegation", "n": 4}, tenant="greedy"
        )
        assert status == 429
        assert document["error"] == "rate_limited"
        assert "Retry-After" in headers
        # A different tenant is unaffected.
        status, _, _ = client.submit(
            {"candidate": "delegation", "n": 4}, tenant="patient"
        )
        assert status == 202


class TestCancellation:
    def test_cancel_while_queued(self, serve_factory):
        _, client = serve_factory(fleet=0)
        _, _, submitted = client.submit(FAST_SPEC)
        status, _, document = client.request("DELETE", f"/jobs/{submitted['id']}")
        assert status == 202
        assert document["state"] == "cancelled"
        assert document["error"]["error"] == "cancelled"
        # Cancelling again is idempotent.
        status, _, document = client.request("DELETE", f"/jobs/{submitted['id']}")
        assert status == 200
        assert document["state"] == "cancelled"


class TestEvents:
    def test_stream_ends_with_the_terminal_state(self, serve_factory):
        _, client = serve_factory(fleet=1)
        _, _, submitted = client.submit(FAST_SPEC)
        client.poll(submitted["id"])
        status, _, body = client.get(f"/jobs/{submitted['id']}/events")
        assert status == 200
        frames = [
            json.loads(line[len("data: "):])
            for line in body.splitlines()
            if line.startswith("data: ")
        ]
        assert frames[0] == {
            "kind": "state",
            "state": "queued",
            "t": frames[0]["t"],
            "job": submitted["id"],
        }
        assert frames[-1]["state"] == "completed"
        assert all(frame["job"] == submitted["id"] for frame in frames)


class TestErrors:
    def test_malformed_json_is_a_400_with_version(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.request(
            "POST", "/jobs", body="not json"
        )
        assert status == 400
        assert document["error"] == "bad_request"
        assert document["version"] == package_version()

    def test_unknown_candidate_is_a_400(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.submit({"candidate": "nonsense"})
        assert status == 400
        assert "candidate" in document["detail"]

    def test_unknown_job_is_a_404(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.get("/jobs/job-999999-ffffff")
        assert status == 404
        assert document["error"] == "unknown_job"
        assert document["version"] == package_version()

    def test_unknown_route_is_a_404(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.get("/nope")
        assert status == 404

    def test_wrong_method_is_a_405(self, serve_factory):
        _, client = serve_factory(fleet=0)
        status, _, document = client.request("DELETE", "/jobs")
        assert status == 405


class TestMetricsEndpoint:
    def test_prometheus_text_with_tenant_labels(self, serve_factory):
        _, client = serve_factory(fleet=0)
        client.submit(FAST_SPEC, tenant="alice")
        status, headers, text = client.get("/metrics")
        assert status == 200
        assert "text/plain" in headers["Content-Type"]
        assert 'repro_serve_admitted_total{tenant="alice"} 1' in text
        assert "repro_serve_queue_depth 1" in text
        assert "# TYPE repro_serve_jobs_submitted_total counter" in text


class TestJobListing:
    def test_lists_submitted_jobs(self, serve_factory):
        _, client = serve_factory(fleet=0)
        _, _, submitted = client.submit(FAST_SPEC, tenant="alice")
        status, _, document = client.get("/jobs")
        assert status == 200
        assert document["jobs"] == [
            {
                "id": submitted["id"],
                "state": "queued",
                "tenant": "alice",
                "candidate": "delegation",
            }
        ]


class TestRunLedger:
    def test_job_registers_a_linked_run(self, serve_factory, tmp_path):
        from repro.obs import RunLedger

        runs_dir = tmp_path / "runs"
        _, client = serve_factory(fleet=1, runs_dir=str(runs_dir))
        _, _, submitted = client.submit(FAST_SPEC, tenant="alice")
        document = client.poll(submitted["id"])
        assert document["state"] == "completed"
        assert document["run_id"].startswith("serve-")

        ledger = RunLedger(runs_dir)
        record = ledger.find(document["run_id"])
        assert record.kind == "serve"
        assert record.status == "completed"
        assert record.links["job_id"] == submitted["id"]
        assert record.links["tenant"] == "alice"
        assert record.verdict is not None

    def test_no_data_dir_and_no_runs_dir_disables_the_ledger(
        self, serve_factory
    ):
        _, client = serve_factory(fleet=1)
        _, _, submitted = client.submit(FAST_SPEC)
        document = client.poll(submitted["id"])
        assert document["state"] == "completed"
        assert document["run_id"] is None

    def test_runs_dir_off_spelling_disables_even_with_data_dir(
        self, serve_factory, tmp_path
    ):
        _, client = serve_factory(
            fleet=1, data_dir=str(tmp_path / "data"), runs_dir="off"
        )
        _, _, submitted = client.submit(FAST_SPEC)
        document = client.poll(submitted["id"])
        assert document["run_id"] is None
        assert not (tmp_path / "data" / "runs").exists()
