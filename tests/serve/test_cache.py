"""Cache-correctness tests: canonical keys, budget dominance, persistence.

The two acceptance properties from the issue live here:

* symmetry-equivalent submissions (same candidate, relabeled proposals)
  produce the *same* cache key and therefore hit the same entry;
* an entry computed under a smaller budget must NOT satisfy a request
  for a larger one (dominance, componentwise, ``None`` = unlimited).
"""

import json

import pytest

from repro.engine import Budget
from repro.serve import JobSpec, VerdictCache, budget_dominates, job_key


def spec_for(proposals=None, *, candidate="tob", n=3, f=1, reduction="none"):
    document = {"candidate": candidate, "n": n, "f": f, "reduction": reduction}
    if proposals is not None:
        document["proposals"] = {str(k): v for k, v in proposals.items()}
    return JobSpec.from_json(document)


class TestJobKey:
    def test_symmetry_equivalent_proposals_share_a_key(self):
        # tob(3,1): every process is symmetric, so any one-out-of-three
        # placement of the minority proposal is the same question.
        keys = {
            job_key(spec_for({0: 1, 1: 0, 2: 0})),
            job_key(spec_for({0: 0, 1: 1, 2: 0})),
            job_key(spec_for({0: 0, 1: 0, 2: 1})),
        }
        assert len(keys) == 1

    def test_default_proposals_equal_their_explicit_form(self):
        assert job_key(spec_for()) == job_key(spec_for({0: 0, 1: 1, 2: 0}))

    def test_inequivalent_proposals_differ(self):
        assert job_key(spec_for({0: 1, 1: 0, 2: 0})) != job_key(
            spec_for({0: 1, 1: 1, 2: 0})
        )

    def test_candidate_shape_is_part_of_the_key(self):
        base = job_key(spec_for())
        assert job_key(spec_for(candidate="delegation")) != base
        assert job_key(spec_for(f=0)) != base
        assert job_key(spec_for(reduction="symmetry")) != base

    def test_key_is_stable_across_calls(self):
        assert job_key(spec_for()) == job_key(spec_for())


class TestBudgetDominance:
    def test_reflexive(self):
        budget = Budget(max_states=100, deadline_seconds=5.0)
        assert budget_dominates(budget, budget)

    def test_none_is_unlimited(self):
        assert budget_dominates(Budget(), Budget(max_states=10**9))
        assert not budget_dominates(Budget(max_states=10**9), Budget())

    def test_componentwise(self):
        bigger = Budget(max_states=200, deadline_seconds=10.0)
        smaller = Budget(max_states=100, deadline_seconds=5.0)
        assert budget_dominates(bigger, smaller)
        assert not budget_dominates(smaller, bigger)
        # Mixed: more states but less time does not dominate.
        mixed = Budget(max_states=300, deadline_seconds=1.0)
        assert not budget_dominates(mixed, smaller)


KEY_A = b"a" * 16
KEY_B = b"b" * 16
KEY_C = b"c" * 16
VERDICT = {"refuted": True, "mechanism": "hook"}


class TestVerdictCache:
    def test_miss_then_hit(self):
        cache = VerdictCache()
        assert cache.get(KEY_A, Budget(max_states=100)) is None
        cache.put(KEY_A, Budget(max_states=100), VERDICT, "job-1")
        entry = cache.get(KEY_A, Budget(max_states=100))
        assert entry is not None and entry.verdict == VERDICT
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_smaller_budget_entry_does_not_answer_larger_request(self):
        cache = VerdictCache()
        cache.put(KEY_A, Budget(max_states=10_000), VERDICT, "job-1")
        assert cache.get(KEY_A, Budget(max_states=1_000_000)) is None
        assert cache.get(KEY_A, Budget()) is None  # unlimited request

    def test_larger_budget_entry_answers_smaller_request(self):
        cache = VerdictCache()
        cache.put(KEY_A, Budget(), VERDICT, "job-1")  # unlimited run
        assert cache.get(KEY_A, Budget(max_states=10)) is not None

    def test_dominance_frontier_replaces_weaker_entries(self):
        cache = VerdictCache()
        cache.put(KEY_A, Budget(max_states=100), VERDICT, "job-1")
        cache.put(KEY_A, Budget(max_states=1_000), VERDICT, "job-2")
        assert len(cache) == 1  # the weaker entry was dropped
        entry = cache.get(KEY_A, Budget(max_states=50))
        assert entry is not None and entry.job_id == "job-2"

    def test_dominated_put_returns_the_existing_entry(self):
        cache = VerdictCache()
        stored = cache.put(KEY_A, Budget(max_states=1_000), VERDICT, "job-1")
        again = cache.put(KEY_A, Budget(max_states=10), VERDICT, "job-2")
        assert again is stored
        assert len(cache) == 1

    def test_incomparable_budgets_coexist(self):
        cache = VerdictCache()
        cache.put(KEY_A, Budget(max_states=1_000, deadline_seconds=1.0), VERDICT, "j1")
        cache.put(KEY_A, Budget(max_states=10, deadline_seconds=100.0), VERDICT, "j2")
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = VerdictCache(capacity=2)
        cache.put(KEY_A, Budget(max_states=1), VERDICT, "j1")
        cache.put(KEY_B, Budget(max_states=1), VERDICT, "j2")
        cache.get(KEY_A, Budget(max_states=1))  # freshen A; B is now LRU
        cache.put(KEY_C, Budget(max_states=1), VERDICT, "j3")
        assert cache.get(KEY_B, Budget(max_states=1)) is None
        assert cache.get(KEY_A, Budget(max_states=1)) is not None
        assert cache.stats()["evictions"] == 1

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            VerdictCache(capacity=0)


class TestPersistence:
    def test_entries_survive_a_restart(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = VerdictCache(path=path)
        first.put(KEY_A, Budget(max_states=500), VERDICT, "job-1")
        reborn = VerdictCache(path=path)
        entry = reborn.get(KEY_A, Budget(max_states=500))
        assert entry is not None
        assert entry.verdict == VERDICT
        assert entry.job_id == "job-1"

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        VerdictCache(path=path).put(KEY_A, Budget(max_states=5), VERDICT, "j")
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"key": "zz", "trunca')  # the crash mid-write
        reborn = VerdictCache(path=path)
        assert len(reborn) == 1

    def test_entry_json_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        VerdictCache(path=path).put(KEY_A, Budget(max_states=5), VERDICT, "j")
        with open(path, encoding="utf-8") as stream:
            document = json.loads(stream.readline())
        assert document["key"] == KEY_A.hex()
        assert document["budget"] == {"max_states": 5, "max_transitions": None,
                                      "deadline_seconds": None}
