"""Shared fixtures for the serve tests: a server factory and HTTP client."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeConfig, run_in_thread

#: Terminal job states, mirrored here so client helpers don't import jobs.
DONE = ("completed", "exhausted", "failed", "cancelled")


class ServeClient:
    """A tiny urllib client speaking the server's JSON dialect."""

    def __init__(self, url: str) -> None:
        self.url = url

    def request(self, method, path, body=None, headers=None):
        """Returns ``(status, headers, document)``; non-2xx is not raised."""
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, dict(response.headers), _decode(response)
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), _decode(error)

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, body, **kwargs):
        return self.request("POST", path, body=body, **kwargs)

    def submit(self, spec, tenant=None):
        headers = {} if tenant is None else {"X-Repro-Tenant": tenant}
        return self.post("/jobs", spec, headers=headers)

    def poll(self, job_id, timeout=120.0):
        """The job document once it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, _, document = self.get(f"/jobs/{job_id}")
            assert status == 200, document
            if document["state"] in DONE:
                return document
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def _decode(response):
    payload = response.read()
    content_type = response.headers.get("Content-Type", "")
    if "json" in content_type:
        return json.loads(payload) if payload else {}
    return payload.decode("utf-8", "replace")


@pytest.fixture
def serve_factory():
    """Start servers on ephemeral ports; everything stops at teardown."""
    handles = []

    def start(**overrides):
        overrides.setdefault("port", 0)
        handle = run_in_thread(ServeConfig(**overrides))
        handles.append(handle)
        return handle, ServeClient(handle.url)

    yield start
    for handle in handles:
        handle.stop()


#: A small, fast candidate (~0.3s to refute) used throughout these tests.
FAST_SPEC = {
    "candidate": "delegation",
    "n": 2,
    "f": 0,
    "budget": {"max_states": 600_000},
}
