"""Wire-schema tests: JobSpec validation and the error envelope."""

import pytest

from repro.engine import Budget
from repro.serve import CANDIDATES, JobSpec, WireError, error_document, package_version
from repro.serve.wire import DEFAULT_TENANT


class TestJobSpecFromJson:
    def test_minimal_document_gets_defaults(self):
        spec = JobSpec.from_json({"candidate": "last-writer"})
        assert spec.n == 3
        assert spec.resilience == 1
        assert spec.workers == 1
        assert spec.reduction == "none"
        assert spec.proposals == ()
        assert spec.tenant == DEFAULT_TENANT

    def test_round_trip(self):
        spec = JobSpec.from_json(
            {
                "candidate": "tob",
                "n": 3,
                "f": 1,
                "budget": {"max_states": 10_000, "deadline_seconds": 2.5},
                "workers": 2,
                "reduction": "symmetry",
                "proposals": {"0": 1, "1": 0, "2": 0},
                "tenant": "alice",
            }
        )
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_resilience_alias(self):
        assert JobSpec.from_json({"candidate": "tob", "resilience": 2}).resilience == 2

    def test_f_and_resilience_together_rejected(self):
        with pytest.raises(WireError, match="not both"):
            JobSpec.from_json({"candidate": "tob", "f": 1, "resilience": 1})

    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            JobSpec.from_json([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(WireError, match="unknown field"):
            JobSpec.from_json({"candidate": "tob", "bananas": 1})

    def test_unknown_candidate_rejected(self):
        with pytest.raises(WireError, match="candidate"):
            JobSpec.from_json({"candidate": "nonsense"})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(WireError, match="n must be an integer"):
            JobSpec.from_json({"candidate": "tob", "n": True})

    def test_bad_budget_wrapped(self):
        with pytest.raises(WireError, match="bad budget"):
            JobSpec.from_json({"candidate": "tob", "budget": {"max_states": "lots"}})

    def test_bad_reduction_rejected(self):
        with pytest.raises(WireError, match="reduction"):
            JobSpec.from_json({"candidate": "tob", "reduction": "telepathy"})

    def test_proposals_keys_coerced_to_int(self):
        spec = JobSpec.from_json(
            {"candidate": "tob", "proposals": {"1": 0, "0": 1}}
        )
        assert spec.proposals == ((0, 1), (1, 0))

    def test_non_integer_proposal_endpoint_rejected(self):
        with pytest.raises(WireError, match="integers"):
            JobSpec.from_json({"candidate": "tob", "proposals": {"p0": 1}})

    def test_tenant_header_default(self):
        spec = JobSpec.from_json({"candidate": "tob"}, default_tenant="carol")
        assert spec.tenant == "carol"
        explicit = JobSpec.from_json(
            {"candidate": "tob", "tenant": "dave"}, default_tenant="carol"
        )
        assert explicit.tenant == "dave"

    def test_overlong_tenant_rejected(self):
        with pytest.raises(WireError, match="tenant"):
            JobSpec.from_json({"candidate": "tob", "tenant": "x" * 129})


class TestCost:
    def test_cost_is_kilostates(self):
        spec = JobSpec.from_json(
            {"candidate": "tob", "budget": {"max_states": 5_500}}
        )
        assert spec.cost == 6

    def test_unlimited_budget_costs_a_lot(self):
        spec = JobSpec.from_json({"candidate": "tob", "budget": {}})
        assert spec.cost == 1_000

    def test_tiny_budget_costs_at_least_one(self):
        spec = JobSpec.from_json({"candidate": "tob", "budget": {"max_states": 1}})
        assert spec.cost == 1


class TestErrorDocument:
    def test_carries_version_and_status(self):
        document = error_document(429, "overloaded", "queue full", retry_after=3.0)
        assert document["status"] == 429
        assert document["error"] == "overloaded"
        assert document["retry_after"] == 3.0
        assert document["version"] == package_version()

    def test_package_version_is_a_version_string(self):
        version = package_version()
        assert version and version[0].isdigit()


class TestRegistry:
    def test_candidates_cover_the_paper(self):
        assert set(CANDIDATES) == {"delegation", "tob", "last-writer"}
