"""Wire-schema tests: JobSpec validation and the error envelope."""

import pytest

from repro.engine import Budget
from repro.serve import CANDIDATES, JobSpec, WireError, error_document, package_version
from repro.serve.wire import DEFAULT_TENANT


class TestJobSpecFromJson:
    def test_minimal_document_gets_defaults(self):
        spec = JobSpec.from_json({"candidate": "last-writer"})
        assert spec.n == 3
        assert spec.resilience == 1
        assert spec.workers == 1
        assert spec.reduction == "none"
        assert spec.store is None
        assert spec.rss_limit_mb is None
        assert spec.proposals == ()
        assert spec.tenant == DEFAULT_TENANT

    def test_round_trip(self):
        spec = JobSpec.from_json(
            {
                "candidate": "tob",
                "n": 3,
                "f": 1,
                "budget": {"max_states": 10_000, "deadline_seconds": 2.5},
                "workers": 2,
                "reduction": "symmetry",
                "store": "sqlite",
                "rss_limit_mb": 512,
                "proposals": {"0": 1, "1": 0, "2": 0},
                "tenant": "alice",
            }
        )
        assert spec.store == "sqlite"
        assert spec.rss_limit_mb == 512
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_resilience_alias(self):
        assert JobSpec.from_json({"candidate": "tob", "resilience": 2}).resilience == 2

    def test_f_and_resilience_together_rejected(self):
        with pytest.raises(WireError, match="not both"):
            JobSpec.from_json({"candidate": "tob", "f": 1, "resilience": 1})

    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            JobSpec.from_json([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(WireError, match="unknown field"):
            JobSpec.from_json({"candidate": "tob", "bananas": 1})

    def test_unknown_candidate_rejected(self):
        with pytest.raises(WireError, match="candidate"):
            JobSpec.from_json({"candidate": "nonsense"})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(WireError, match="n must be an integer"):
            JobSpec.from_json({"candidate": "tob", "n": True})

    def test_bad_budget_wrapped(self):
        with pytest.raises(WireError, match="bad budget"):
            JobSpec.from_json({"candidate": "tob", "budget": {"max_states": "lots"}})

    def test_store_accepts_backend_names_only(self):
        for backend in ("memory", "sqlite", "mmap"):
            spec = JobSpec.from_json({"candidate": "tob", "store": backend})
            assert spec.store == backend

    def test_store_rejects_paths(self):
        # A path-carrying URI would let a client choose server filesystem
        # locations; only bare backend names cross the wire.
        for bad in ("sqlite:/etc/passwd", "mmap:/tmp/x", "redis", "", 7):
            with pytest.raises(WireError, match="store must be one of"):
                JobSpec.from_json({"candidate": "tob", "store": bad})

    def test_rss_limit_must_be_a_positive_integer(self):
        assert (
            JobSpec.from_json(
                {"candidate": "tob", "rss_limit_mb": 256}
            ).rss_limit_mb
            == 256
        )
        for bad in (0, -5, True, "big"):
            with pytest.raises(WireError, match="rss_limit_mb"):
                JobSpec.from_json({"candidate": "tob", "rss_limit_mb": bad})

    def test_bad_reduction_rejected(self):
        with pytest.raises(WireError, match="reduction"):
            JobSpec.from_json({"candidate": "tob", "reduction": "telepathy"})

    def test_proposals_keys_coerced_to_int(self):
        spec = JobSpec.from_json(
            {"candidate": "tob", "proposals": {"1": 0, "0": 1}}
        )
        assert spec.proposals == ((0, 1), (1, 0))

    def test_non_integer_proposal_endpoint_rejected(self):
        with pytest.raises(WireError, match="integers"):
            JobSpec.from_json({"candidate": "tob", "proposals": {"p0": 1}})

    def test_tenant_header_default(self):
        spec = JobSpec.from_json({"candidate": "tob"}, default_tenant="carol")
        assert spec.tenant == "carol"
        explicit = JobSpec.from_json(
            {"candidate": "tob", "tenant": "dave"}, default_tenant="carol"
        )
        assert explicit.tenant == "dave"

    def test_overlong_tenant_rejected(self):
        with pytest.raises(WireError, match="tenant"):
            JobSpec.from_json({"candidate": "tob", "tenant": "x" * 129})


class TestCost:
    def test_cost_is_kilostates(self):
        spec = JobSpec.from_json(
            {"candidate": "tob", "budget": {"max_states": 5_500}}
        )
        assert spec.cost == 6

    def test_unlimited_budget_costs_a_lot(self):
        spec = JobSpec.from_json({"candidate": "tob", "budget": {}})
        assert spec.cost == 1_000

    def test_tiny_budget_costs_at_least_one(self):
        spec = JobSpec.from_json({"candidate": "tob", "budget": {"max_states": 1}})
        assert spec.cost == 1


class TestErrorDocument:
    def test_carries_version_and_status(self):
        document = error_document(429, "overloaded", "queue full", retry_after=3.0)
        assert document["status"] == 429
        assert document["error"] == "overloaded"
        assert document["retry_after"] == 3.0
        assert document["version"] == package_version()

    def test_package_version_is_a_version_string(self):
        version = package_version()
        assert version and version[0].isdigit()


class TestRegistry:
    def test_candidates_cover_the_paper(self):
        assert set(CANDIDATES) == {
            "delegation",
            "tob",
            "last-writer",
            "arbiter",
            "exchange",
            "arbiter-lossy",
            "exchange-lossy",
        }

    def test_every_candidate_builds_and_round_trips(self):
        """Registry entries build; JobSpec round-trips through JSON."""
        from repro.serve import build_system

        for name in CANDIDATES:
            system = build_system(name, 3, 0)
            assert system.process_ids
            spec = JobSpec.from_json({"candidate": name, "n": 3, "f": 0})
            back = JobSpec.from_json(spec.to_json())
            assert back.candidate == name
            assert back == spec

    def test_lossy_candidates_carry_fault_tasks(self):
        from repro.serve import build_system

        benign = build_system("exchange", 2, 0)
        lossy = build_system("exchange-lossy", 2, 0)
        benign_tasks = {task for a in benign.components for task in a.tasks()}
        lossy_tasks = {task for a in lossy.components for task in a.tasks()}
        extra = lossy_tasks - benign_tasks
        assert extra and all(task.name[0] == "fault" for task in extra)

    def test_register_candidate_rejects_bad_names(self):
        from repro.serve import register_candidate

        with pytest.raises(WireError):
            register_candidate("", "blurb", lambda n, f: None)

    def test_registered_candidate_is_buildable_and_replaceable(self):
        from repro.serve import build_system, register_candidate
        from repro.serve.wire import _BUILDERS

        sentinel = object()
        original_blurb = dict(CANDIDATES)
        original_builders = dict(_BUILDERS)
        try:
            register_candidate("zzz-test", "a test entry", lambda n, f: sentinel)
            assert build_system("zzz-test", 1, 0) is sentinel
            assert "zzz-test" in CANDIDATES
            replacement = object()
            register_candidate("zzz-test", "shadowed", lambda n, f: replacement)
            assert build_system("zzz-test", 1, 0) is replacement
            assert CANDIDATES["zzz-test"] == "shadowed"
        finally:
            CANDIDATES.clear()
            CANDIDATES.update(original_blurb)
            _BUILDERS.clear()
            _BUILDERS.update(original_builders)
