"""API surface stability: every exported name exists and is importable.

Guards the public API: each subpackage's ``__all__`` must resolve, the
``repro.core`` alias must mirror ``repro.analysis``, and the headline
entry points must keep their signatures.
"""

import inspect

import pytest

import repro
import repro.analysis
import repro.core
import repro.engine
import repro.ioa
import repro.protocols
import repro.services
import repro.sim
import repro.system
import repro.types

SUBPACKAGES = [
    repro.ioa,
    repro.types,
    repro.services,
    repro.system,
    repro.analysis,
    repro.engine,
    repro.protocols,
    repro.sim,
]


class TestExports:
    @pytest.mark.parametrize(
        "module", SUBPACKAGES, ids=lambda m: m.__name__
    )
    def test_all_names_resolve(self, module):
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"

    @pytest.mark.parametrize(
        "module", SUBPACKAGES, ids=lambda m: m.__name__
    )
    def test_all_is_sorted_and_unique(self, module):
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"duplicates in {module.__name__}"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name)
        assert repro.__version__

    def test_core_mirrors_analysis(self):
        for name in repro.analysis.__all__:
            assert getattr(repro.core, name) is getattr(repro.analysis, name)

    def test_top_level_surface_snapshot(self):
        """The stable top-level surface, snapshotted.

        Extending this list is an API addition (update the snapshot and
        docs/api.md together); removing or renaming a name is a breaking
        change.
        """
        assert sorted(repro.__all__) == [
            "Budget",
            "ExplorationEngine",
            "ReductionConfig",
            "RunLedger",
            "RunRecord",
            "StateStore",
            "StoreConfig",
            "__version__",
            "analysis",
            "analyze_valence",
            "core",
            "engine",
            "explore",
            "find_hook",
            "ioa",
            "obs",
            "protocols",
            "refute_candidate",
            "services",
            "sim",
            "system",
            "types",
        ]
        assert repro.explore is repro.analysis.explore
        assert repro.analyze_valence is repro.analysis.analyze_valence
        assert repro.refute_candidate is repro.analysis.refute_candidate
        assert repro.find_hook is repro.analysis.find_hook
        assert repro.Budget is repro.engine.Budget
        assert repro.ReductionConfig is repro.engine.ReductionConfig
        assert repro.ExplorationEngine is repro.engine.ExplorationEngine
        assert repro.StateStore is repro.engine.StateStore
        assert repro.StoreConfig is repro.engine.StoreConfig
        assert repro.RunLedger is repro.obs.RunLedger
        assert repro.RunRecord is repro.obs.RunRecord


class TestHeadlineSignatures:
    def test_refute_candidate_signature(self):
        parameters = inspect.signature(
            repro.analysis.refute_candidate
        ).parameters
        assert list(parameters) == [
            "system",
            "resilience",
            "max_states",
            "horizon",
            "failure_aware_services",
            "tracer",
            "metrics",
            "engine",
            "reduction",
            "budget",
            "store",
        ]
        assert (
            parameters["budget"].kind is inspect.Parameter.KEYWORD_ONLY
        )
        assert parameters["store"].kind is inspect.Parameter.KEYWORD_ONLY
        assert parameters["max_states"].default is None

    @pytest.mark.parametrize(
        "entry_point",
        [
            "explore",
            "analyze_valence",
            "lemma4_bivalent_initialization",
            "find_hook",
            "refute_candidate",
            "liveness_attack",
            "bounded_undecided_run",
        ],
    )
    def test_budget_first_entry_points(self, entry_point):
        """Every analysis entry point takes keyword-only ``budget=``."""
        parameters = inspect.signature(
            getattr(repro.analysis, entry_point)
        ).parameters
        assert "budget" in parameters
        assert parameters["budget"].kind is inspect.Parameter.KEYWORD_ONLY
        assert parameters["budget"].default is None

    def test_exploration_engine_signature(self):
        parameters = inspect.signature(
            repro.engine.ExplorationEngine.__init__
        ).parameters
        for name in (
            "workers",
            "budget",
            "store",
            "checkpoint_dir",
            "resume",
            "rss_limit_mb",
            "audit",
        ):
            assert name in parameters

    def test_run_consensus_round_signature(self):
        parameters = inspect.signature(
            repro.analysis.run_consensus_round
        ).parameters
        assert "proposals" in parameters
        assert "failure_schedule" in parameters
        assert "k" in parameters

    def test_liveness_attack_signature(self):
        parameters = inspect.signature(repro.analysis.liveness_attack).parameters
        assert "victims" in parameters
        assert "failure_aware_services" in parameters

    def test_canonical_service_constructors(self):
        for cls in (
            repro.services.CanonicalAtomicObject,
            repro.services.CanonicalFailureObliviousService,
            repro.services.CanonicalGeneralService,
        ):
            parameters = inspect.signature(cls.__init__).parameters
            assert "endpoints" in parameters
            assert "resilience" in parameters
            assert "service_id" in parameters


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", SUBPACKAGES + [repro], ids=lambda m: m.__name__
    )
    def test_subpackages_documented(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_callables_documented(self):
        undocumented = []
        for module in SUBPACKAGES:
            for name in module.__all__:
                obj = getattr(module, name)
                if getattr(obj, "__module__", "") == "typing":
                    continue  # typing aliases (e.g. ResponseMap) carry no docstring
                if callable(obj) and not isinstance(obj, type):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_classes_documented(self):
        undocumented = []
        for module in SUBPACKAGES:
            for name in module.__all__:
                obj = getattr(module, name)
                if isinstance(obj, type):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented
