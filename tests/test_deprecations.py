"""The ``max_states=`` deprecation contract, entry point by entry point.

Every analysis entry point is budget-first; ``max_states=`` survives as
an alias that must emit **exactly one** :class:`DeprecationWarning` per
call (even for pipelines that fan out into many explorations), and
passing both forms is a :class:`TypeError`.  CI runs the suite with
``-W error::DeprecationWarning``, so these tests are also what keeps the
library itself off the deprecated path.
"""

import warnings

import pytest

from repro.analysis import (
    analyze_valence,
    explore,
    lemma4_bivalent_initialization,
    refute_candidate,
)
from repro.analysis.view import DeterministicSystemView
from repro.engine import (
    Budget,
    ExplorationEngine,
    StoreConfig,
    resolve_budget,
    resolve_flush_interval,
)
from repro.protocols import delegation_consensus_system


@pytest.fixture(scope="module")
def system():
    return delegation_consensus_system(3, resilience=1)


@pytest.fixture(scope="module")
def root(system):
    return system.initialization({0: 0, 1: 1, 2: 0}).final_state


def deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestResolveBudget:
    def test_neither_returns_default(self):
        default = Budget(max_states=7)
        assert resolve_budget(None, None, default=default) is default

    def test_budget_passes_through(self):
        budget = Budget(max_transitions=5)
        assert resolve_budget(budget, None) is budget

    def test_max_states_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="budget=Budget"):
            resolved = resolve_budget(None, 123)
        assert resolved == Budget(max_states=123)

    def test_both_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_budget(Budget(), 123)


class TestResolveFlushInterval:
    """The engine's ``checkpoint_interval=`` -> ``flush_interval=`` alias."""

    def test_neither_returns_default(self):
        from repro.engine.store import DEFAULT_FLUSH_INTERVAL

        assert resolve_flush_interval(None, None) == DEFAULT_FLUSH_INTERVAL

    def test_flush_interval_passes_through(self):
        assert resolve_flush_interval(123, None) == 123

    def test_store_config_supplies_default(self):
        config = StoreConfig(backend="memory", flush_interval=77)
        assert resolve_flush_interval(None, None, store=config) == 77

    def test_checkpoint_interval_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="flush_interval"):
            assert resolve_flush_interval(None, 42) == 42

    def test_both_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_flush_interval(10, 20)

    def test_engine_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="flush_interval"):
            engine = ExplorationEngine(checkpoint_interval=42)
        assert engine.flush_interval == 42
        # The legacy attribute mirrors the resolved value.
        assert engine.checkpoint_interval == 42

    def test_engine_both_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            ExplorationEngine(flush_interval=10, checkpoint_interval=20)

    def test_engine_new_spelling_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = ExplorationEngine(flush_interval=99)
        assert engine.flush_interval == 99


class TestEntryPointsWarnExactlyOnce:
    def test_explore(self, system, root):
        view = DeterministicSystemView(system)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            graph = explore(view, root, max_states=1000)
        assert len(deprecations(caught)) == 1
        assert len(graph) > 0

    def test_analyze_valence(self, system, root):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            analysis = analyze_valence(system, root, max_states=1000)
        assert len(deprecations(caught)) == 1
        assert len(analysis.graph) > 0

    def test_lemma4_whole_chain_warns_once(self, system):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = lemma4_bivalent_initialization(system, max_states=50_000)
        assert len(deprecations(caught)) == 1
        assert result.bivalent is not None

    def test_refute_candidate_whole_pipeline_warns_once(self, system):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            verdict = refute_candidate(system, max_states=50_000)
        assert len(deprecations(caught)) == 1
        assert verdict.refuted

    def test_budget_form_never_warns(self, system, root):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            analyze_valence(system, root, budget=Budget(max_states=1000))
            refute_candidate(system, budget=Budget(max_states=50_000))
        assert not deprecations(caught)


class TestBothFormsRejected:
    def test_explore(self, system, root):
        view = DeterministicSystemView(system)
        with pytest.raises(TypeError, match="not both"):
            explore(view, root, max_states=10, budget=Budget(max_states=10))

    def test_analyze_valence(self, system, root):
        with pytest.raises(TypeError, match="not both"):
            analyze_valence(
                system, root, max_states=10, budget=Budget(max_states=10)
            )

    def test_refute_candidate(self, system):
        with pytest.raises(TypeError, match="not both"):
            refute_candidate(
                system, max_states=10, budget=Budget(max_states=10)
            )
