"""Unit tests for the exhaustive explorer and decision-set fixpoint."""

import pytest

from repro.analysis import (
    DeterministicSystemView,
    ExplorationBudget,
    explore,
    find_state,
    reachable_decision_sets,
    shortest_task_path,
)
from repro.protocols import delegation_consensus_system
from repro.engine import Budget


@pytest.fixture
def explored():
    system = delegation_consensus_system(2, resilience=0)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1}).final_state
    graph = explore(view, root, budget=Budget(max_states=50_000))
    return system, view, root, graph


class TestExplore:
    def test_graph_contains_root(self, explored):
        _, _, root, graph = explored
        assert root in graph.states

    def test_edges_closed_under_states(self, explored):
        _, _, _, graph = explored
        for state, out in graph.edges.items():
            assert state in graph.states
            for _, _, successor in out:
                assert successor in graph.states

    def test_budget_enforced(self, explored):
        system, view, root, _ = explored
        with pytest.raises(ExplorationBudget):
            explore(view, root, budget=Budget(max_states=3))

    def test_prune_cuts_exploration(self, explored):
        system, view, root, full = explored

        def decided(state):
            return bool(view.decisions(state))

        pruned = explore(view, root, budget=Budget(max_states=50_000), prune=decided)
        assert len(pruned) <= len(full)
        # Pruned states have no outgoing edges.
        for state in pruned.states:
            if decided(state) and state in pruned.edges:
                assert pruned.edges[state] == []

    def test_edge_count(self, explored):
        _, _, _, graph = explored
        assert graph.edge_count() == sum(len(v) for v in graph.edges.values())
        assert graph.edge_count() > len(graph)  # multiple tasks per state


class TestDecisionSets:
    def test_root_reaches_both_decisions(self, explored):
        # Mixed-input delegation is schedule-dependent: bivalent root.
        _, view, root, graph = explored
        decisions = reachable_decision_sets(graph, view)
        assert decisions[root] == frozenset({0, 1})

    def test_decided_states_are_sinks_of_their_value(self, explored):
        system, view, _, graph = explored
        decisions = reachable_decision_sets(graph, view)
        for state in graph.states:
            recorded = view.decision_values(state)
            if recorded:
                # Everything reachable keeps the recorded value.
                assert recorded <= decisions[state]

    def test_monotone_along_edges(self, explored):
        # decision set of a state is the union over its successors plus own.
        _, view, _, graph = explored
        decisions = reachable_decision_sets(graph, view)
        for state, out in graph.edges.items():
            union = view.decision_values(state)
            for _, _, successor in out:
                union |= decisions[successor]
            assert decisions[state] == union


class TestSearchHelpers:
    def test_find_state(self, explored):
        _, view, _, graph = explored
        decided = find_state(graph, lambda s: bool(view.decisions(s)))
        assert decided is not None
        assert view.decisions(decided)

    def test_find_state_none(self, explored):
        _, _, _, graph = explored
        assert find_state(graph, lambda s: False) is None

    def test_shortest_task_path_reaches_target(self, explored):
        _, view, root, graph = explored
        path = shortest_task_path(
            graph, root, lambda s: 0 in view.decisions(s)
        )
        assert path is not None
        state = root
        for task, action, post in path:
            step = view.step(state, task)
            assert step == (action, post)
            state = post
        assert 0 in view.decisions(state)

    def test_shortest_task_path_empty_when_source_matches(self, explored):
        _, _, root, graph = explored
        assert shortest_task_path(graph, root, lambda s: s == root) == []

    def test_shortest_task_path_none_when_unreachable(self, explored):
        _, _, root, graph = explored
        assert shortest_task_path(graph, root, lambda s: s == "nowhere") is None
