"""Unit tests for the implementation-relation checker (Section 2.1.4)."""

import pytest

from repro.analysis import (
    canonical_accepts_trace,
    first_rejected_prefix,
    internal_closure,
    project_trace,
)
from repro.ioa import Action, fail, invoke, respond
from repro.services import CanonicalAtomicObject, PerfectFailureDetector, suspect
from repro.types import binary_consensus_type


@pytest.fixture
def consensus_object():
    return CanonicalAtomicObject(
        binary_consensus_type(), endpoints=(0, 1), resilience=1, service_id="c"
    )


class TestInternalClosure:
    def test_closure_includes_perform_results(self, consensus_object):
        obj = consensus_object
        state = obj.apply_input(obj.some_start_state(), invoke("c", 0, ("init", 1)))
        closure = internal_closure(obj, [state])
        vals = {s.val for s in closure}
        assert vals == {frozenset(), frozenset({1})}

    def test_closure_of_start_is_trivial(self, consensus_object):
        closure = internal_closure(
            consensus_object, [consensus_object.some_start_state()]
        )
        assert len(closure) == 1


class TestTraceAcceptance:
    def test_accepts_legal_consensus_trace(self, consensus_object):
        trace = [
            invoke("c", 0, ("init", 1)),
            invoke("c", 1, ("init", 0)),
            respond("c", 0, ("decide", 1)),
            respond("c", 1, ("decide", 1)),
        ]
        assert canonical_accepts_trace(consensus_object, trace)

    def test_accepts_either_linearization(self, consensus_object):
        # Concurrent invocations may linearize in either order.
        for winner in (0, 1):
            trace = [
                invoke("c", 0, ("init", 0)),
                invoke("c", 1, ("init", 1)),
                respond("c", 0, ("decide", winner)),
                respond("c", 1, ("decide", winner)),
            ]
            assert canonical_accepts_trace(consensus_object, trace)

    def test_rejects_disagreement(self, consensus_object):
        trace = [
            invoke("c", 0, ("init", 0)),
            invoke("c", 1, ("init", 1)),
            respond("c", 0, ("decide", 0)),
            respond("c", 1, ("decide", 1)),
        ]
        assert not canonical_accepts_trace(consensus_object, trace)

    def test_rejects_response_without_invocation(self, consensus_object):
        trace = [respond("c", 0, ("decide", 0))]
        assert not canonical_accepts_trace(consensus_object, trace)

    def test_rejects_invalid_value(self, consensus_object):
        trace = [
            invoke("c", 0, ("init", 1)),
            respond("c", 0, ("decide", 0)),
        ]
        assert not canonical_accepts_trace(consensus_object, trace)

    def test_fail_inputs_are_accepted_in_traces(self, consensus_object):
        trace = [
            invoke("c", 0, ("init", 1)),
            fail(1),
            respond("c", 0, ("decide", 1)),
        ]
        assert canonical_accepts_trace(consensus_object, trace)

    def test_rejects_non_external_action(self, consensus_object):
        with pytest.raises(ValueError):
            canonical_accepts_trace(
                consensus_object, [Action("perform", ("c", 0))]
            )


class TestDetectorTraces:
    def test_perfect_detector_trace_acceptance(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1), resilience=1)
        good = [
            respond("P", 0, suspect(())),
            fail(1),
            respond("P", 0, suspect({1})),
        ]
        assert canonical_accepts_trace(detector, good)

    def test_perfect_detector_rejects_false_suspicion(self):
        detector = PerfectFailureDetector("P", endpoints=(0, 1), resilience=1)
        bad = [respond("P", 0, suspect({1}))]  # 1 never failed
        assert not canonical_accepts_trace(detector, bad)

    def test_perfect_detector_accepts_stale_queued_snapshot(self):
        # A report computed BEFORE a failure may legally be delivered
        # after it (it sat in the response buffer): delayed, but accurate
        # at generation time.
        detector = PerfectFailureDetector("P", endpoints=(0, 1), resilience=1)
        delayed = [fail(1), respond("P", 0, suspect(()))]
        assert canonical_accepts_trace(detector, delayed)

    def test_perfect_detector_rejects_never_accurate_report(self):
        # {0} was never the failed set at any point of this trace.
        detector = PerfectFailureDetector("P", endpoints=(0, 1), resilience=1)
        bad = [fail(1), respond("P", 0, suspect({0}))]
        assert not canonical_accepts_trace(detector, bad)


class TestDiagnostics:
    def test_first_rejected_prefix(self, consensus_object):
        trace = [
            invoke("c", 0, ("init", 1)),
            respond("c", 0, ("decide", 1)),
            respond("c", 0, ("decide", 0)),  # diverges here
        ]
        assert first_rejected_prefix(consensus_object, trace) == 3

    def test_first_rejected_prefix_none_for_legal(self, consensus_object):
        trace = [invoke("c", 0, ("init", 1)), respond("c", 0, ("decide", 1))]
        assert first_rejected_prefix(consensus_object, trace) is None

    def test_project_trace(self, consensus_object):
        actions = [
            invoke("c", 0, ("init", 1)),
            Action("perform", ("c", 0)),
            Action("local", (0, "x")),
            respond("c", 0, ("decide", 1)),
        ]
        assert project_trace(actions, consensus_object) == (
            invoke("c", 0, ("init", 1)),
            respond("c", 0, ("decide", 1)),
        )
