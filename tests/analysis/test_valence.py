"""Unit tests for valence analysis and Lemma 4 (Section 3.2)."""

import pytest

from repro.analysis import (
    Valence,
    analyze_valence,
    classify,
    lemma4_bivalent_initialization,
)
from repro.protocols import (
    delegation_consensus_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


class TestClassify:
    def test_zero(self):
        assert classify(frozenset({0})) is Valence.ZERO

    def test_one(self):
        assert classify(frozenset({1})) is Valence.ONE

    def test_bivalent(self):
        assert classify(frozenset({0, 1})) is Valence.BIVALENT

    def test_blocked(self):
        assert classify(frozenset()) is Valence.BLOCKED

    def test_univalence_predicate(self):
        assert Valence.ZERO.is_univalent
        assert Valence.ONE.is_univalent
        assert not Valence.BIVALENT.is_univalent
        assert not Valence.BLOCKED.is_univalent


class TestValenceAnalysis:
    def test_mixed_inputs_bivalent_root(self):
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root)
        assert analysis.valence(root) is Valence.BIVALENT
        assert analysis.is_bivalent(root)

    def test_uniform_inputs_univalent_root(self):
        system = delegation_consensus_system(2, resilience=0)
        for value, expected in ((0, Valence.ZERO), (1, Valence.ONE)):
            root = system.initialization({0: value, 1: value}).final_state
            analysis = analyze_valence(system, root)
            assert analysis.valence(root) is expected

    def test_univalent_stays_univalent(self):
        # Extensions of a univalent state have the same valence.
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root)
        for state in analysis.graph.states:
            valence = analysis.valence(state)
            if not valence.is_univalent:
                continue
            for _, _, successor in analysis.graph.successors(state):
                assert analysis.valence(successor) is valence

    def test_bivalent_successor_structure(self):
        # From a bivalent state, either some successor is bivalent or two
        # successors disagree (that is what makes it bivalent).
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root)
        for state in analysis.bivalent_states():
            successors = [
                analysis.valence(post)
                for _, _, post in analysis.graph.successors(state)
            ]
            assert successors, "bivalent states cannot be sinks"
            assert (
                Valence.BIVALENT in successors
                or {Valence.ZERO, Valence.ONE} <= set(successors)
            )

    def test_counts_histogram(self):
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root)
        counts = analysis.counts()
        assert sum(counts.values()) == len(analysis.graph)
        assert counts[Valence.BIVALENT] > 0
        assert counts[Valence.BLOCKED] == 0  # Lemma 3 holds here

    def test_no_blocked_states_in_live_candidate(self):
        system = tob_delegation_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root, budget=Budget(max_states=100_000))
        assert analysis.blocked_states() == []

    def test_rejects_failed_roots(self):
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        failed = system.fail_process(root, 0)
        with pytest.raises(ValueError):
            analyze_valence(system, failed)


class TestLemma4:
    def test_delegation_has_bivalent_initialization(self):
        result = lemma4_bivalent_initialization(
            delegation_consensus_system(2, resilience=0)
        )
        assert result.bivalent is not None
        assert result.bivalent.valence is Valence.BIVALENT

    def test_chain_has_n_plus_one_entries(self):
        result = lemma4_bivalent_initialization(
            delegation_consensus_system(3, resilience=1)
        )
        assert len(result.chain) == 4

    def test_chain_endpoints_pinned_by_validity(self):
        result = lemma4_bivalent_initialization(
            delegation_consensus_system(2, resilience=0)
        )
        assert result.chain[0].valence is Valence.ZERO  # all propose 0
        assert result.chain[-1].valence is Valence.ONE  # all propose 1

    def test_tob_candidate_also_has_bivalent_initialization(self):
        result = lemma4_bivalent_initialization(
            tob_delegation_system(2, resilience=0), budget=Budget(max_states=100_000)
        )
        assert result.bivalent is not None

    def test_min_register_candidate_is_all_univalent(self):
        # The min protocol decides min(v0, v1) regardless of schedule:
        # every initialization is univalent, so it dodges the bivalence
        # machinery — and is refuted by the direct liveness attack instead.
        result = lemma4_bivalent_initialization(min_register_consensus_system())
        assert result.bivalent is None
        valences = [entry.valence for entry in result.chain]
        assert valences == [Valence.ZERO, Valence.ZERO, Valence.ONE]
