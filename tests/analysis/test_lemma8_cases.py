"""Every branch of Lemma 8's case analysis, exercised.

Genuine hooks found by the Fig. 3 search land where the candidate's
structure sends them (Claim 4.1 for service-delegation candidates,
Claim 5.1b for the last-writer register candidate).  The remaining
branches — disjoint participants (Claim 2), a shared process (Claim 3),
service-and-process (Claim 4.2-4), two reads (Claim 5.1a), and
read-then-write (Claim 5.1c) — are exercised here with *synthetic*
hooks: hand-built states satisfying each claim's premises, on which the
case analysis must verify its commutation/similarity conclusion
concretely.  (The valence labels of a synthetic hook are formal — the
analysis conclusions under test are structural.)
"""

import pytest

from repro.analysis import (
    DeterministicSystemView,
    Valence,
    analyze_valence,
    enumerate_hooks,
    lemma8_case_analysis,
)
from repro.analysis.hook import Hook
from repro.ioa import Task, invoke
from repro.protocols import (
    delegation_consensus_system,
    last_writer_register_system,
)
from repro.services import CanonicalAtomicObject, CanonicalRegister
from repro.system import DistributedSystem, ScriptProcess
from repro.types import binary_consensus_type
from repro.engine import Budget


def make_hook(view, state, e, e_prime):
    """Assemble a synthetic hook at ``state`` from two applicable tasks."""
    s0 = view.apply(state, e)
    alpha_prime = view.apply(state, e_prime)
    s1 = view.apply(alpha_prime, e)
    return Hook(
        alpha=state,
        e=e,
        e_prime=e_prime,
        s0=s0,
        alpha_prime=alpha_prime,
        s1=s1,
        valence0=Valence.ZERO,
        valence1=Valence.ONE,
    )


def two_register_system():
    """Two processes, two registers, scripted ops — a case-analysis rig."""
    rega = CanonicalRegister("rega", endpoints=(0, 1), values=("e", 0, 1), initial="e")
    regb = CanonicalRegister("regb", endpoints=(0, 1), values=("e", 0, 1), initial="e")
    p0 = ScriptProcess(
        0,
        [invoke("rega", 0, ("read",)), invoke("regb", 0, ("write", 1))],
        connections=["rega", "regb"],
    )
    p1 = ScriptProcess(
        1,
        [invoke("rega", 1, ("write", 0)), invoke("regb", 1, ("read",))],
        connections=["rega", "regb"],
    )
    return DistributedSystem([p0, p1], registers=[rega, regb])


def run_script_steps(system, view, count):
    """Advance each process's script by ``count`` steps (interleaved)."""
    state = system.some_start_state()
    for _ in range(count):
        for process in system.processes:
            state = view.apply(state, process.tasks()[0])
    return state


class TestGenuineHooks:
    def test_delegation_hooks_all_claim_4_1(self):
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root)
        hooks = enumerate_hooks(analysis)
        assert hooks
        claims = {
            lemma8_case_analysis(system, analysis, hook).claim for hook in hooks
        }
        assert claims == {"claim4.1-shared-service-internal"}

    def test_last_writer_hooks_hit_register_case(self):
        system = last_writer_register_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        analysis = analyze_valence(system, root, budget=Budget(max_states=500_000))
        hooks = enumerate_hooks(analysis)
        assert hooks
        claims = {
            lemma8_case_analysis(system, analysis, hook).claim for hook in hooks
        }
        assert claims == {"claim5.1b-write-first"}

    def test_every_hook_produces_verified_conclusion(self):
        # The paper's guarantee: the case analysis never dead-ends.
        for factory, proposals in (
            (lambda: delegation_consensus_system(2, 0), {0: 0, 1: 1}),
            (last_writer_register_system, {0: 0, 1: 1}),
        ):
            system = factory()
            root = system.initialization(proposals).final_state
            analysis = analyze_valence(system, root, budget=Budget(max_states=500_000))
            for hook in enumerate_hooks(analysis):
                report = lemma8_case_analysis(system, analysis, hook)
                assert report.commuted or report.violation is not None


class TestSyntheticBranches:
    def test_claim2_disjoint_participants_commute(self):
        system = two_register_system()
        view = DeterministicSystemView(system)
        # Queue one op per register from different processes.
        state = run_script_steps(system, view, 1)
        e = Task("register[rega]", ("perform", 0))  # P0's read of rega
        e_prime = Task("register[regb]", ("perform", 1))  # P1's read of regb
        # regb got P1's read only after 2 script steps; use step 2 state.
        state = run_script_steps(system, view, 2)
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim2-disjoint-commute"
        assert report.commuted

    def test_claim3_shared_process(self):
        # e = P0's task (invoking regb), e' = rega's output task to P0.
        system = two_register_system()
        view = DeterministicSystemView(system)
        state = run_script_steps(system, view, 1)
        # Perform P0's read of rega so a response awaits delivery to P0.
        state = view.apply(state, Task("register[rega]", ("perform", 0)))
        e = system.process(0).tasks()[0]  # P0 emits its second invoke
        e_prime = Task("register[rega]", ("output", 0))  # deliver to P0
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim3-shared-process"
        assert report.violation.kind == "process"
        assert report.violation.index == 0

    def test_claim4_2_4_service_and_process_commute(self):
        system = delegation_consensus_system(2, resilience=0)
        view = DeterministicSystemView(system)
        root = system.initialization({0: 0, 1: 1}).final_state
        # P0 invokes; then e = service perform task (service only),
        # e' = P1's task (process + service participants).
        state = view.apply(root, system.process(0).tasks()[0])
        e = Task("atomic[cons]", ("perform", 0))
        e_prime = system.process(1).tasks()[0]
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim4.2-4-shared-service-commute"
        assert report.commuted

    def test_claim5_1a_two_reads_commute(self):
        rega = CanonicalRegister(
            "rega", endpoints=(0, 1), values=("e", 0, 1), initial="e"
        )
        p0 = ScriptProcess(0, [invoke("rega", 0, ("read",))], connections=["rega"])
        p1 = ScriptProcess(1, [invoke("rega", 1, ("read",))], connections=["rega"])
        system = DistributedSystem([p0, p1], registers=[rega])
        view = DeterministicSystemView(system)
        state = run_script_steps(system, view, 1)
        e = Task("register[rega]", ("perform", 0))
        e_prime = Task("register[rega]", ("perform", 1))
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim5.1a-two-reads-commute"
        assert report.commuted

    def test_claim5_1b_write_first(self):
        rega = CanonicalRegister(
            "rega", endpoints=(0, 1), values=("e", 0, 1), initial="e"
        )
        p0 = ScriptProcess(0, [invoke("rega", 0, ("write", 1))], connections=["rega"])
        p1 = ScriptProcess(1, [invoke("rega", 1, ("write", 0))], connections=["rega"])
        system = DistributedSystem([p0, p1], registers=[rega])
        view = DeterministicSystemView(system)
        state = run_script_steps(system, view, 1)
        e = Task("register[rega]", ("perform", 0))  # performs a write
        e_prime = Task("register[rega]", ("perform", 1))
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim5.1b-write-first"
        assert report.violation.kind == "process"
        assert report.violation.index == 1  # e''s endpoint

    def test_claim5_1c_read_then_write(self):
        rega = CanonicalRegister(
            "rega", endpoints=(0, 1), values=("e", 0, 1), initial="e"
        )
        p0 = ScriptProcess(0, [invoke("rega", 0, ("read",))], connections=["rega"])
        p1 = ScriptProcess(1, [invoke("rega", 1, ("write", 0))], connections=["rega"])
        system = DistributedSystem([p0, p1], registers=[rega])
        view = DeterministicSystemView(system)
        state = run_script_steps(system, view, 1)
        e = Task("register[rega]", ("perform", 0))  # e reads
        e_prime = Task("register[rega]", ("perform", 1))  # e' writes
        hook = make_hook(view, state, e, e_prime)
        report = lemma8_case_analysis(system, None, hook)
        assert report.claim == "claim5.1c-read-then-write"
        assert report.violation.kind == "process"
        assert report.violation.index == 0  # e's endpoint

    def test_claim1_same_task_rejected(self):
        system = delegation_consensus_system(2, resilience=0)
        view = DeterministicSystemView(system)
        root = system.initialization({0: 0, 1: 1}).final_state
        e = system.process(0).tasks()[0]
        with pytest.raises(AssertionError):
            lemma8_case_analysis(
                system,
                None,
                Hook(
                    alpha=root,
                    e=e,
                    e_prime=e,
                    s0=view.apply(root, e),
                    alpha_prime=view.apply(root, e),
                    s1=view.apply(view.apply(root, e), e),
                    valence0=Valence.ZERO,
                    valence1=Valence.ONE,
                ),
            )
