"""Unit tests for j-/k-similarity (Section 3.5) and the violation scanner."""

import pytest

from repro.analysis import (
    DeterministicSystemView,
    Valence,
    analyze_valence,
    differing_components,
    j_similar,
    k_similar,
    scan_for_similarity_violations,
    similar_in_some_way,
)
from repro.ioa import Task, invoke
from repro.protocols import delegation_consensus_system


@pytest.fixture
def setup():
    system = delegation_consensus_system(2, resilience=0)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1}).final_state
    return system, view, root


class TestPredicates:
    def test_state_is_similar_to_itself(self, setup):
        system, _, root = setup
        assert j_similar(system, root, root, j=0)
        assert k_similar(system, root, root, k="cons")

    def test_j_similarity_tolerates_j_differences(self, setup):
        system, view, root = setup
        # Run only process 0's task: states differ in P0 and in 0's buffers.
        after = view.apply(root, system.process(0).tasks()[0])
        assert j_similar(system, root, after, j=0)
        assert not j_similar(system, root, after, j=1)

    def test_j_similarity_detects_val_difference(self, setup):
        system, view, root = setup
        # Invoke and perform for endpoint 0: val changes, so even
        # 0-similarity fails (val is compared for every service).
        state = view.apply(root, system.process(0).tasks()[0])
        state = view.apply(state, Task("atomic[cons]", ("perform", 0)))
        assert not j_similar(system, root, state, j=0)

    def test_k_similarity_tolerates_service_differences(self, setup):
        system, view, root = setup
        # Two perform orders: process states equal, only service differs.
        state_a = view.apply(root, system.process(0).tasks()[0])
        state_a = view.apply(state_a, system.process(1).tasks()[0])
        state_b = view.apply(root, system.process(1).tasks()[0])
        state_b = view.apply(state_b, system.process(0).tasks()[0])
        one = view.apply(state_a, Task("atomic[cons]", ("perform", 0)))
        other = view.apply(state_b, Task("atomic[cons]", ("perform", 1)))
        assert k_similar(system, one, other, k="cons")
        assert not j_similar(system, one, other, j=0)

    def test_ignore_services_parameter(self, setup):
        system, view, root = setup
        state = view.apply(root, system.process(0).tasks()[0])
        state = view.apply(state, Task("atomic[cons]", ("perform", 0)))
        # Exempting the service makes the comparison pass again for j=0.
        assert j_similar(system, root, state, j=0, ignore_services=("cons",))

    def test_similar_in_some_way(self, setup):
        system, view, root = setup
        after = view.apply(root, system.process(1).tasks()[0])
        witness = similar_in_some_way(system, root, after)
        assert witness == ("process", 1)

    def test_similar_in_no_way(self, setup):
        system, view, root = setup
        # Change both processes and the service value: nothing matches.
        state = view.apply(root, system.process(0).tasks()[0])
        state = view.apply(state, system.process(1).tasks()[0])
        state = view.apply(state, Task("atomic[cons]", ("perform", 0)))
        state = view.apply(state, Task("atomic[cons]", ("output", 0)))
        assert similar_in_some_way(system, root, state) is None


class TestScanner:
    def test_doomed_candidate_has_violations(self, setup):
        system, _, root = setup
        analysis = analyze_valence(system, root)
        violations = scan_for_similarity_violations(system, analysis)
        assert violations, (
            "a doomed candidate must exhibit similar univalent states of "
            "opposite valence (this is how Lemmas 6-7 fail for it)"
        )
        for violation in violations:
            assert analysis.valence(violation.s0) is Valence.ZERO
            assert analysis.valence(violation.s1) is Valence.ONE

    def test_scanner_respects_max_pairs(self, setup):
        system, _, root = setup
        analysis = analyze_valence(system, root)
        limited = scan_for_similarity_violations(system, analysis, max_pairs=1)
        assert len(limited) <= 1


class TestDiffing:
    def test_differing_components(self, setup):
        system, view, root = setup
        after = view.apply(root, system.process(0).tasks()[0])
        names = differing_components(system, root, after)
        assert set(names) == {"P[0]", "atomic[cons]"}

    def test_no_difference(self, setup):
        system, _, root = setup
        assert differing_components(system, root, root) == []
