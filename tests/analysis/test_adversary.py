"""Unit tests for the end-to-end boosting adversary pipeline."""

import pytest

from repro.analysis import (
    TerminationViolation,
    Verdict,
    bounded_undecided_run,
    default_resilience,
    refute_candidate,
)
from repro.protocols import (
    delegation_consensus_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


class TestDefaultResilience:
    def test_min_over_services(self):
        assert default_resilience(delegation_consensus_system(3, resilience=1)) == 1

    def test_registers_only_means_zero(self):
        assert default_resilience(min_register_consensus_system()) == 0


class TestRefuteCandidate:
    def test_delegation_two_processes(self):
        verdict = refute_candidate(delegation_consensus_system(2, resilience=0))
        assert verdict.refuted
        assert verdict.mechanism == "similarity-termination"
        assert isinstance(verdict.refutation, TerminationViolation)
        assert verdict.refutation.exact

    def test_delegation_three_processes_f1(self):
        verdict = refute_candidate(delegation_consensus_system(3, resilience=1))
        assert verdict.refuted
        assert len(verdict.refutation.victims) == 2  # f + 1

    def test_tob_candidate(self):
        verdict = refute_candidate(
            tob_delegation_system(2, resilience=0), budget=Budget(max_states=400_000)
        )
        assert verdict.refuted
        assert verdict.mechanism == "similarity-termination"

    def test_verdict_carries_whole_pipeline(self):
        verdict = refute_candidate(delegation_consensus_system(2, resilience=0))
        assert verdict.lemma4 is not None and verdict.lemma4.bivalent is not None
        assert verdict.hook is not None
        assert verdict.lemma8 is not None
        assert verdict.lemma8.violation is not None
        assert verdict.detail

    def test_univalent_candidate_reports_dodge(self):
        # The min-register protocol is univalent everywhere; the valence
        # pipeline cannot engage and says so (the direct liveness attack
        # is the tool for it — see test_refutation).
        verdict = refute_candidate(min_register_consensus_system())
        assert not verdict.refuted
        assert verdict.mechanism == "no-bivalent-initialization"

    def test_explicit_resilience_overrides_default(self):
        verdict = refute_candidate(
            delegation_consensus_system(3, resilience=1), resilience=1
        )
        assert verdict.refuted


class TestBoundedAdversary:
    def test_failure_free_avoidance_is_eventually_forced(self):
        # Matches the paper: on a safe candidate, the failure-free Fig. 3
        # construction terminates — decision avoidance alone cannot stall
        # forever; indefinite stalling needs the failure-based attacks.
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        run = bounded_undecided_run(system, root, max_steps=2_000)
        assert run.decided
        assert 0 < run.steps < 2_000

    def test_postpones_at_least_as_long_as_round_robin(self):
        from repro.ioa import RoundRobinScheduler, run as drive

        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 1}).final_state
        eager = drive(
            system,
            RoundRobinScheduler(),
            max_steps=500,
            start=root,
            stop=lambda e: bool(system.decisions(e.final_state)),
        )
        adversarial = bounded_undecided_run(system, root, max_steps=500)
        assert adversarial.steps >= len(eager)
        assert adversarial.visited_states >= 1
