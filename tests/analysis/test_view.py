"""Unit tests for the deterministic system view (Section 3.1)."""

import pytest

from repro.analysis import DeterministicSystemView, NondeterminismError
from repro.protocols import delegation_consensus_system
from repro.services import CanonicalAtomicObject
from repro.system import DistributedSystem, IdleProcess, ScriptProcess
from repro.ioa import Task, invoke
from repro.types import k_set_consensus_type


@pytest.fixture
def view_and_root():
    system = delegation_consensus_system(2, resilience=0)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1}).final_state
    return system, view, root


class TestStep:
    def test_unique_transition(self, view_and_root):
        system, view, root = view_and_root
        task = system.process(0).tasks()[0]
        step = view.step(root, task)
        assert step is not None
        action, post = step
        assert action == invoke("cons", 0, ("init", 0))

    def test_inapplicable_task_returns_none(self, view_and_root):
        system, view, root = view_and_root
        # No invocation performed yet: the service perform task is idle.
        service_task = Task("atomic[cons]", ("perform", 0))
        assert view.step(root, service_task) is None
        assert not view.applicable(root, service_task)

    def test_apply_and_action_of(self, view_and_root):
        system, view, root = view_and_root
        task = system.process(1).tasks()[0]
        assert view.action_of(root, task) == invoke("cons", 1, ("init", 1))
        post = view.apply(root, task)
        assert post != root

    def test_apply_raises_when_inapplicable(self, view_and_root):
        _, view, root = view_and_root
        with pytest.raises(ValueError):
            view.apply(root, Task("atomic[cons]", ("perform", 0)))

    def test_step_is_cached(self, view_and_root):
        _, view, root = view_and_root
        task = view.tasks[0]
        first = view.step(root, task)
        second = view.step(root, task)
        assert first is second


class TestDeterminismEnforcement:
    def test_nondeterministic_type_raises(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        service = CanonicalAtomicObject(kset, (0,), 0, service_id="k")
        process = ScriptProcess(
            0, [invoke("k", 0, ("init", 0)), invoke("k", 0, ("init", 1))],
            connections=["k"],
        )
        system = DistributedSystem([process], services=[service])
        view = DeterministicSystemView(system)
        state = system.some_start_state()
        # Queue two proposals so the second perform branches.
        for _ in range(2):
            state = view.apply(state, process.tasks()[0])
        state = view.apply(state, Task(service.name, ("perform", 0)))
        with pytest.raises(NondeterminismError):
            view.step(state, Task(service.name, ("perform", 0)))

    def test_failure_free_guard(self, view_and_root):
        system, view, root = view_and_root
        failed = system.fail_process(root, 0)
        with pytest.raises(ValueError, match="failed"):
            view.check_failure_free(failed)
        view.check_failure_free(root)  # does not raise


class TestParticipants:
    def test_invoke_participants(self, view_and_root):
        system, view, root = view_and_root
        task = system.process(0).tasks()[0]
        assert set(view.participants(root, task)) == {"P[0]", "atomic[cons]"}

    def test_at_most_two_participants_everywhere(self, view_and_root):
        system, view, root = view_and_root
        for task in view.applicable_tasks(root):
            assert len(view.participants(root, task)) <= 2


class TestReplay:
    def test_run_task_sequence_strict(self, view_and_root):
        system, view, root = view_and_root
        p0 = system.process(0).tasks()[0]
        p1 = system.process(1).tasks()[0]
        execution = view.run_task_sequence(root, [p0, p1])
        assert len(execution) == 2
        assert execution.final_state != root

    def test_strict_replay_raises_on_inapplicable(self, view_and_root):
        _, view, root = view_and_root
        with pytest.raises(ValueError):
            view.run_task_sequence(root, [Task("atomic[cons]", ("perform", 0))])

    def test_lenient_replay_skips(self, view_and_root):
        _, view, root = view_and_root
        execution = view.run_task_sequence(
            root, [Task("atomic[cons]", ("perform", 0))], strict=False
        )
        assert len(execution) == 0

    def test_successors_enumerates_applicable(self, view_and_root):
        _, view, root = view_and_root
        successors = view.successors(root)
        tasks = [t for t, _, _ in successors]
        assert len(tasks) == len(set(tasks))
        assert all(view.applicable(root, t) for t in tasks)
