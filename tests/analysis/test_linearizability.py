"""Unit tests for the linearizability checker (Herlihy-Wing)."""

import pytest

from repro.analysis.linearizability import (
    Operation,
    check_linearizable,
    find_non_linearizable_witness,
    history_from_trace,
    trace_is_linearizable,
)
from repro.ioa import invoke, respond
from repro.types import (
    binary_consensus_type,
    queue_type,
    read_write_type,
)


class TestHistoryExtraction:
    def test_matched_operations(self):
        trace = [
            invoke("r", 0, ("write", 1)),
            invoke("r", 1, ("read",)),
            respond("r", 0, ("ack",)),
            respond("r", 1, ("value", 1)),
        ]
        operations = history_from_trace(trace, "r")
        assert len(operations) == 2
        write_op = next(o for o in operations if o.endpoint == 0)
        assert write_op.invocation == ("write", 1)
        assert write_op.response == ("ack",)
        assert write_op.invoked_at == 0 and write_op.responded_at == 2

    def test_pending_operation(self):
        trace = [invoke("r", 0, ("read",))]
        operations = history_from_trace(trace, "r")
        assert operations[0].is_pending

    def test_fifo_matching_per_endpoint(self):
        trace = [
            invoke("r", 0, ("write", 1)),
            invoke("r", 0, ("read",)),
            respond("r", 0, ("ack",)),
            respond("r", 0, ("value", 1)),
        ]
        operations = history_from_trace(trace, "r")
        assert operations[0].invocation == ("write", 1)
        assert operations[1].invocation == ("read",)

    def test_unmatched_response_rejected(self):
        with pytest.raises(ValueError):
            history_from_trace([respond("r", 0, ("ack",))], "r")

    def test_other_services_ignored(self):
        trace = [invoke("other", 0, ("read",)), invoke("r", 0, ("read",))]
        assert len(history_from_trace(trace, "r")) == 1


class TestRegisterHistories:
    def test_sequential_history_linearizable(self):
        rw = read_write_type(values=(0, 1, 2))
        trace = [
            invoke("r", 0, ("write", 1)),
            respond("r", 0, ("ack",)),
            invoke("r", 1, ("read",)),
            respond("r", 1, ("value", 1)),
        ]
        assert trace_is_linearizable(trace, "r", rw)

    def test_concurrent_history_linearizable_both_orders(self):
        rw = read_write_type(values=(0, 1, 2))
        # Overlapping write(1) and read: read may see 0 or 1.
        for seen in (0, 1):
            trace = [
                invoke("r", 0, ("write", 1)),
                invoke("r", 1, ("read",)),
                respond("r", 1, ("value", seen)),
                respond("r", 0, ("ack",)),
            ]
            assert trace_is_linearizable(trace, "r", rw), seen

    def test_real_time_order_violation_detected(self):
        rw = read_write_type(values=(0, 1, 2))
        # write(1) completes BEFORE the read starts, yet the read sees 0.
        trace = [
            invoke("r", 0, ("write", 1)),
            respond("r", 0, ("ack",)),
            invoke("r", 1, ("read",)),
            respond("r", 1, ("value", 0)),
        ]
        assert not trace_is_linearizable(trace, "r", rw)
        assert find_non_linearizable_witness(trace, "r", rw) is not None

    def test_stale_read_between_writes_rejected(self):
        rw = read_write_type(values=(0, 1, 2))
        trace = [
            invoke("r", 0, ("write", 1)),
            respond("r", 0, ("ack",)),
            invoke("r", 0, ("write", 2)),
            respond("r", 0, ("ack",)),
            invoke("r", 1, ("read",)),
            respond("r", 1, ("value", 1)),  # both writes already done
        ]
        assert not trace_is_linearizable(trace, "r", rw)

    def test_pending_write_may_take_effect(self):
        rw = read_write_type(values=(0, 1, 2))
        # The write never responded, but the read may still see it.
        trace = [
            invoke("r", 0, ("write", 1)),
            invoke("r", 1, ("read",)),
            respond("r", 1, ("value", 1)),
        ]
        assert trace_is_linearizable(trace, "r", rw)

    def test_pending_write_may_be_dropped(self):
        rw = read_write_type(values=(0, 1, 2))
        trace = [
            invoke("r", 0, ("write", 1)),
            invoke("r", 1, ("read",)),
            respond("r", 1, ("value", 0)),
        ]
        assert trace_is_linearizable(trace, "r", rw)


class TestConsensusHistories:
    def test_agreeing_history_linearizable(self):
        consensus = binary_consensus_type()
        trace = [
            invoke("c", 0, ("init", 0)),
            invoke("c", 1, ("init", 1)),
            respond("c", 0, ("decide", 1)),
            respond("c", 1, ("decide", 1)),
        ]
        assert trace_is_linearizable(trace, "c", consensus)

    def test_disagreeing_history_rejected(self):
        consensus = binary_consensus_type()
        trace = [
            invoke("c", 0, ("init", 0)),
            invoke("c", 1, ("init", 1)),
            respond("c", 0, ("decide", 0)),
            respond("c", 1, ("decide", 1)),
        ]
        assert not trace_is_linearizable(trace, "c", consensus)

    def test_second_proposer_cannot_win_after_first_decides(self):
        consensus = binary_consensus_type()
        trace = [
            invoke("c", 0, ("init", 0)),
            respond("c", 0, ("decide", 0)),
            invoke("c", 1, ("init", 1)),
            respond("c", 1, ("decide", 1)),
        ]
        assert not trace_is_linearizable(trace, "c", consensus)


class TestQueueHistories:
    def test_fifo_history(self):
        queue = queue_type(items=("a", "b"))
        trace = [
            invoke("q", 0, ("enq", "a")),
            respond("q", 0, ("ack",)),
            invoke("q", 1, ("enq", "b")),
            respond("q", 1, ("ack",)),
            invoke("q", 0, ("deq",)),
            respond("q", 0, ("item", "a")),
        ]
        assert trace_is_linearizable(trace, "q", queue)

    def test_out_of_order_dequeue_rejected(self):
        queue = queue_type(items=("a", "b"))
        trace = [
            invoke("q", 0, ("enq", "a")),
            respond("q", 0, ("ack",)),
            invoke("q", 1, ("enq", "b")),
            respond("q", 1, ("ack",)),
            invoke("q", 0, ("deq",)),
            respond("q", 0, ("item", "b")),  # skips "a"
        ]
        assert not trace_is_linearizable(trace, "q", queue)

    def test_concurrent_enqueues_either_order(self):
        queue = queue_type(items=("a", "b"))
        for first in ("a", "b"):
            trace = [
                invoke("q", 0, ("enq", "a")),
                invoke("q", 1, ("enq", "b")),
                respond("q", 0, ("ack",)),
                respond("q", 1, ("ack",)),
                invoke("q", 0, ("deq",)),
                respond("q", 0, ("item", first)),
            ]
            assert trace_is_linearizable(trace, "q", queue), first


class TestCanonicalObjectsAreLinearizable:
    """The Fig. 1 construction really produces linearizable behavior."""

    @pytest.mark.parametrize("seed", range(8))
    def test_register_object_histories(self, seed):
        from repro.ioa import RandomScheduler, run
        from repro.services import CanonicalRegister
        from repro.system import DistributedSystem, ScriptProcess

        register = CanonicalRegister(
            "r", endpoints=(0, 1), values=(0, 1, 2), initial=0
        )
        p0 = ScriptProcess(
            0,
            [invoke("r", 0, ("write", 1)), invoke("r", 0, ("read",))],
            connections=["r"],
        )
        p1 = ScriptProcess(
            1,
            [invoke("r", 1, ("write", 2)), invoke("r", 1, ("read",))],
            connections=["r"],
        )
        system = DistributedSystem([p0, p1], registers=[register])
        execution = run(system, RandomScheduler(seed), max_steps=60)
        rw = read_write_type(values=(0, 1, 2))
        assert trace_is_linearizable(execution.actions, "r", rw)

    @pytest.mark.parametrize("seed", range(8))
    def test_consensus_object_histories(self, seed):
        from repro.analysis import run_consensus_round
        from repro.protocols import delegation_consensus_system
        from repro.ioa import RandomScheduler, run

        system = delegation_consensus_system(3, resilience=2)
        initialization = system.initialization({0: 0, 1: 1, 2: 0})
        execution = run(
            system,
            RandomScheduler(seed),
            max_steps=200,
            start=initialization.final_state,
        )
        assert trace_is_linearizable(
            execution.actions, "cons", binary_consensus_type()
        )
