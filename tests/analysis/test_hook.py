"""Unit tests for the hook construction (Figs. 2-3) and Lemma 8's analysis."""

import pytest

from repro.analysis import (
    FairCycle,
    Hook,
    Valence,
    analyze_valence,
    find_hook,
    lemma8_case_analysis,
)
from repro.protocols import delegation_consensus_system, tob_delegation_system
from repro.engine import Budget


def hook_for(system, proposals, max_states=400_000):
    analysis = analyze_valence(
        system, system.initialization(proposals).final_state, budget=Budget(max_states=max_states)
    )
    root = system.initialization(proposals).final_state
    outcome, stats = find_hook(analysis, root)
    return system, analysis, outcome, stats


class TestHookSearch:
    def test_requires_bivalent_start(self):
        system = delegation_consensus_system(2, resilience=0)
        root = system.initialization({0: 0, 1: 0}).final_state  # 0-valent
        analysis = analyze_valence(system, root)
        with pytest.raises(ValueError):
            find_hook(analysis, root)

    def test_delegation_candidate_yields_hook(self):
        system, analysis, outcome, stats = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        assert isinstance(outcome, Hook)
        assert stats.inner_bfs_expansions > 0

    def test_hook_shape_matches_fig2(self):
        system, analysis, hook, _ = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        view = analysis.view
        # alpha is bivalent; e(alpha) = s0; e(e'(alpha)) = s1.
        assert analysis.is_bivalent(hook.alpha)
        assert view.apply(hook.alpha, hook.e) == hook.s0
        assert view.apply(hook.alpha, hook.e_prime) == hook.alpha_prime
        assert view.apply(hook.alpha_prime, hook.e) == hook.s1
        # Opposite univalent valences at the two ends.
        assert hook.valence0.is_univalent and hook.valence1.is_univalent
        assert hook.valence0 is not hook.valence1
        assert analysis.valence(hook.s0) is hook.valence0
        assert analysis.valence(hook.s1) is hook.valence1

    def test_hook_tasks_differ(self):
        _, _, hook, _ = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        assert hook.e != hook.e_prime  # Claim 1 of Lemma 8

    def test_three_process_candidate(self):
        system, analysis, outcome, _ = hook_for(
            delegation_consensus_system(3, resilience=1), {0: 0, 1: 1, 2: 0}
        )
        assert isinstance(outcome, Hook)

    def test_tob_candidate_yields_hook(self):
        system, analysis, outcome, _ = hook_for(
            tob_delegation_system(2, resilience=0), {0: 0, 1: 1}
        )
        assert isinstance(outcome, Hook)


class TestLemma8:
    def test_delegation_hook_lands_in_claim_4_1(self):
        system, analysis, hook, _ = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        report = lemma8_case_analysis(system, analysis, hook)
        assert report.claim == "claim4.1-shared-service-internal"
        assert not report.commuted
        assert report.violation is not None
        assert report.violation.kind == "service"
        assert report.violation.index == "cons"

    def test_tob_hook_lands_in_claim_4_1(self):
        system, analysis, hook, _ = hook_for(
            tob_delegation_system(2, resilience=0), {0: 0, 1: 1}
        )
        report = lemma8_case_analysis(system, analysis, hook)
        assert report.claim == "claim4.1-shared-service-internal"
        assert report.violation is not None

    def test_violation_endpoint_states_have_hook_valences(self):
        system, analysis, hook, _ = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        report = lemma8_case_analysis(system, analysis, hook)
        violation = report.violation
        # The 0-valent member must really be 0-valent, etc.
        assert analysis.valence(violation.s0) is hook.valence0
        assert analysis.valence(violation.s1) is hook.valence1

    def test_shared_participants_reported(self):
        system, analysis, hook, _ = hook_for(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        report = lemma8_case_analysis(system, analysis, hook)
        assert report.shared_participants == ("atomic[cons]",)
