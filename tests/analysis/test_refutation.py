"""Unit tests for the Lemma 6/7 constructive refutation engine."""

import pytest

from repro.analysis import (
    TerminationViolation,
    analyze_valence,
    choose_victims_for_process,
    choose_victims_for_service,
    find_hook,
    lemma8_case_analysis,
    liveness_attack,
    refute_from_similarity,
    run_silenced,
    scan_for_similarity_violations,
    silenced_services_for,
)
from repro.protocols import (
    delegation_consensus_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


class TestVictimSelection:
    def test_process_victims_include_j(self):
        system = delegation_consensus_system(4, resilience=1)
        victims = choose_victims_for_process(system, j=2, resilience=1)
        assert 2 in victims
        assert len(victims) == 2

    def test_process_victims_require_enough_processes(self):
        system = delegation_consensus_system(2, resilience=0)
        with pytest.raises(ValueError):
            choose_victims_for_process(system, j=0, resilience=2)

    def test_service_victims_small_service_fully_failed(self):
        # |J_k| <= f + 1: J_k must be a subset of J.
        system = tob_delegation_system(3, resilience=1)
        # tob has endpoints (0,1,2); take a 2-endpoint sub-case via the
        # delegation system instead:
        system = delegation_consensus_system(4, resilience=1)
        # shrink: pretend service endpoints are all four; |Jk| = 4 > f+1=2
        victims = choose_victims_for_service(system, k="cons", resilience=1)
        assert len(victims) == 2
        assert victims <= set(system.service("cons").endpoints)

    def test_service_victims_large_quota(self):
        system = delegation_consensus_system(3, resilience=2)
        victims = choose_victims_for_service(system, k="cons", resilience=2)
        # |Jk| = 3 <= f+1 = 3: all endpoints of the service fail.
        assert victims == frozenset({0, 1, 2})


class TestSilencedServices:
    def test_service_silenced_beyond_resilience(self):
        system = delegation_consensus_system(3, resilience=1)
        silenced = silenced_services_for(system, frozenset({0, 1}))
        assert "cons" in silenced

    def test_service_not_silenced_within_resilience(self):
        system = delegation_consensus_system(3, resilience=1)
        silenced = silenced_services_for(system, frozenset({0}))
        assert "cons" not in silenced

    def test_also_parameter(self):
        system = delegation_consensus_system(3, resilience=2)
        silenced = silenced_services_for(system, frozenset({0}), also=("cons",))
        assert "cons" in silenced


class TestRunSilenced:
    def test_fails_victims_first(self):
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        result = run_silenced(system, root, {0, 1}, {"cons"}, max_steps=200)
        failed_action_count = sum(
            1 for step in result.execution.steps if step.action.kind == "fail"
        )
        assert failed_action_count == 2
        assert result.execution.steps[0].action.kind == "fail"
        assert result.execution.steps[1].action.kind == "fail"

    def test_silenced_service_takes_only_dummies(self):
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        result = run_silenced(system, root, {0, 1}, {"cons"}, max_steps=500)
        for step in result.execution.steps:
            assert step.action.kind not in ("perform", "respond"), (
                f"silenced service acted: {step.action}"
            )

    def test_cycle_detection_is_exact(self):
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        result = run_silenced(system, root, {0, 1}, {"cons"}, max_steps=100_000)
        assert result.cycle_found
        assert result.decision is None
        assert result.cycle_length > 0

    def test_unsilenced_run_decides(self):
        system = delegation_consensus_system(3, resilience=2)
        root = system.initialization({0: 1, 1: 1, 2: 1}).final_state
        # One failure, service survives (f = 2): survivors decide.
        result = run_silenced(system, root, {0}, set(), max_steps=5000)
        assert result.decision is not None
        decider, value = result.decision
        assert decider in (1, 2)
        assert value == 1


class TestRefuteFromSimilarity:
    def refutable_violation(self, system, proposals):
        root = system.initialization(proposals).final_state
        analysis = analyze_valence(system, root, budget=Budget(max_states=400_000))
        hook, _ = find_hook(analysis, root)
        report = lemma8_case_analysis(system, analysis, hook)
        assert report.violation is not None
        return report.violation

    def test_delegation_refuted_by_termination(self):
        system = delegation_consensus_system(2, resilience=0)
        violation = self.refutable_violation(system, {0: 0, 1: 1})
        outcome = refute_from_similarity(system, violation, resilience=0)
        assert isinstance(outcome, TerminationViolation)
        assert outcome.exact
        assert len(outcome.victims) == 1
        assert outcome.survivors

    def test_tob_refuted_by_termination(self):
        system = tob_delegation_system(2, resilience=0)
        violation = self.refutable_violation(system, {0: 0, 1: 1})
        outcome = refute_from_similarity(system, violation, resilience=0)
        assert isinstance(outcome, TerminationViolation)
        assert outcome.exact

    def test_victim_count_is_f_plus_one(self):
        system = delegation_consensus_system(3, resilience=1)
        violation = self.refutable_violation(system, {0: 0, 1: 1, 2: 0})
        outcome = refute_from_similarity(system, violation, resilience=1)
        assert isinstance(outcome, TerminationViolation)
        assert len(outcome.victims) == 2


class TestLivenessAttack:
    def test_min_register_attack(self):
        system = min_register_consensus_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        outcome = liveness_attack(system, root, victims=[1], horizon=50_000)
        assert outcome is not None
        assert outcome.exact
        assert outcome.survivors == frozenset({0})

    def test_attack_fails_against_wait_free_object(self):
        # Wait-free service: survivors decide, the attack returns None.
        system = delegation_consensus_system(3, resilience=2)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        outcome = liveness_attack(system, root, victims=[0, 1], horizon=50_000)
        assert outcome is None

    def test_attack_succeeds_beyond_wait_free_resilience(self):
        # Even wait-free objects go silent when ALL endpoints fail; but
        # then there are no survivors to betray, so attack against a
        # proper subset is what matters: f-resilient with f+1 victims.
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        outcome = liveness_attack(system, root, victims=[0, 1], horizon=50_000)
        assert outcome is not None
        assert outcome.description.startswith("direct liveness attack")


class TestWitnessFairness:
    """The 'exact infinite fair execution' claim, certified mechanically:
    the cycle found by the silencing runner, packaged as a lasso, passes
    the I/O-automaton fairness check of Section 2.1.1."""

    def test_silenced_cycle_is_a_fair_lasso(self):
        from repro.ioa import lasso_is_fair

        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        result = run_silenced(system, root, {0, 1}, {"cons"}, max_steps=100_000)
        assert result.cycle_found
        lasso = result.as_lasso()
        assert len(lasso.cycle) == result.cycle_length
        assert lasso_is_fair(lasso, system)

    def test_no_decision_anywhere_on_the_cycle(self):
        system = delegation_consensus_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
        result = run_silenced(system, root, {0, 1}, {"cons"}, max_steps=100_000)
        lasso = result.as_lasso()
        for step in lasso.cycle:
            assert not system.decisions(step.post)

    def test_as_lasso_requires_a_cycle(self):
        import pytest as _pytest

        system = delegation_consensus_system(3, resilience=2)
        root = system.initialization({0: 1, 1: 1, 2: 1}).final_state
        result = run_silenced(system, root, {0}, set(), max_steps=5000)
        assert not result.cycle_found
        with _pytest.raises(ValueError):
            result.as_lasso()

    def test_min_register_cycle_is_fair(self):
        from repro.ioa import lasso_is_fair

        system = min_register_consensus_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        result = run_silenced(system, root, {1}, set(), max_steps=50_000)
        assert result.cycle_found
        assert lasso_is_fair(result.as_lasso(), system)
