"""Unit tests for the consensus axioms checker (Section 2.2.4, App. B)."""

import pytest

from repro.analysis import (
    check_agreement,
    check_k_agreement,
    check_modified_termination,
    check_validity,
    exhaustive_safety_check,
    run_consensus_round,
)
from repro.protocols import (
    delegation_consensus_system,
    race_register_consensus_system,
)
from repro.system import upfront_failures


class TestAxiomPredicates:
    def test_agreement_ok(self):
        assert check_agreement({0: 1, 1: 1, 2: 1}) == []

    def test_agreement_violation(self):
        violations = check_agreement({0: 0, 1: 1})
        assert [v.axiom for v in violations] == ["agreement"]

    def test_agreement_vacuous_when_empty(self):
        assert check_agreement({}) == []

    def test_k_agreement(self):
        assert check_k_agreement({0: 0, 1: 1}, k=2) == []
        assert check_k_agreement({0: 0, 1: 1, 2: 2}, k=2) != []

    def test_validity_ok(self):
        assert check_validity({0: 1}, proposals={0: 1, 1: 0}) == []

    def test_validity_violation(self):
        violations = check_validity({0: 2}, proposals={0: 1, 1: 0})
        assert [v.axiom for v in violations] == ["validity"]

    def test_modified_termination_ok(self):
        violations = check_modified_termination(
            decisions={0: 1}, proposals={0: 1, 1: 0}, failed=frozenset({1})
        )
        assert violations == []

    def test_modified_termination_violation(self):
        violations = check_modified_termination(
            decisions={}, proposals={0: 1}, failed=frozenset()
        )
        assert [v.axiom for v in violations] == ["modified-termination"]

    def test_modified_termination_ignores_uninited(self):
        # Only processes that received inputs must decide.
        violations = check_modified_termination(
            decisions={}, proposals={}, failed=frozenset()
        )
        assert violations == []


class TestRunConsensusRound:
    def test_failure_free_delegation(self):
        check = run_consensus_round(
            delegation_consensus_system(3, resilience=1), {0: 1, 1: 0, 2: 0}
        )
        assert check.ok
        assert len(set(check.decisions.values())) == 1

    def test_within_resilience_failures(self):
        check = run_consensus_round(
            delegation_consensus_system(3, resilience=1),
            {0: 1, 1: 0, 2: 0},
            failure_schedule=upfront_failures([2]),
        )
        assert check.ok
        assert set(check.decisions) == {0, 1}

    def test_seeded_random_schedules(self):
        for seed in range(10):
            check = run_consensus_round(
                delegation_consensus_system(2, resilience=1),
                {0: 1, 1: 0},
                seed=seed,
            )
            assert check.ok, check.violations

    def test_race_candidate_fails_agreement_on_some_schedule(self):
        failures = []
        for seed in range(40):
            check = run_consensus_round(
                race_register_consensus_system(), {0: 0, 1: 1}, seed=seed
            )
            failures.extend(v.axiom for v in check.violations)
        assert "agreement" in failures


class TestExhaustiveSafety:
    def test_delegation_safe_everywhere(self):
        result = exhaustive_safety_check(
            delegation_consensus_system(2, resilience=0), {0: 0, 1: 1}
        )
        assert result.ok
        assert result.states_visited > 10

    def test_delegation_safe_with_failure_branches(self):
        result = exhaustive_safety_check(
            delegation_consensus_system(2, resilience=1),
            {0: 0, 1: 1},
            failure_choices=(0, 1),
        )
        assert result.ok

    def test_race_candidate_unsafe(self):
        result = exhaustive_safety_check(
            race_register_consensus_system(), {0: 0, 1: 1}
        )
        assert not result.ok
        assert result.violations[0].axiom == "agreement"

    def test_budget_enforced(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            exhaustive_safety_check(
                delegation_consensus_system(3, resilience=1),
                {0: 0, 1: 1, 2: 0},
                max_states=5,
            )
