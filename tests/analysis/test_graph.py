"""Unit tests for the literal execution tree G(C) (Section 3.3)."""

import pytest

from repro.analysis import DeterministicSystemView, Valence, analyze_valence
from repro.analysis.graph import (
    ExecutionTree,
    state_collapse_is_sound,
    tree_edge_determinism_holds,
    tree_valence_histogram,
    unfold,
)
from repro.protocols import delegation_consensus_system


@pytest.fixture
def setup():
    system = delegation_consensus_system(2, resilience=0)
    view = DeterministicSystemView(system)
    initialization = system.initialization({0: 0, 1: 1})
    analysis = analyze_valence(system, initialization.final_state)
    return system, view, initialization, analysis


class TestUnfolding:
    def test_root_is_initialization(self, setup):
        _, view, initialization, _ = setup
        tree = unfold(view, initialization, depth=2)
        assert tree.root.execution == initialization
        assert tree.root.depth == 0

    def test_children_are_task_extensions(self, setup):
        system, view, initialization, _ = setup
        tree = unfold(view, initialization, depth=1)
        state = initialization.final_state
        applicable = view.applicable_tasks(state)
        assert len(tree.root.children) == len(applicable)
        for child in tree.root.children:
            assert child.edge_task in applicable
            assert child.execution.final_state == view.apply(
                state, child.edge_task
            )
            assert len(child.execution) == len(initialization) + 1

    def test_vertex_count_and_depth(self, setup):
        _, view, initialization, _ = setup
        tree = unfold(view, initialization, depth=3)
        assert tree.vertex_count == sum(1 for _ in tree.vertices())
        assert all(v.depth <= 3 for v in tree.vertices())

    def test_budget_enforced(self, setup):
        _, view, initialization, _ = setup
        with pytest.raises(RuntimeError, match="exceeded"):
            unfold(view, initialization, depth=20, max_vertices=50)

    def test_prune_cuts_subtrees(self, setup):
        system, view, initialization, _ = setup
        full = unfold(view, initialization, depth=4)
        pruned = unfold(
            view,
            initialization,
            depth=4,
            prune=lambda vertex: bool(view.decisions(vertex.final_state)),
        )
        assert pruned.vertex_count <= full.vertex_count

    def test_path_tasks_reconstruct_execution(self, setup):
        _, view, initialization, _ = setup
        tree = unfold(view, initialization, depth=3)
        for vertex in tree.vertices():
            replayed = view.run_task_sequence(
                initialization.final_state, vertex.path_tasks()
            )
            assert replayed.final_state == vertex.final_state


class TestPaperProperties:
    def test_one_edge_per_label(self, setup):
        # Section 3.3: "at most one edge labeled with e outgoing from alpha".
        _, view, initialization, _ = setup
        tree = unfold(view, initialization, depth=4)
        assert tree_edge_determinism_holds(tree)

    def test_state_collapse_sound(self, setup):
        _, view, initialization, analysis = setup
        tree = unfold(view, initialization, depth=5)
        assert state_collapse_is_sound(tree, analysis)

    def test_collapse_actually_collapses(self, setup):
        # Distinct executions reach equal states: the tree is strictly
        # larger than the state graph at sufficient depth.
        _, view, initialization, analysis = setup
        tree = unfold(view, initialization, depth=6)
        tree_states = {v.final_state for v in tree.vertices()}
        assert tree.vertex_count > len(tree_states)

    def test_valence_histogram_consistency(self, setup):
        _, view, initialization, analysis = setup
        tree = unfold(view, initialization, depth=4)
        histogram = tree_valence_histogram(tree, analysis)
        assert sum(histogram.values()) == tree.vertex_count
        assert histogram[Valence.BLOCKED] == 0

    def test_univalent_vertices_have_univalent_descendants(self, setup):
        _, view, initialization, analysis = setup
        tree = unfold(view, initialization, depth=5)
        for vertex in tree.vertices():
            valence = analysis.valence(vertex.final_state)
            if not valence.is_univalent:
                continue
            for child in vertex.children:
                assert analysis.valence(child.final_state) is valence
