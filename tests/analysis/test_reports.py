"""Unit tests for the report formatters."""

import pytest

from repro.analysis import refute_candidate
from repro.analysis.reports import (
    format_hook,
    format_lemma4,
    format_lemma8,
    format_refutation,
    format_verdict,
)
from repro.protocols import delegation_consensus_system


@pytest.fixture(scope="module")
def verdict():
    return refute_candidate(delegation_consensus_system(2, resilience=0))


class TestFormatters:
    def test_format_verdict_mentions_all_stages(self, verdict):
        text = format_verdict(verdict)
        assert "refuted:   True" in text
        assert "Lemma 4" in text
        assert "Lemma 5" in text
        assert "Lemma 8" in text
        assert "Lemmas 6/7" in text

    def test_format_lemma4_lists_chain(self, verdict):
        lines = format_lemma4(verdict.lemma4)
        # n + 1 = 3 chain entries plus header and summary.
        assert len(lines) == 5
        assert "bivalent initialization" in lines[-1]

    def test_format_hook_shows_both_tasks(self, verdict):
        lines = format_hook(verdict.hook)
        assert any("e  =" in line for line in lines)
        assert any("e' =" in line for line in lines)
        assert any("0-valent" in line for line in lines)
        assert any("1-valent" in line for line in lines)

    def test_format_lemma8_conclusion(self, verdict):
        lines = format_lemma8(verdict.lemma8)
        assert any("claim4.1" in line for line in lines)
        assert any("service-similar" in line for line in lines)

    def test_format_refutation_exact_witness(self, verdict):
        lines = format_refutation(verdict.refutation)
        assert any("exact infinite fair execution" in line for line in lines)
        assert any("never decide" in line for line in lines)

    def test_dodging_candidate_report(self):
        from repro.protocols import min_register_consensus_system

        dodge = refute_candidate(min_register_consensus_system())
        text = format_verdict(dodge)
        assert "no bivalent initialization" in text
