"""Unit tests for the standard sequential-type library."""

import pytest

from repro.types import (
    ACK,
    STANDARD_TYPES,
    binary_consensus_type,
    compare_and_swap_type,
    consensus_type,
    counter_type,
    fetch_and_add_type,
    k_set_consensus_type,
    queue_type,
    read_modify_write_type,
    read_write_type,
    run_sequentially,
)
from repro.types import test_and_set_type as make_test_and_set_type


class TestReadWrite:
    def test_read_returns_current_value(self):
        rw = read_write_type(values=(0, 1, 2), initial=1)
        assert rw.apply(("read",), 1) == ((("value", 1), 1),)

    def test_write_installs_value(self):
        rw = read_write_type(values=(0, 1, 2))
        assert rw.apply(("write", 2), 0) == ((ACK, 2),)

    def test_initial_defaults_to_first(self):
        assert read_write_type(values=(7, 8)).initial_values == (7,)

    def test_initial_must_be_member(self):
        with pytest.raises(ValueError):
            read_write_type(values=(0, 1), initial=9)

    def test_unknown_invocation_rejected(self):
        rw = read_write_type(values=(0,))
        with pytest.raises(ValueError):
            rw.apply(("pop",), 0)


class TestConsensus:
    def test_paper_example_transitions(self):
        # delta((init(v), {}), (decide(v), {v})) and
        # delta((init(v), {v'}), (decide(v'), {v'})).
        consensus = binary_consensus_type()
        assert consensus.apply(("init", 1), frozenset()) == (
            (("decide", 1), frozenset({1})),
        )
        assert consensus.apply(("init", 0), frozenset({1})) == (
            (("decide", 1), frozenset({1})),
        )

    def test_multivalued_consensus(self):
        cons = consensus_type(values=(0, 1, 2, 3))
        responses, _ = run_sequentially(cons, [("init", 3), ("init", 0)])
        assert responses == (("decide", 3), ("decide", 3))

    def test_binary_proposals_validated(self):
        consensus = binary_consensus_type()
        with pytest.raises(ValueError):
            consensus.apply(("init", 2), frozenset())


class TestKSetConsensus:
    def test_remembers_up_to_k_values(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        outcomes = kset.apply(("init", 2), frozenset({0, 1}))
        # |W| = k: state unchanged, response from W.
        assert {new for _, new in outcomes} == {frozenset({0, 1})}
        assert {resp for resp, _ in outcomes} == {("decide", 0), ("decide", 1)}

    def test_below_k_adds_and_may_return_any_remembered(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        outcomes = kset.apply(("init", 2), frozenset({0}))
        assert {new for _, new in outcomes} == {frozenset({0, 2})}
        assert {resp for resp, _ in outcomes} == {("decide", 0), ("decide", 2)}

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_set_consensus_type(0, proposals=(0,))

    def test_one_set_consensus_reduces_to_consensus(self):
        oneset = k_set_consensus_type(1, proposals=(0, 1))
        responses, _ = run_sequentially(oneset, [("init", 1), ("init", 0)])
        assert responses == (("decide", 1), ("decide", 1))


class TestQueue:
    def test_fifo_order(self):
        queue = queue_type(items=("a", "b"))
        responses, _ = run_sequentially(
            queue, [("enq", "a"), ("enq", "b"), ("deq",), ("deq",)]
        )
        assert responses == (ACK, ACK, ("item", "a"), ("item", "b"))

    def test_empty_dequeue(self):
        queue = queue_type(items=("a",))
        assert queue.apply(("deq",), ()) == ((("empty",), ()),)

    def test_capacity_bound(self):
        queue = queue_type(items=("a",), capacity=1)
        assert queue.apply(("enq", "a"), ("a",)) == ((("full",), ("a",)),)


class TestCounter:
    def test_inc_and_get(self):
        counter = counter_type()
        responses, final = run_sequentially(counter, [("inc",), ("inc",), ("get",)])
        assert responses[-1] == ("value", 2)
        assert final == 2

    def test_modulus_wraps(self):
        counter = counter_type(modulus=2)
        _, final = run_sequentially(counter, [("inc",), ("inc",)])
        assert final == 0


class TestTestAndSet:
    def test_first_wins(self):
        tas = make_test_and_set_type()
        responses, final = run_sequentially(
            tas, [("test_and_set",), ("test_and_set",)]
        )
        assert responses == (("old", 0), ("old", 1))
        assert final == 1

    def test_reset(self):
        tas = make_test_and_set_type()
        _, final = run_sequentially(tas, [("test_and_set",), ("reset",)])
        assert final == 0


class TestCompareAndSwap:
    def test_successful_cas(self):
        cas = compare_and_swap_type(values=(0, 1))
        assert cas.apply(("cas", 0, 1), 0) == ((("cas", True, 0), 1),)

    def test_failed_cas_leaves_value(self):
        cas = compare_and_swap_type(values=(0, 1))
        assert cas.apply(("cas", 1, 0), 0) == ((("cas", False, 0), 0),)

    def test_read(self):
        cas = compare_and_swap_type(values=(0, 1))
        assert cas.apply(("read",), 1) == ((("value", 1), 1),)


class TestFetchAndAdd:
    def test_returns_old_and_adds(self):
        faa = fetch_and_add_type(modulus=10)
        responses, final = run_sequentially(faa, [("faa", 1), ("faa", 2)])
        assert responses == (("old", 0), ("old", 1))
        assert final == 3

    def test_membership_predicate(self):
        faa = fetch_and_add_type()
        assert faa.is_invocation(("faa", 17))
        assert not faa.is_invocation(("inc",))


class TestReadModifyWrite:
    def test_named_updates(self):
        rmw = read_modify_write_type(
            values=(0, 1, 2, 3),
            functions={"double": lambda v: (v * 2) % 4, "succ": lambda v: (v + 1) % 4},
        )
        responses, final = run_sequentially(
            rmw, [("rmw", "succ"), ("rmw", "double"), ("rmw", "succ")]
        )
        assert responses == (("old", 0), ("old", 1), ("old", 2))
        assert final == 3


class TestRegistryTable:
    def test_all_standard_types_constructible(self):
        assert set(STANDARD_TYPES) == {
            "read/write",
            "binary-consensus",
            "consensus",
            "k-set-consensus",
            "queue",
            "counter",
            "test&set",
            "compare&swap",
            "fetch&add",
            "read-modify-write",
        }
