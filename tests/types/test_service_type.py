"""Unit tests for service types and the lifts between service classes."""

import pytest

from repro.types import (
    FailureObliviousServiceType,
    GeneralServiceType,
    binary_consensus_type,
    broadcast_response,
    from_sequential,
    is_deterministic_service_type,
    oblivious_as_general,
    single_response,
)


class TestResponseMaps:
    def test_single_response(self):
        assert single_response(3, ("ok",)) == {3: (("ok",),)}

    def test_broadcast_response(self):
        result = broadcast_response((0, 1, 2), "m")
        assert result == {0: ("m",), 1: ("m",), 2: ("m",)}


class TestFromSequential:
    def test_lift_shape(self):
        lifted = from_sequential(binary_consensus_type())
        assert lifted.global_tasks == ()
        assert lifted.invocations == (("init", 0), ("init", 1))

    def test_delta1_wraps_delta(self):
        # Section 5.1: B(i) = [b], B(j) = [] for j != i.
        lifted = from_sequential(binary_consensus_type())
        ((response_map, new_value),) = lifted.apply_perform(
            ("init", 1), 4, frozenset()
        )
        assert response_map == {4: (("decide", 1),)}
        assert new_value == frozenset({1})

    def test_delta2_is_empty(self):
        lifted = from_sequential(binary_consensus_type())
        with pytest.raises(ValueError):
            lifted.apply_compute("g", frozenset())

    def test_membership_carries_over(self):
        lifted = from_sequential(binary_consensus_type())
        assert lifted.is_invocation(("init", 0))
        assert not lifted.is_invocation(("bcast", 0))


class TestObliviousAsGeneral:
    def test_failed_set_ignored(self):
        lifted = oblivious_as_general(from_sequential(binary_consensus_type()))
        for failed in (frozenset(), frozenset({0, 1})):
            ((response_map, new_value),) = lifted.apply_perform(
                ("init", 0), 2, frozenset(), failed
            )
            assert response_map == {2: (("decide", 0),)}
            assert new_value == frozenset({0})

    def test_is_general_service_type(self):
        lifted = oblivious_as_general(from_sequential(binary_consensus_type()))
        assert isinstance(lifted, GeneralServiceType)


class TestTotality:
    def test_empty_delta1_rejected(self):
        broken = FailureObliviousServiceType(
            name="broken",
            initial_values=(0,),
            invocations=(("op",),),
            responses=(),
            global_tasks=(),
            delta1=lambda a, i, v: (),
            delta2=lambda g, v: (),
        )
        with pytest.raises(ValueError, match="delta1"):
            broken.apply_perform(("op",), 0, 0)

    def test_empty_delta2_rejected(self):
        broken = FailureObliviousServiceType(
            name="broken",
            initial_values=(0,),
            invocations=(),
            responses=(),
            global_tasks=("g",),
            delta1=lambda a, i, v: ((({}, v)),),
            delta2=lambda g, v: (),
        )
        with pytest.raises(ValueError, match="delta2"):
            broken.apply_compute("g", 0)

    def test_general_totality_checks(self):
        broken = GeneralServiceType(
            name="broken",
            initial_values=(0,),
            invocations=(("op",),),
            responses=(),
            global_tasks=("g",),
            delta1=lambda a, i, v, failed: (),
            delta2=lambda g, v, failed: (),
        )
        with pytest.raises(ValueError, match="delta1"):
            broken.apply_perform(("op",), 0, 0, frozenset())
        with pytest.raises(ValueError, match="delta2"):
            broken.apply_compute("g", 0, frozenset())


class TestDeterminismCheck:
    def test_lifted_consensus_is_deterministic(self):
        lifted = from_sequential(binary_consensus_type())
        assert is_deterministic_service_type(
            lifted,
            endpoints=(0, 1),
            values=(frozenset(), frozenset({0}), frozenset({1})),
        )

    def test_multiple_initial_values_fail(self):
        two_starts = FailureObliviousServiceType(
            name="two",
            initial_values=(0, 1),
            invocations=(),
            responses=(),
            global_tasks=(),
            delta1=lambda a, i, v: ((({}, v)),),
            delta2=lambda g, v: ((({}, v)),),
        )
        assert not is_deterministic_service_type(two_starts, (0,), (0,))

    def test_branching_delta_fails(self):
        branching = FailureObliviousServiceType(
            name="branchy",
            initial_values=(0,),
            invocations=(("op",),),
            responses=(("a",), ("b",)),
            global_tasks=(),
            delta1=lambda a, i, v: (
                (single_response(i, ("a",)), v),
                (single_response(i, ("b",)), v),
            ),
            delta2=lambda g, v: ((({}, v)),),
        )
        assert not is_deterministic_service_type(branching, (0,), (0,))
