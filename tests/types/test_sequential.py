"""Unit tests for sequential types (Section 2.1.2)."""

import pytest

from repro.types import (
    SequentialType,
    binary_consensus_type,
    k_set_consensus_type,
    legal_response,
    read_write_type,
    run_sequentially,
)


class TestDefinition:
    def test_empty_initial_values_rejected(self):
        with pytest.raises(ValueError):
            SequentialType(
                name="bad",
                initial_values=(),
                invocations=(),
                responses=(),
                delta=lambda a, v: (),
            )

    def test_totality_enforced_at_apply(self):
        broken = SequentialType(
            name="partial",
            initial_values=(0,),
            invocations=(("op",),),
            responses=(("ok",),),
            delta=lambda a, v: (),
        )
        with pytest.raises(ValueError, match="total"):
            broken.apply(("op",), 0)

    def test_membership_via_sample(self):
        consensus = binary_consensus_type()
        assert consensus.is_invocation(("init", 0))
        assert not consensus.is_invocation(("read",))

    def test_membership_via_predicate(self):
        rw = read_write_type(values=(0, 1))
        assert rw.is_invocation(("write", 12345))  # infinite invocation set
        assert not rw.is_invocation(("bcast", 1))


class TestDeterminism:
    def test_read_write_is_deterministic(self):
        assert read_write_type(values=(0, 1, 2)).is_deterministic()

    def test_consensus_is_deterministic(self):
        assert binary_consensus_type().is_deterministic()

    def test_k_set_is_nondeterministic(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        assert not kset.is_deterministic()

    def test_apply_deterministic_raises_on_branching(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        kset.apply(("init", 0), frozenset())  # fine: many outcomes
        state = frozenset({0})
        with pytest.raises(ValueError):
            kset.apply_deterministic(("init", 1), state)

    def test_restriction_makes_deterministic(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        restricted = kset.restrict_to_deterministic()
        assert restricted.is_deterministic()
        # The restricted outcome is one of the original outcomes.
        original = set(kset.apply(("init", 1), frozenset({0})))
        (restricted_outcome,) = restricted.apply(("init", 1), frozenset({0}))
        assert restricted_outcome in original

    def test_restriction_with_custom_chooser(self):
        kset = k_set_consensus_type(2, proposals=(0, 1, 2))
        restricted = kset.restrict_to_deterministic(choose=lambda outcomes: outcomes[-1])
        (outcome,) = restricted.apply(("init", 1), frozenset({0}))
        assert outcome == kset.apply(("init", 1), frozenset({0}))[-1]


class TestReachability:
    def test_consensus_reachable_values(self):
        values = binary_consensus_type().reachable_values()
        assert values == frozenset({frozenset(), frozenset({0}), frozenset({1})})

    def test_reachability_depth_limits(self):
        rw = read_write_type(values=(0, 1))
        assert rw.reachable_values(depth=0) == frozenset({0})


class TestHelpers:
    def test_legal_response(self):
        consensus = binary_consensus_type()
        assert legal_response(consensus, ("init", 1), frozenset(), ("decide", 1))
        assert not legal_response(consensus, ("init", 1), frozenset(), ("decide", 0))
        assert legal_response(
            consensus, ("init", 1), frozenset({0}), ("decide", 0)
        )

    def test_run_sequentially(self):
        rw = read_write_type(values=(0, 1, 2))
        responses, final = run_sequentially(
            rw, [("write", 2), ("read",), ("write", 1), ("read",)]
        )
        assert responses == (("ack",), ("value", 2), ("ack",), ("value", 1))
        assert final == 1

    def test_run_sequentially_first_value_wins(self):
        consensus = binary_consensus_type()
        responses, final = run_sequentially(
            consensus, [("init", 1), ("init", 0), ("init", 0)]
        )
        assert responses == (("decide", 1),) * 3
        assert final == frozenset({1})
