"""Instrumentation wiring: events emitted where claimed, no-ops stay silent.

Covers the guarantees the subsystem makes at its integration points: the
explorer emits one event per expanded state, disabled tracing changes no
outcome and emits nothing, and the process-wide tracer picks up service
input dispatch.
"""

from repro.analysis import (
    DeterministicSystemView,
    explore,
    random_decision_probe,
    refute_candidate,
)
from repro.ioa import Action
from repro.obs import (
    FAILURE_INJECTED,
    NULL_TRACER,
    PHASE,
    SERVICE_INVOCATION,
    STATE_EXPLORED,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.protocols import delegation_consensus_system, last_writer_register_system


def _small_graph_root(system):
    return system.initialization({pid: 0 for pid in system.process_ids}).final_state


class TestExplorerEvents:
    def test_one_event_per_expanded_state(self):
        system = last_writer_register_system()
        root = _small_graph_root(system)
        sink = RingBufferSink()
        graph = explore(DeterministicSystemView(system), root, tracer=Tracer(sink))
        explored = [e for e in sink.events() if e.kind == STATE_EXPLORED]
        assert len(explored) == len(graph.states)
        assert sum(e.data["edges"] for e in explored) == graph.edge_count()


class TestDisabledTracingIsInert:
    def test_null_tracer_emits_nothing(self):
        system = last_writer_register_system()
        explore(DeterministicSystemView(system), _small_graph_root(system))
        assert NULL_TRACER.events_emitted == 0

    def test_verdict_identical_with_and_without_tracing(self):
        system = delegation_consensus_system(3, 1)
        plain = refute_candidate(system)
        sink = RingBufferSink()
        traced = refute_candidate(
            delegation_consensus_system(3, 1),
            tracer=Tracer(sink),
            metrics=MetricsRegistry(),
        )
        assert traced.refuted == plain.refuted
        assert traced.mechanism == plain.mechanism
        assert traced.detail == plain.detail
        assert len(sink) > 0

    def test_probe_identical_with_and_without_tracing(self):
        system = delegation_consensus_system(3, 1)
        plain = random_decision_probe(system, seed=5)
        traced = random_decision_probe(
            system, seed=5, tracer=Tracer(RingBufferSink())
        )
        assert (plain.steps, plain.decisions) == (traced.steps, traced.decisions)


class TestPipelinePhases:
    def test_refute_emits_phase_markers(self):
        sink = RingBufferSink()
        refute_candidate(delegation_consensus_system(3, 1), tracer=Tracer(sink))
        stages = [e.data["stage"] for e in sink.events() if e.kind == PHASE]
        assert stages == ["lemma4", "hook-search", "refutation"]


class TestProcessWideTracer:
    def test_service_invocation_reported_through_current_tracer(self):
        system = delegation_consensus_system(3, 1)
        service = system.services[0]
        state = next(iter(service.start_states()))
        invoke = Action("invoke", (service.service_id, 0, ("init", 0)))
        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            service.apply_input(state, invoke)
        events = [e for e in sink.events() if e.kind == SERVICE_INVOCATION]
        assert len(events) == 1
        assert events[0].process == 0
        assert events[0].data["service"] == service.service_id
        assert events[0].data["invocation"] == ("init", 0)

    def test_service_failure_reported_through_current_tracer(self):
        system = delegation_consensus_system(3, 1)
        service = system.services[0]
        state = next(iter(service.start_states()))
        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            service.apply_input(state, Action("fail", (1,)))
        events = [e for e in sink.events() if e.kind == FAILURE_INJECTED]
        assert len(events) == 1
        assert events[0].data["endpoint"] == 1

    def test_without_installation_nothing_is_recorded(self):
        system = delegation_consensus_system(3, 1)
        service = system.services[0]
        state = next(iter(service.start_states()))
        before = current_tracer().events_emitted
        service.apply_input(
            state, Action("invoke", (service.service_id, 0, ("init", 0)))
        )
        assert current_tracer() is NULL_TRACER
        assert current_tracer().events_emitted == before == 0

    def test_use_tracer_restores_previous(self):
        tracer = Tracer(RingBufferSink())
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
