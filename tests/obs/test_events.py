"""Unit tests for trace events, the tagged codec, and tracer stamping."""

import json

import pytest

from repro.ioa import Action, Task
from repro.obs import (
    KINDS,
    RUN_START,
    STATE_EXPLORED,
    TASK_CHOSEN,
    RingBufferSink,
    TraceEvent,
    Tracer,
    decode_value,
    encode_value,
)


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            42,
            -3.5,
            "text",
            (1, 2, 3),
            ("nested", (4, ("deep",))),
            frozenset({1, 2, 3}),
            {"k": 1, 2: "v"},
            [1, (2,), frozenset({3})],
            Task("proc[0]", "step"),
            Task("atomic[cons]", ("perform", 1)),
            Action("invoke", ("cons", 0, ("init", 1))),
            Action("fail", (2,)),
            (Task("a", "t"), Action("inc", ())),
        ],
        ids=repr,
    )
    def test_round_trip(self, value):
        encoded = encode_value(value)
        # Must survive actual JSON serialization, not just the tagging.
        wire = json.loads(json.dumps(encoded))
        assert decode_value(wire) == value

    def test_tuple_and_list_stay_distinct(self):
        assert decode_value(json.loads(json.dumps(encode_value((1, 2))))) == (1, 2)
        assert decode_value(json.loads(json.dumps(encode_value([1, 2])))) == [1, 2]

    def test_unencodable_degrades_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert decode_value(encode_value(Opaque())) == "<opaque>"

    def test_task_decodes_to_task(self):
        task = Task("svc", ("output", 2))
        decoded = decode_value(json.loads(json.dumps(encode_value(task))))
        assert isinstance(decoded, Task)
        assert decoded == task


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(
            seq=7,
            kind=TASK_CHOSEN,
            process="proc[1]",
            lamport=3,
            data={"task": Task("proc[1]", "step"), "step": 7},
        )
        back = TraceEvent.from_json(event.to_json())
        assert back == event

    def test_kinds_registry_contains_all_constants(self):
        assert RUN_START in KINDS
        assert STATE_EXPLORED in KINDS
        assert "worker_round" in KINDS
        assert "checkpoint_saved" in KINDS
        assert "worker_lost" in KINDS
        assert "worker_respawned" in KINDS
        assert "state_quarantined" in KINDS
        assert "span_start" in KINDS
        assert "span_end" in KINDS
        assert "sim_run" in KINDS
        assert "fault_fired" in KINDS
        assert "fuzz_candidate" in KINDS
        assert "shrink_step" in KINDS
        assert len(KINDS) == 22


class TestTracerStamping:
    def test_seq_is_monotonic(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        for _ in range(5):
            tracer.emit(STATE_EXPLORED)
        seqs = [event.seq for event in sink.events()]
        assert seqs == [0, 1, 2, 3, 4]
        assert tracer.events_emitted == 5

    def test_lamport_increments_per_process(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.emit(TASK_CHOSEN, process="p")
        tracer.emit(TASK_CHOSEN, process="q")
        tracer.emit(TASK_CHOSEN, process="p")
        tracer.emit(TASK_CHOSEN, process="p")
        by_process = {}
        for event in sink.events():
            by_process.setdefault(event.process, []).append(event.lamport)
        assert by_process["p"] == [0, 1, 2]
        assert by_process["q"] == [0]

    def test_unattributed_events_use_seq_as_lamport(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.emit(STATE_EXPLORED)
        tracer.emit(STATE_EXPLORED)
        assert [event.lamport for event in sink.events()] == [0, 1]
