"""Trace completeness under parallelism and chaos.

The merge guarantee, asserted on real traces: a traced ``--workers N``
exploration — including one whose workers are SIGKILLed mid-round by a
:class:`~repro.engine.FaultPlan` — yields ONE merged JSONL trace in
which every started span is closed (``ok`` or ``lost``), worker spans
are attributed and re-parented under their round, sequence numbers are
monotonic, and the surviving segments still replay.
"""

import pytest

from repro.analysis import DeterministicSystemView
from repro.engine import Budget, ExplorationEngine, FaultPlan, fork_available
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    assemble_spans,
    summarize_spans,
)
from repro.obs.replay import load_events, split_runs, task_sequence
from repro.protocols import delegation_consensus_system

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="worker telemetry merge needs forked workers"
)


@pytest.fixture(scope="module")
def instance():
    system = delegation_consensus_system(3, resilience=1)
    view = DeterministicSystemView(system)
    root = system.initialization({0: 0, 1: 1, 2: 0}).final_state
    return view, root


def traced_exploration(instance, tmp_path, fault_plan=None, workers=2):
    view, root = instance
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        tracer = Tracer(sink)
        engine = ExplorationEngine(
            workers=workers,
            budget=Budget(max_states=50_000),
            fault_plan=fault_plan,
            tracer=tracer,
        )
        graph = engine.explore(view, root)
    return graph, engine, load_events(path)


@needs_fork
class TestParallelTraceMerge:
    def test_every_started_span_is_closed(self, instance, tmp_path):
        _, _, events = traced_exploration(instance, tmp_path)
        records = assemble_spans(events)
        assert records, "traced run produced no spans"
        assert all(record.status != "open" for record in records)

    def test_worker_spans_attributed_and_nested(self, instance, tmp_path):
        graph, _, events = traced_exploration(instance, tmp_path)
        records = assemble_spans(events)
        by_id = {record.span_id: record for record in records}
        partitions = [r for r in records if r.name == "partition"]
        assert partitions
        workers_seen = set()
        for partition in partitions:
            assert "worker" in partition.attrs
            assert "round" in partition.attrs
            workers_seen.add(partition.attrs["worker"])
            assert by_id[partition.parent_id].name == "round"
        assert workers_seen == {0, 1}
        # Every frontier state was expanded inside some worker partition.
        expanded = sum(p.attrs.get("states", 0) for p in partitions)
        assert expanded == len(graph.states)

    def test_merged_seq_is_monotonic(self, instance, tmp_path):
        _, _, events = traced_exploration(instance, tmp_path)
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_span_ids_never_collide(self, instance, tmp_path):
        _, _, events = traced_exploration(instance, tmp_path)
        records = assemble_spans(events)
        assert len({record.span_id for record in records}) == len(records)


@needs_fork
class TestChaosTraceCompleteness:
    def test_killed_worker_leaves_no_open_spans(self, instance, tmp_path):
        """A SIGKILLed worker's merged trace still closes every span:
        flushed batches survive as-is, anything unflushed simply never
        started (batches are self-contained)."""
        _, engine, events = traced_exploration(
            instance, tmp_path, fault_plan=FaultPlan(kills=frozenset({(2, 0)}))
        )
        assert engine.last_report.worker_failures == 1
        records = assemble_spans(events)
        assert records
        assert all(record.status != "open" for record in records)

    def test_dying_chunk_gets_synthesized_lost_span(self, instance, tmp_path):
        """A chunk that dies with its worker (poison guarantees it was
        in flight) is closed parent-side as a ``status="lost"``
        partition span attributed to the worker that took it down."""
        from repro.engine import fingerprint
        from repro.analysis import explore

        view, root = instance
        graph = explore(view, root, budget=Budget(max_states=50_000))
        victim = list(graph.states)[10]
        probe = ExplorationEngine(workers=2)
        plan = FaultPlan(
            poison=frozenset({fingerprint(victim, probe.digest_size)})
        )
        _, engine, events = traced_exploration(instance, tmp_path, fault_plan=plan)
        assert engine.last_report.worker_failures >= 1
        records = assemble_spans(events)
        assert all(record.status != "open" for record in records)
        lost = [r for r in records if r.status == "lost"]
        assert lost, "no lost span synthesized for the dying chunk"
        for record in lost:
            assert record.name == "partition"
            assert "worker" in record.attrs
        profile = summarize_spans(records)
        assert profile["partition"]["statuses"].get("lost", 0) >= 1

    def test_double_kill_trace_still_complete(self, instance, tmp_path):
        _, engine, events = traced_exploration(
            instance,
            tmp_path,
            fault_plan=FaultPlan(kills=frozenset({(2, 1), (3, 0)})),
            workers=3,
        )
        assert engine.last_report.worker_failures == 2
        records = assemble_spans(events)
        assert all(record.status != "open" for record in records)
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_surviving_segments_still_replay(self, instance, tmp_path):
        """Span events ride the same stream without breaking replay
        segmentation: a traced chaos run's trace still splits into runs
        and yields task sequences."""
        from repro.analysis import refute_candidate

        system = delegation_consensus_system(3, resilience=1)
        path = tmp_path / "pipeline.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            engine = ExplorationEngine(
                workers=2,
                budget=Budget(max_states=50_000),
                fault_plan=FaultPlan(kills=frozenset({(2, 0)})),
            )
            verdict = refute_candidate(system, tracer=tracer, engine=engine)
        assert verdict.refuted
        events = load_events(path)
        records = assemble_spans(events)
        assert all(record.status != "open" for record in records)
        stages = [
            event.data["stage"] for event in events if event.kind == "phase"
        ]
        assert stages == ["lemma4", "hook-search", "refutation"]
        segments = split_runs(events)
        assert segments
        assert any(task_sequence(segment) for segment in segments)


class TestLocalFallbackTelemetry:
    def test_single_worker_run_has_engine_spans(self, instance, tmp_path):
        """Sequential runs get the coordinator-side spans (engine.run,
        checkpoint) even without a pool."""
        view, root = instance
        sink = RingBufferSink()
        tracer = Tracer(sink)
        engine = ExplorationEngine(
            workers=1, budget=Budget(max_states=50_000), tracer=tracer
        )
        engine.explore(view, root)
        records = assemble_spans(sink.events())
        names = {record.name for record in records}
        assert "engine.run" in names
        assert all(record.status == "ok" for record in records)
