"""Unit tests for the run ledger: identity, heartbeats, crash derivation.

The crash-safety contract under test: a run that dies without writing
its terminal record must still be reconstructable — the ``running``
record plus a stale heartbeat (or a dead pid) derive ``interrupted``,
and the artifacts written into the *opening* record (resume command,
checkpoint dir) survive because they never depended on ``finish()``.
"""

import json
import os

import pytest

from repro.obs import RunLedger, RunRecord
from repro.obs.ledger import (
    DEFAULT_RUNS_DIR,
    INTERRUPTED,
    RUNNING,
    diff_runs,
    new_run_id,
    resolve_runs_dir,
)


class TestRunId:
    def test_shape(self):
        run_id = new_run_id("refute")
        kind, stamp, token = run_id.rsplit("-", 2)
        assert kind == "refute"
        assert len(stamp) == 14 and stamp.isdigit()
        assert len(token) == 6

    def test_unsafe_kind_sanitized(self):
        assert new_run_id("a b/c").startswith("a-b-c-")
        assert new_run_id("").startswith("run-")

    def test_unique(self):
        assert new_run_id("x") != new_run_id("x")


class TestResolveRunsDir:
    def test_flag_wins_over_environment(self):
        path = resolve_runs_dir("/tmp/flagged", environ={"REPRO_RUNS_DIR": "/tmp/env"})
        assert str(path) == "/tmp/flagged"

    def test_environment_wins_over_default(self):
        path = resolve_runs_dir(None, environ={"REPRO_RUNS_DIR": "/tmp/env"})
        assert str(path) == "/tmp/env"

    def test_default(self):
        assert str(resolve_runs_dir(None, environ={})) == DEFAULT_RUNS_DIR

    @pytest.mark.parametrize("spelling", ["", "0", "none", "off", "NONE", " Off "])
    def test_disabled_spellings(self, spelling):
        assert resolve_runs_dir(spelling, environ={}) is None
        assert resolve_runs_dir(None, environ={"REPRO_RUNS_DIR": spelling}) is None


class TestRunRecord:
    def test_roundtrip(self):
        record = RunRecord(
            run_id="refute-1-a",
            kind="refute",
            instance="tob(n=3,f=1)",
            status="completed",
            started_at=10.0,
            finished_at=12.5,
            pid=42,
            workers=2,
            budget={"max_states": 1000},
            store="sqlite:/tmp/s",
            verdict={"refuted": True},
            phases={"expand": 1.5},
            counters={"engine.states": 900},
            peak_rss_kb=2048,
            artifacts={"resume": "repro refute ..."},
            links={"job_id": "j-1"},
            error=None,
        )
        assert RunRecord.from_json(record.to_json()) == record

    def test_from_json_defaults_missing_fields(self):
        record = RunRecord.from_json({"run_id": "x-1"})
        assert record.kind == "run"
        assert record.status == RUNNING
        assert record.counters == {} and record.artifacts == {}


class TestLifecycle:
    def test_open_then_finish_latest_wins(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open(
            "refute",
            "tob(n=3,f=1)",
            budget={"max_states": 10},
            store="memory",
            workers=2,
            artifacts={"resume": "repro refute tob --resume ck"},
        )
        opening = ledger.find(run.run_id)
        assert opening.status == RUNNING
        assert opening.pid == os.getpid()
        assert opening.artifacts["resume"].startswith("repro refute")

        run.finish(
            "completed",
            verdict={"refuted": False},
            counters={"engine.states": 7},
            phases={"expand": 0.1},
            peak_rss_kb=123,
        )
        assert len(ledger.records()) == 2
        final = ledger.find(run.run_id)
        assert final.status == "completed"
        assert final.verdict == {"refuted": False}
        assert final.artifacts["resume"].startswith("repro refute")
        assert ledger.status_of(final) == "completed"

    def test_record_one_shot(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = ledger.record("bench", "codec", counters={"ns_per_op": 12.5})
        assert record.status == "completed"
        assert record.finished_at is not None
        assert ledger.find(record.run_id).counters == {"ns_per_op": 12.5}

    def test_find_prefix_and_ambiguity(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record("bench", "unrelated")
        first = ledger.open("refute", run_id="refute-1-aa")
        second = ledger.open("refute", run_id="refute-1-ab")
        assert ledger.find("refute-1-aa").run_id == first.run_id
        assert ledger.find("refute-1-ab").run_id == second.run_id
        with pytest.raises(KeyError, match="ambiguous"):
            ledger.find("refute-1-a")
        with pytest.raises(KeyError, match="no run"):
            ledger.find("missing")

    def test_torn_tail_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record("bench", "ok")
        with open(ledger.path, "a", encoding="utf-8") as stream:
            stream.write('{"run_id": "torn", "kind"')  # crash mid-write
        assert [r.instance for r in ledger.records()] == ["ok"]

    def test_empty_directory_reads_clean(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-created")
        assert ledger.records() == []
        assert ledger.latest() == {}


class TestHeartbeat:
    def test_first_beat_writes_then_throttles(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute", heartbeat_interval=30.0)
        assert run.heartbeat(states=10, elapsed=2.0)
        assert not run.heartbeat(states=20, elapsed=3.0)
        assert run.heartbeat(states=20, elapsed=3.0, force=True)

    def test_document_shape(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute")
        run.heartbeat(states=100, elapsed=4.0, frontier=7, flush_ms=None)
        document = ledger.read_heartbeat(run.run_id)
        assert document["run"] == run.run_id
        assert document["pid"] == os.getpid()
        assert document["states"] == 100
        assert document["frontier"] == 7
        assert document["states_per_sec"] == 25.0
        assert "flush_ms" not in document  # None fields are dropped

    def test_atomic_rewrite_leaves_no_temporaries(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("sim")
        run.heartbeat(states=1, elapsed=1.0)
        run.heartbeat(states=2, elapsed=2.0, force=True)
        names = [p.name for p in ledger.heartbeat_dir.iterdir()]
        assert names == [f"{run.run_id}.json"]

    def test_unreadable_heartbeat_is_none(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("sim")
        run.heartbeat(states=1, elapsed=1.0)
        ledger.heartbeat_path(run.run_id).write_text("{torn", encoding="utf-8")
        assert ledger.read_heartbeat(run.run_id) is None
        assert ledger.read_heartbeat("never-beat") is None


class TestStatusDerivation:
    def test_terminal_status_is_recorded_verbatim(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute")
        run.finish("exhausted", error="budget: max_states=10")
        assert ledger.status_of(ledger.find(run.run_id)) == "exhausted"

    def test_live_fresh_run_is_running(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute")
        run.heartbeat(states=1, elapsed=0.5)
        assert ledger.status_of(ledger.find(run.run_id)) == RUNNING

    def test_dead_pid_derives_interrupted_immediately(self, tmp_path):
        # A SIGKILLed run shows interrupted without waiting out staleness.
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute")
        record = ledger.find(run.run_id)
        record.pid = 2**22 + os.getpid()  # beyond pid_max: never alive
        assert ledger.status_of(record) == INTERRUPTED

    def test_stale_heartbeat_derives_interrupted(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute", heartbeat_interval=1.0)
        run.heartbeat(states=1, elapsed=0.5)
        record = ledger.find(run.run_id)
        heartbeat = ledger.read_heartbeat(run.run_id)
        assert not ledger.heartbeat_stale(record, heartbeat, now=heartbeat["t"] + 1)
        assert ledger.heartbeat_stale(record, heartbeat, now=heartbeat["t"] + 10)
        assert (
            ledger.status_of(record, heartbeat, now=heartbeat["t"] + 10)
            == INTERRUPTED
        )

    def test_staleness_floor_is_five_seconds(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute", heartbeat_interval=0.1)
        run.heartbeat(states=1, elapsed=0.5)
        record = ledger.find(run.run_id)
        heartbeat = ledger.read_heartbeat(run.run_id)
        assert not ledger.heartbeat_stale(record, heartbeat, now=heartbeat["t"] + 4)


class TestGc:
    def test_finalizes_interrupted_and_prunes_heartbeats(self, tmp_path):
        # Simulate a SIGKILLed run: a running record whose pid is dead
        # and no heartbeat with a fresher pid to contradict it.
        ledger = RunLedger(tmp_path)
        dead = ledger.open("refute")
        record = ledger.find(dead.run_id)
        record.pid = 2**22 + os.getpid()  # beyond pid_max: never alive
        ledger.path.write_text(
            json.dumps(record.to_json(), sort_keys=True) + "\n", encoding="utf-8"
        )

        summary = ledger.gc()
        assert summary["finalized_interrupted"] == 1
        final = ledger.find(dead.run_id)
        assert final.status == INTERRUPTED
        assert "died" in final.error
        assert not list(ledger.heartbeat_dir.glob("*.json"))

    def test_keep_drops_oldest_terminal_runs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for index in range(4):
            handle = ledger.open("bench", f"row{index}")
            handle.record.started_at = float(index)
            handle.finish("completed")
        summary = ledger.gc(keep=2)
        assert summary == {
            "runs": 2,
            "dropped": 2,
            "finalized_interrupted": 0,
            "pruned_heartbeats": 0,
        }
        kept = {record.instance for record in ledger.records()}
        assert kept == {"row2", "row3"}

    def test_compacts_to_one_line_per_run(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run = ledger.open("refute")
        run.finish("completed")
        assert len(list(open(ledger.path, encoding="utf-8"))) == 2
        ledger.gc()
        assert len(list(open(ledger.path, encoding="utf-8"))) == 1


class TestDiffRuns:
    def test_counters_then_phases(self):
        before = RunRecord(
            run_id="a",
            kind="bench",
            status="completed",
            counters={"states": 100, "old_only": 1},
            phases={"expand": 2.0},
        )
        after = RunRecord(
            run_id="b",
            kind="bench",
            status="completed",
            counters={"states": 150, "new_only": 3},
            phases={"expand": 1.0},
        )
        rows = diff_runs(before, after)
        assert [row["metric"] for row in rows] == [
            "new_only",
            "old_only",
            "states",
            "phase.expand",
        ]
        states = next(row for row in rows if row["metric"] == "states")
        assert states == {
            "metric": "states",
            "before": 100,
            "after": 150,
            "delta": 50,
            "ratio": 1.5,
        }
        missing = next(row for row in rows if row["metric"] == "old_only")
        assert missing["delta"] is None and missing["ratio"] is None


class TestRunIdThreading:
    def test_tracer_stamps_run_into_every_event(self, tmp_path):
        from repro.obs import JsonlSink, TraceEvent, Tracer

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink, run_id="refute-1-abc")
            tracer.emit("run_start", n=3)
            tracer.emit("state_expanded", process=0)
        events = [
            TraceEvent.from_json(line) for line in path.read_text().splitlines()
        ]
        assert len(events) == 2
        assert all(event.run == "refute-1-abc" for event in events)

    def test_event_without_run_omits_the_key(self, tmp_path):
        from repro.obs import JsonlSink, Tracer

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            Tracer(sink).emit("run_start")
        document = json.loads(path.read_text())
        assert "run" not in document
