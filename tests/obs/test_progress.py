"""Unit tests for the live progress reporter."""

import io

from repro.obs import ProgressReporter, progress_from_env
from repro.engine import Budget


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def reporter(stream=None, **kwargs):
    stream = io.StringIO() if stream is None else stream
    clock = FakeClock()
    return ProgressReporter(stream=stream, clock=clock, **kwargs), stream, clock


class TestThrottle:
    def test_first_update_renders_then_throttles(self):
        progress, stream, clock = reporter(interval_seconds=0.25)
        assert progress.update(states=10, frontier=5, workers=2, elapsed=1.0)
        assert not progress.update(states=11, frontier=5, workers=2, elapsed=1.1)
        clock.now += 0.3
        assert progress.update(states=12, frontier=5, workers=2, elapsed=1.4)
        assert progress.renders == 2

    def test_force_bypasses_throttle(self):
        progress, stream, clock = reporter()
        progress.update(states=1, frontier=1, workers=1, elapsed=0.1)
        assert progress.update(
            states=2, frontier=1, workers=1, elapsed=0.2, force=True
        )


class TestFormatting:
    def test_line_contains_rate_frontier_workers(self):
        progress, stream, _ = reporter()
        line = progress.format_line(1000, 50, 4, 2.0, None)
        assert "1000 states" in line
        assert "500 st/s" in line
        assert "frontier 50" in line
        assert "workers 4" in line

    def test_eta_against_max_states(self):
        progress, _, _ = reporter()
        line = progress.format_line(500, 10, 1, 1.0, Budget(max_states=1000))
        assert "50% of 1000 states" in line
        assert "~1s to cap" in line

    def test_eta_against_deadline(self):
        progress, _, _ = reporter()
        line = progress.format_line(
            100, 10, 1, 2.0, Budget(deadline_seconds=10.0)
        )
        assert "deadline 8s left" in line

    def test_store_columns_render_when_given(self):
        progress, _, _ = reporter()
        line = progress.format_line(
            1000, 50, 4, 2.0, None, spilled=123, flush_ms=4.567
        )
        assert "spilled 123" in line
        assert "flush 4.6ms" in line

    def test_store_columns_absent_by_default(self):
        progress, _, _ = reporter()
        line = progress.format_line(1000, 50, 4, 2.0, None)
        assert "spilled" not in line
        assert "flush" not in line

    def test_update_passes_store_columns_through(self):
        progress, stream, _ = reporter()
        progress.update(
            states=10,
            frontier=5,
            workers=1,
            elapsed=1.0,
            spilled=7,
            flush_ms=1.25,
        )
        output = stream.getvalue()
        assert "spilled 7" in output
        assert "flush 1.2ms" in output or "flush 1.3ms" in output

    def test_non_tty_writes_plain_lines(self):
        progress, stream, _ = reporter()
        progress.update(states=1, frontier=1, workers=1, elapsed=0.1)
        progress.finish()
        output = stream.getvalue()
        assert output.endswith("\n")
        assert "\r" not in output

    def test_non_tty_one_line_per_interval(self):
        progress, stream, clock = reporter(interval_seconds=0.25)
        progress.update(states=1, frontier=1, workers=1, elapsed=0.1)
        clock.now += 0.3
        progress.update(states=2, frontier=1, workers=1, elapsed=0.4)
        clock.now += 0.3
        progress.update(states=3, frontier=1, workers=1, elapsed=0.7)
        lines = [
            line for line in stream.getvalue().splitlines() if line.strip()
        ]
        assert len(lines) == 3
        assert all("states" in line for line in lines)

    def test_tty_redraws_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        progress, stream, clock = reporter(stream=stream)
        progress.update(states=1, frontier=1, workers=1, elapsed=0.1)
        clock.now += 1.0
        progress.update(states=2, frontier=1, workers=1, elapsed=0.2)
        progress.finish()
        output = stream.getvalue()
        assert output.count("\r") == 2
        assert output.endswith("\n")


class TestEnv:
    def test_unset_or_zero_disables(self):
        assert progress_from_env({}) is None
        assert progress_from_env({"REPRO_PROGRESS": "0"}) is None
        assert progress_from_env({"REPRO_PROGRESS": "  "}) is None

    def test_set_enables(self):
        assert progress_from_env({"REPRO_PROGRESS": "1"}) is not None


class TestEngineIntegration:
    def test_sequential_run_drives_reporter(self):
        from repro.analysis import DeterministicSystemView
        from repro.engine import ExplorationEngine
        from repro.protocols import last_writer_register_system

        system = last_writer_register_system()
        view = DeterministicSystemView(system)
        root = system.initialization(
            {pid: 0 for pid in system.process_ids}
        ).final_state
        stream = io.StringIO()
        progress = ProgressReporter(stream=stream, interval_seconds=0.0)
        engine = ExplorationEngine(progress=progress)
        engine.explore(view, root)
        assert progress.renders >= 1
        assert "states" in stream.getvalue()

    def test_progress_false_forces_off(self, monkeypatch):
        from repro.engine import ExplorationEngine

        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert ExplorationEngine(progress=False).progress is None
        assert ExplorationEngine().progress is not None
