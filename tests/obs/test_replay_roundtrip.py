"""Trace -> JSONL -> replay round-trips, including a real refutation.

The replay contract: any traced run — the generic ``run`` driver or the
Lemma 6/7 silencing run — is reproducible bit-for-bit from its JSONL
trace plus its start state.
"""

import pytest

from repro.ioa import Action, RandomScheduler, RoundRobinScheduler, Task, run
from repro.ioa.automaton import Automaton, Transition
from repro.obs import JsonlSink, RingBufferSink, Tracer
from repro.obs.replay import (
    action_sequence,
    input_schedule,
    load_events,
    replay_execution,
    replay_trace,
    scheduler_from_trace,
    split_runs,
    task_sequence,
)


class Counter(Automaton):
    """Toy automaton: 'inc' always enabled, 'dec' enabled when positive."""

    def __init__(self, name="counter"):
        self.name = name
        self.inc = Task(name, "inc")
        self.dec = Task(name, "dec")

    def is_input(self, action):
        return action.kind == "reset"

    def is_output(self, action):
        return False

    def is_internal(self, action):
        return action.kind in ("inc", "dec")

    def start_states(self):
        yield 0

    def tasks(self):
        return (self.inc, self.dec)

    def enabled(self, state, task):
        if task == self.inc:
            return [Transition(Action("inc"), state + 1)]
        if task == self.dec and state > 0:
            return [Transition(Action("dec"), state - 1)]
        return []

    def apply_input(self, state, action):
        return 0


class TestRunRoundTrip:
    def test_random_run_replays_identically(self, tmp_path):
        counter = Counter()
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            original = run(
                counter, RandomScheduler(seed=11), max_steps=30, tracer=Tracer(sink)
            )
        replayed = replay_trace(counter, path, start=0)
        assert replayed.actions == original.actions
        assert list(replayed.states()) == list(original.states())
        assert replayed.final_state == original.final_state

    def test_run_with_inputs_replays_identically(self, tmp_path):
        counter = Counter()
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            original = run(
                counter,
                RoundRobinScheduler(),
                max_steps=6,
                inputs=[(3, Action("reset"))],
                tracer=Tracer(sink),
            )
        replayed = replay_trace(counter, path, start=0)
        assert replayed.actions == original.actions
        assert replayed.final_state == original.final_state

    def test_scheduler_from_trace_scripts_the_tasks(self, tmp_path):
        counter = Counter()
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            original = run(
                counter, RandomScheduler(seed=2), max_steps=10, tracer=Tracer(sink)
            )
        scheduler = scheduler_from_trace(path)
        replayed = run(counter, scheduler, max_steps=20)
        assert replayed.actions == original.actions

    def test_trace_extraction_helpers(self, tmp_path):
        counter = Counter()
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            run(
                counter,
                RoundRobinScheduler(),
                max_steps=4,
                inputs=[(1, Action("reset"))],
                tracer=Tracer(sink),
            )
        events = load_events(path)
        assert len(task_sequence(events)) == 4
        assert len(action_sequence(events)) == 4
        assert input_schedule(events) == [(1, Action("reset"))]


class TestRefutationRoundTrip:
    @pytest.fixture(scope="class")
    def traced_refutation(self, tmp_path_factory):
        from repro.analysis import refute_candidate
        from repro.protocols import delegation_consensus_system

        path = tmp_path_factory.mktemp("traces") / "delegation.jsonl"
        system = delegation_consensus_system(3, 1)
        with JsonlSink(path) as sink:
            verdict = refute_candidate(system, tracer=Tracer(sink))
        return system, verdict, path

    def test_silenced_run_replays_to_same_execution(self, traced_refutation):
        from repro.analysis import run_silenced

        system, verdict, path = traced_refutation
        assert verdict.refuted
        runs = split_runs(load_events(path))
        silenced_runs = [
            segment
            for segment in runs
            if segment[0].data.get("op") == "run_silenced"
        ]
        assert silenced_runs, "the refutation stage must emit a silenced run"
        segment = silenced_runs[-1]
        start = verdict.lemma8.violation.s0
        # Reconstruct the original execution from the recorded parameters.
        original = run_silenced(
            system,
            start,
            victims=segment[0].data["victims"],
            silenced_services=segment[0].data["silenced"],
            max_steps=segment[0].data["max_steps"],
        )
        replayed = replay_execution(system, segment, start=start)
        assert replayed.actions == original.execution.actions
        assert replayed.final_state == original.execution.final_state

    def test_replayed_run_reaches_same_verdict(self, traced_refutation):
        """The replayed witness still shows survivors never deciding."""
        system, verdict, path = traced_refutation
        runs = split_runs(load_events(path))
        segment = [
            s for s in runs if s[0].data.get("op") == "run_silenced"
        ][-1]
        victims = segment[0].data["victims"]
        replayed = replay_execution(
            system, segment, start=verdict.lemma8.violation.s0
        )
        survivors = frozenset(system.process_ids) - victims
        decided = system.decisions(replayed.final_state)
        assert not any(pid in decided for pid in survivors)
        assert segment[-1].data["outcome"] == "cycle"

    def test_run_brackets_are_well_formed(self, traced_refutation):
        _, _, path = traced_refutation
        events = load_events(path)
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for segment in split_runs(events):
            assert segment[0].kind == "run_start"
            assert segment[-1].kind == "run_end"
            recorded_steps = segment[-1].data["steps"]
            chosen = [e for e in segment if e.kind == "task_chosen"]
            assert len(chosen) == recorded_steps
