"""Unit tests for hierarchical spans, worker telemetry, and span tooling."""

import pytest

from repro.obs import (
    NULL_TRACER,
    RingBufferSink,
    SPAN_END,
    SPAN_START,
    Tracer,
    WorkerTelemetry,
    assemble_spans,
    current_span_id,
    diff_span_profiles,
    end_span,
    folded_stacks,
    merge_worker_events,
    render_folded_stacks,
    render_span_diff,
    render_span_table,
    record_span,
    span,
    start_span,
    summarize_spans,
)


def tracer_pair():
    sink = RingBufferSink()
    return Tracer(sink), sink


class TestSpanEvents:
    def test_span_emits_start_and_end_pair(self):
        tracer, sink = tracer_pair()
        opened = start_span(tracer, "work", items=3)
        end_span(tracer, opened, status="ok", done=True)
        kinds = [event.kind for event in sink.events()]
        assert kinds == [SPAN_START, SPAN_END]
        start, end = sink.events()
        assert start.data["span"] == end.data["span"]
        assert start.data["name"] == "work"
        assert start.data["parent"] is None
        assert start.data["items"] == 3
        assert end.data["status"] == "ok"
        assert end.data["wall_seconds"] >= 0.0
        assert end.data["cpu_seconds"] >= 0.0

    def test_nested_spans_link_parents_via_tracer_stack(self):
        tracer, sink = tracer_pair()
        outer = start_span(tracer, "outer")
        assert current_span_id(tracer) == outer.span_id
        inner = start_span(tracer, "inner")
        assert inner.parent_id == outer.span_id
        end_span(tracer, inner)
        assert current_span_id(tracer) == outer.span_id
        end_span(tracer, outer)
        assert current_span_id(tracer) is None

    def test_disabled_tracer_emits_nothing_and_returns_none(self):
        assert start_span(NULL_TRACER, "work") is None
        end_span(NULL_TRACER, None)  # must not raise
        record_span(NULL_TRACER, "work", 1.0)

    def test_context_manager_sets_error_status_on_raise(self):
        tracer, sink = tracer_pair()
        with pytest.raises(ValueError):
            with span(tracer, "work"):
                raise ValueError("boom")
        (record,) = assemble_spans(sink.events())
        assert record.status == "error"
        assert current_span_id(tracer) is None

    def test_record_span_never_joins_stack(self):
        tracer, sink = tracer_pair()
        outer = start_span(tracer, "outer")
        record_span(tracer, "phase", 0.25, cpu_seconds=0.1)
        assert current_span_id(tracer) == outer.span_id
        end_span(tracer, outer)
        records = {r.name: r for r in assemble_spans(sink.events())}
        assert records["phase"].parent_id == outer.span_id
        assert records["phase"].wall_seconds == pytest.approx(0.25)
        assert records["phase"].cpu_seconds == pytest.approx(0.1)


class TestAssembly:
    def test_unclosed_span_is_open(self):
        tracer, sink = tracer_pair()
        start_span(tracer, "lonely")
        (record,) = assemble_spans(sink.events())
        assert record.status == "open"
        assert record.wall_seconds == 0.0

    def test_end_without_start_is_ignored(self):
        tracer, sink = tracer_pair()
        tracer.emit(SPAN_END, span="ghost", name="ghost", status="ok")
        assert assemble_spans(sink.events()) == []

    def test_summarize_and_render(self):
        tracer, sink = tracer_pair()
        for _ in range(3):
            with span(tracer, "step"):
                pass
        profile = summarize_spans(assemble_spans(sink.events()))
        assert profile["step"]["count"] == 3
        assert profile["step"]["p50"] <= profile["step"]["p99"]
        assert profile["step"]["statuses"] == {"ok": 3}
        table = render_span_table(profile)
        assert "step" in table and "p95_ms" in table

    def test_folded_stacks_self_time(self):
        tracer, sink = tracer_pair()
        record_span(tracer, "root", 1.0)
        records = assemble_spans(sink.events())
        # Hand-build a child under the root.
        record_span(tracer, "leaf", 0.25, parent_id=records[0].span_id)
        folded = folded_stacks(assemble_spans(sink.events()))
        assert folded["root"] == 750_000  # self time: 1.0s - 0.25s child
        assert folded["root;leaf"] == 250_000
        text = render_folded_stacks(folded)
        assert "root;leaf 250000" in text

    def test_diff_profiles(self):
        tracer_a, sink_a = tracer_pair()
        record_span(tracer_a, "work", 1.0)
        tracer_b, sink_b = tracer_pair()
        record_span(tracer_b, "work", 2.0)
        record_span(tracer_b, "extra", 0.5)
        rows = diff_span_profiles(
            summarize_spans(assemble_spans(sink_a.events())),
            summarize_spans(assemble_spans(sink_b.events())),
        )
        by_name = {row["name"]: row for row in rows}
        assert by_name["work"]["ratio"] == pytest.approx(2.0)
        assert by_name["extra"]["count_a"] == 0
        assert "extra" in render_span_diff(rows)


class TestWorkerTelemetry:
    def test_buffer_spans_and_counters_roundtrip(self):
        telemetry = WorkerTelemetry("w1")
        opened = telemetry.start_span("partition", states=4)
        telemetry.record_span("expand", 0.5, parent=opened)
        telemetry.end_span(opened, transitions=7)
        telemetry.inc("explore.states", 3)
        events, counters = telemetry.flush()
        assert counters == {"explore.states": 3}
        assert [kind for kind, _, _ in events] == [
            SPAN_START,
            SPAN_START,
            SPAN_END,
            SPAN_END,
        ]
        assert telemetry.flush() is None  # buffer reset

    def test_span_ids_are_label_namespaced(self):
        telemetry = WorkerTelemetry("w42")
        opened = telemetry.start_span("partition")
        assert opened.span_id.startswith("w42:")

    def test_merge_reparents_and_tags(self):
        telemetry = WorkerTelemetry("w1")
        opened = telemetry.start_span("partition")
        telemetry.record_span("expand", 0.1, parent=opened)
        telemetry.end_span(opened)
        events, _ = telemetry.flush()

        tracer, sink = tracer_pair()
        round_span = start_span(tracer, "round")
        merged = merge_worker_events(
            tracer, events, parent_id=round_span.span_id, attach={"worker": 0}
        )
        end_span(tracer, round_span)
        assert merged == len(events)
        records = {r.name: r for r in assemble_spans(sink.events())}
        # Top-level worker span re-parented under the round; child kept.
        assert records["partition"].parent_id == round_span.span_id
        assert records["partition"].attrs["worker"] == 0
        assert records["expand"].parent_id == records["partition"].span_id

    def test_merge_restamps_seq_monotonically(self):
        telemetry = WorkerTelemetry("w1")
        opened = telemetry.start_span("partition")
        telemetry.end_span(opened)
        events, _ = telemetry.flush()
        tracer, sink = tracer_pair()
        tracer.emit("phase", stage="before")
        merge_worker_events(tracer, events)
        seqs = [event.seq for event in sink.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_merge_into_disabled_tracer_is_noop(self):
        telemetry = WorkerTelemetry("w1")
        telemetry.end_span(telemetry.start_span("partition"))
        events, _ = telemetry.flush()
        assert merge_worker_events(NULL_TRACER, events) == 0
