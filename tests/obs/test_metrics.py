"""Unit tests for the metrics registry and the profiling helpers."""

import pytest

from repro.ioa import Action, RoundRobinScheduler, Task, run
from repro.ioa.automaton import Automaton, Transition
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
    default_registry,
    profiled,
    render_metrics_table,
    set_default_registry,
    timed,
)


class Counter(Automaton):
    """Toy automaton: 'inc' always enabled, 'dec' enabled when positive."""

    def __init__(self, name="counter"):
        self.name = name
        self.inc = Task(name, "inc")
        self.dec = Task(name, "dec")

    def is_input(self, action):
        return action.kind == "reset"

    def is_output(self, action):
        return False

    def is_internal(self, action):
        return action.kind in ("inc", "dec")

    def start_states(self):
        yield 0

    def tasks(self):
        return (self.inc, self.dec)

    def enabled(self, state, task):
        if task == self.inc:
            return [Transition(Action("inc"), state + 1)]
        if task == self.dec and state > 0:
            return [Transition(Action("dec"), state - 1)]
        return []

    def apply_input(self, state, action):
        return 0


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(9)
        assert registry.snapshot()["gauges"]["depth"] == 9

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("lat").observe(value)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] == pytest.approx(2.0)

    def test_histogram_percentiles_interpolate(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_histogram_empty_percentiles_are_none(self):
        summary = MetricsRegistry().histogram("lat").summary()
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["p99"] is None

    def test_percentile_function(self):
        from repro.obs import percentile

        assert percentile([5.0], 0.99) == 5.0
        assert percentile([1.0, 3.0], 0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_histogram_sample_cap_keeps_quantiles_sane(self):
        histogram = MetricsRegistry().histogram("lat")
        n = histogram.SAMPLE_CAP * 3
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        assert len(histogram._samples) < histogram.SAMPLE_CAP
        # Decimation is uniform, so quantiles stay close to exact.
        assert histogram.quantile(0.5) == pytest.approx(n / 2, rel=0.01)
        assert histogram.quantile(0.99) == pytest.approx(0.99 * n, rel=0.01)

    def test_render_table_shows_percentiles(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("lat").observe(value)
        text = render_metrics_table(registry.snapshot())
        assert "p50=2" in text and "p95=" in text and "p99=" in text

    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_render_table_lists_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("b.level").set(1)
        text = render_metrics_table(registry.snapshot())
        assert "a.count" in text and "b.level" in text


class TestNullRegistry:
    def test_disabled_and_records_nothing(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("x").inc(100)
        NULL_METRICS.gauge("y").set(5)
        NULL_METRICS.histogram("z").observe(1.0)
        snapshot = NULL_METRICS.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_is_singleton_style_registry(self):
        assert isinstance(NULL_METRICS, NullMetricsRegistry)


class TestHandCountedRun:
    def test_scheduler_counters_match_hand_count(self):
        counter = Counter()
        metrics = MetricsRegistry()
        # Round-robin from 0 alternates inc/dec: exactly 6 steps happen.
        run(counter, RoundRobinScheduler(), max_steps=6, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["scheduler.steps"] == 6
        assert counters["scheduler.runs"] == 1
        assert counters.get("scheduler.inputs", 0) == 0

    def test_input_counter_matches_hand_count(self):
        counter = Counter()
        metrics = MetricsRegistry()
        run(
            counter,
            RoundRobinScheduler(),
            max_steps=2,
            inputs=[(0, Action("reset")), (1, Action("reset"))],
            metrics=metrics,
        )
        assert metrics.snapshot()["counters"]["scheduler.inputs"] == 2

    def test_explore_counters_match_graph(self):
        from repro.analysis import DeterministicSystemView, explore
        from repro.protocols import last_writer_register_system

        system = last_writer_register_system()
        view = DeterministicSystemView(system)
        root = system.initialization(
            {pid: 0 for pid in system.process_ids}
        ).final_state
        metrics = MetricsRegistry()
        graph = explore(view, root, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["explore.states"] == len(graph.states)
        assert counters["explore.transitions"] == graph.edge_count()
        assert counters["explore.runs"] == 1
        assert metrics.snapshot()["gauges"]["explore.last_run_states"] == len(
            graph.states
        )


class TestProfiling:
    def test_timer_observes_histogram(self):
        registry = MetricsRegistry()
        with timed(registry, "block"):
            pass
        assert registry.snapshot()["histograms"]["block"]["count"] == 1

    def test_timer_observes_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with timed(registry, "block"):
                raise ValueError("boom")
        assert registry.snapshot()["histograms"]["block"]["count"] == 1

    def test_timer_elapsed_is_nonnegative(self):
        registry = MetricsRegistry()
        with timed(registry, "block") as timer:
            pass
        assert isinstance(timer, Timer)
        assert timer.elapsed >= 0.0

    def test_profiled_decorator_records_calls(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:

            @profiled("work")
            def work(x):
                return x + 1

            assert work(1) == 2
            assert work(2) == 3
            assert default_registry() is registry
        finally:
            set_default_registry(previous)
        assert registry.snapshot()["histograms"]["work"]["count"] == 2

    def test_profiled_explicit_registry_and_default_name(self):
        registry = MetricsRegistry()

        @profiled(metrics=registry)
        def named():
            return 1

        named()
        histograms = registry.snapshot()["histograms"]
        assert len(histograms) == 1
        (name,) = histograms
        assert "named" in name
