"""Unit tests for the Prometheus and Chrome trace_event exporters."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    chrome_trace,
    prometheus_textfile,
    record_span,
    snapshot_from_trace,
    span,
    start_span,
    write_chrome_trace,
)


def traced_events():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with span(tracer, "outer", items=2):
        with span(tracer, "inner"):
            pass
    tracer.emit("phase", stage="lemma4")
    return sink.events()


class TestPrometheus:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("explore.states").inc(42)
        registry.gauge("engine.workers").set(2)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("round.seconds").observe(value)
        text = prometheus_textfile(registry.snapshot())
        assert "# TYPE repro_explore_states_total counter" in text
        assert "repro_explore_states_total 42" in text
        assert "repro_engine_workers 2" in text
        assert 'repro_round_seconds{quantile="0.5"}' in text
        assert "repro_round_seconds_count 3" in text
        assert text.endswith("\n")

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("engine.worker0.explore.states").inc()
        text = prometheus_textfile(registry.snapshot())
        assert "repro_engine_worker0_explore_states_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_textfile(MetricsRegistry().snapshot()) == ""

    def test_snapshot_from_trace(self):
        snapshot = snapshot_from_trace(traced_events())
        assert snapshot["counters"]["trace.events.span_start"] == 2
        assert snapshot["counters"]["trace.events.phase"] == 1
        assert snapshot["histograms"]["span.outer"]["count"] == 1
        text = prometheus_textfile(snapshot)
        assert "repro_trace_events_span_start_total 2" in text


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        document = chrome_trace(traced_events())
        assert document["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in document["traceEvents"]]
        assert phases.count("X") == 2
        assert phases.count("M") == 1  # one track: the coordinator
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_name = {event["name"]: event for event in complete}
        assert by_name["inner"]["args"]["parent"] == by_name["outer"]["args"]["span"]
        assert by_name["outer"]["args"]["items"] == 2
        assert all(event["ts"] >= 0 for event in complete)

    def test_open_spans_are_skipped(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        start_span(tracer, "never-closed")
        document = chrome_trace(sink.events())
        assert [e for e in document["traceEvents"] if e["ph"] == "X"] == []

    def test_processes_become_tracks(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        record_span(tracer, "a", 0.1)
        record_span(tracer, "b", 0.1, process="w1")
        document = chrome_trace(sink.events())
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert names == {"coordinator", "w1"}

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(traced_events(), path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert count == 3
