"""Integration tests: the three impossibility theorems, end to end.

Each test runs the complete adversary pipeline (Lemma 4 -> Fig. 3 hook
search -> Lemma 8 case analysis -> Lemma 6/7 constructive refutation)
against a candidate system of the appropriate service class, and checks
that the produced witness has exactly the shape the paper's proof
predicts.
"""

import pytest

from repro.analysis import (
    TerminationViolation,
    Valence,
    liveness_attack,
    refute_candidate,
)
from repro.protocols import (
    consensus_with_shared_fd_system,
    delegation_consensus_system,
    min_register_consensus_system,
    tob_delegation_system,
)
from repro.engine import Budget


class TestTheorem2:
    """Atomic objects: f-resilient services cannot give (f+1)-resilient
    consensus, for any connection pattern."""

    @pytest.mark.parametrize("n,f", [(2, 0), (3, 0), (3, 1), (4, 1)])
    def test_delegation_candidates_refuted(self, n, f):
        assert f < n - 1  # the theorem's hypothesis
        verdict = refute_candidate(
            delegation_consensus_system(n, resilience=f), budget=Budget(max_states=600_000)
        )
        assert verdict.refuted
        assert verdict.mechanism == "similarity-termination"
        refutation = verdict.refutation
        assert isinstance(refutation, TerminationViolation)
        # Exactly f + 1 victims, as in Lemmas 6-7.
        assert len(refutation.victims) == f + 1
        # The witness is an exact infinite fair execution, not a timeout.
        assert refutation.exact
        assert refutation.survivors

    def test_pipeline_stages_match_proof(self):
        verdict = refute_candidate(delegation_consensus_system(3, resilience=1))
        # Lemma 4: a bivalent initialization exists.
        assert verdict.lemma4.bivalent is not None
        # Lemma 5: the Fig. 3 construction found a hook.
        assert verdict.hook is not None
        assert verdict.hook.valence0 is not verdict.hook.valence1
        # Lemma 8: the hook's tasks share the consensus service, landing
        # in Claim 4.1, which yields a k-similar opposite-valence pair.
        assert verdict.lemma8.claim == "claim4.1-shared-service-internal"
        assert verdict.lemma8.violation.kind == "service"

    def test_flp_special_case_registers_only(self):
        """f = 0 (registers only) is the classical FLP setting: no
        1-resilient consensus from reliable registers."""
        system = min_register_consensus_system()
        root = system.initialization({0: 0, 1: 1}).final_state
        violation = liveness_attack(system, root, victims=[1], horizon=50_000)
        assert violation is not None and violation.exact
        assert violation.survivors == frozenset({0})

    def test_wait_free_services_are_out_of_scope(self):
        """With f = n - 1 the theorem's hypothesis f < n - 1 fails, and
        indeed the candidate survives the attack: the theorem is tight."""
        system = delegation_consensus_system(3, resilience=2)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        assert liveness_attack(system, root, victims=[0, 1]) is None


class TestTheorem9:
    """Failure-oblivious services: same impossibility."""

    @pytest.mark.parametrize("n,f", [(2, 0), (3, 1)])
    def test_tob_candidates_refuted(self, n, f):
        verdict = refute_candidate(
            tob_delegation_system(n, resilience=f), budget=Budget(max_states=900_000)
        )
        assert verdict.refuted
        assert isinstance(verdict.refutation, TerminationViolation)
        assert len(verdict.refutation.victims) == f + 1

    def test_hook_involves_the_oblivious_service(self):
        verdict = refute_candidate(
            tob_delegation_system(2, resilience=0), budget=Budget(max_states=400_000)
        )
        assert verdict.lemma8.violation.index == "tob"


class TestTheorem10:
    """Failure-aware services connected to ALL processes: same
    impossibility — f+1 failures can silence every failure-aware service."""

    @pytest.mark.parametrize("n,f", [(3, 0), (3, 1), (4, 1)])
    def test_shared_fd_candidates_blocked(self, n, f):
        assert f < n - 1
        system = consensus_with_shared_fd_system(n, fd_resilience=f)
        root = system.initialization(
            {i: i % 2 for i in range(n)}
        ).final_state
        victims = list(range(f + 1))
        violation = liveness_attack(
            system,
            root,
            victims=victims,
            horizon=200_000,
            failure_aware_services=["P"],
        )
        assert violation is not None
        assert violation.exact
        assert violation.survivors == frozenset(range(f + 1, n))

    def test_connectivity_assumption_is_necessary(self):
        """Drop the all-connected shape (pairwise FDs instead): the same
        attack FAILS — survivors decide.  This is the paper's Section 6.3
        demonstration that Theorem 10's extra hypothesis is required."""
        from repro.protocols import consensus_via_pairwise_fds_system

        system = consensus_via_pairwise_fds_system(3)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system, root, victims=[0, 1], horizon=200_000
        )
        assert violation is None  # the attack cannot block this system


class TestTheorem10MixedServices:
    """Theorem 10's full generality: K1 (failure-oblivious) and K2
    (failure-aware) services in one system, both silenced by f+1
    failures."""

    def test_mixed_candidate_blocked(self):
        from repro.protocols import mixed_service_system
        from repro.protocols.mixed_candidate import FD_ID

        system = mixed_service_system(3, resilience=1)
        root = system.initialization({0: 0, 1: 1, 2: 1}).final_state
        violation = liveness_attack(
            system,
            root,
            victims=[0, 1],
            horizon=200_000,
            failure_aware_services=[FD_ID],
        )
        assert violation is not None and violation.exact

    def test_mixed_candidate_works_within_budget(self):
        from repro.analysis import run_consensus_round
        from repro.protocols import mixed_service_system
        from repro.system import upfront_failures

        check = run_consensus_round(
            mixed_service_system(3, resilience=1),
            {0: 0, 1: 1, 2: 1},
            failure_schedule=upfront_failures([2]),
        )
        assert check.ok, check.violations
