"""Appendix B / Theorem 11: the operational consensus definition implies
the axiomatic one.

The paper's consensus spec is "implement the canonical f-resilient
consensus object"; Theorem 11 shows every execution of that object
satisfies agreement, validity, and modified termination.  We verify this
by (a) exhaustively checking the safety axioms over every bounded
behavior of small delegation systems (which ARE the canonical object
plus forwarding processes), including failure branches, and (b) checking
modified termination over fair runs with every failure pattern within
the resilience bound.
"""

import pytest

from repro.analysis import (
    exhaustive_safety_check,
    run_consensus_round,
)
from repro.protocols import delegation_consensus_system
from repro.system import all_failure_sets, upfront_failures


class TestAgreementAndValidityExhaustive:
    @pytest.mark.parametrize(
        "proposals",
        [{0: 0, 1: 0}, {0: 0, 1: 1}, {0: 1, 1: 0}, {0: 1, 1: 1}],
    )
    def test_two_process_object_all_inputs(self, proposals):
        result = exhaustive_safety_check(
            delegation_consensus_system(2, resilience=1), proposals
        )
        assert result.ok
        assert result.states_visited > 0

    def test_two_process_object_with_failure_branching(self):
        result = exhaustive_safety_check(
            delegation_consensus_system(2, resilience=1),
            {0: 0, 1: 1},
            failure_choices=(0, 1),
            max_states=500_000,
        )
        assert result.ok

    def test_three_process_object(self):
        result = exhaustive_safety_check(
            delegation_consensus_system(3, resilience=2),
            {0: 0, 1: 1, 2: 0},
            max_states=500_000,
        )
        assert result.ok


class TestModifiedTermination:
    def test_every_failure_pattern_within_resilience(self):
        # f = 1, n = 3: every 0- or 1-failure pattern must terminate for
        # the nonfaulty inited processes.
        for count in (0, 1):
            for victims in all_failure_sets(range(3), exactly=count):
                check = run_consensus_round(
                    delegation_consensus_system(3, resilience=1),
                    {0: 1, 1: 0, 2: 1},
                    failure_schedule=upfront_failures(sorted(victims)),
                )
                assert check.ok, (victims, check.violations)

    def test_wait_free_object_terminates_under_any_failures(self):
        for count in range(3):
            for victims in all_failure_sets(range(3), exactly=count):
                check = run_consensus_round(
                    delegation_consensus_system(3, resilience=2),
                    {0: 1, 1: 0, 2: 1},
                    failure_schedule=upfront_failures(sorted(victims)),
                )
                assert check.ok, (victims, check.violations)

    def test_decisions_are_first_performed_value(self):
        # The canonical object's value semantics: the first performed
        # init fixes the decision for everyone.
        check = run_consensus_round(
            delegation_consensus_system(3, resilience=2), {0: 1, 1: 1, 2: 1}
        )
        assert set(check.decisions.values()) == {1}
