"""Integration tests: the paper's two possibility (boosting) results."""

import pytest

from repro.analysis import run_consensus_round
from repro.protocols import (
    classic_parameters,
    consensus_via_pairwise_fds_system,
    kset_boost_system,
)
from repro.system import all_failure_sets, upfront_failures


class TestSection4Boost:
    """Wait-free 2n-process 2-set-consensus from wait-free n-process
    consensus: resilience IS boosted (f' = n/2 - 1 < f = n - 1)."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_wait_freedom_under_every_single_survivor_pattern(self, n):
        params = classic_parameters(n)
        proposals = {e: e for e in range(n)}
        for survivor in range(n):
            victims = [e for e in range(n) if e != survivor]
            check = run_consensus_round(
                kset_boost_system(params),
                proposals,
                failure_schedule=upfront_failures(victims),
                k=2,
                max_steps=60_000,
            )
            assert check.ok, (n, survivor, check.violations)

    def test_exhaustive_failure_sets_n4(self):
        params = classic_parameters(4)
        proposals = {0: 0, 1: 1, 2: 2, 3: 3}
        for count in range(4):
            for victims in all_failure_sets(range(4), exactly=count):
                check = run_consensus_round(
                    kset_boost_system(params),
                    proposals,
                    failure_schedule=upfront_failures(sorted(victims)),
                    k=2,
                    max_steps=60_000,
                )
                assert check.ok, (victims, check.violations)

    def test_decisions_bounded_by_k_over_many_schedules(self):
        params = classic_parameters(4)
        for seed in range(20):
            check = run_consensus_round(
                kset_boost_system(params),
                {0: 0, 1: 1, 2: 2, 3: 3},
                seed=seed,
                k=2,
            )
            assert check.ok
            assert len(set(check.decisions.values())) <= 2


class TestSection63Boost:
    """Consensus for ANY number of failures from 1-resilient 2-process
    perfect failure detectors: the connectivity loophole of Theorem 10."""

    def test_all_failure_patterns_n3(self):
        for count in range(3):  # 0, 1, 2 failures out of 3
            for victims in all_failure_sets(range(3), exactly=count):
                check = run_consensus_round(
                    consensus_via_pairwise_fds_system(3),
                    {0: 0, 1: 1, 2: 1},
                    failure_schedule=upfront_failures(sorted(victims)),
                    max_steps=80_000,
                )
                assert check.ok, (victims, check.violations)

    def test_four_processes_three_failures(self):
        check = run_consensus_round(
            consensus_via_pairwise_fds_system(4),
            {0: 1, 1: 0, 2: 0, 3: 1},
            failure_schedule=upfront_failures([0, 2, 3]),
            max_steps=150_000,
        )
        assert check.ok, check.violations
        assert 1 in check.decisions

    def test_agreement_never_violated_across_seeds(self):
        from repro.system import random_failures

        for seed in range(15):
            schedule = random_failures(
                range(3), max_failures=2, horizon=500, seed=seed
            )
            check = run_consensus_round(
                consensus_via_pairwise_fds_system(3),
                {0: 0, 1: 1, 2: 0},
                failure_schedule=schedule,
                seed=seed,
                max_steps=80_000,
            )
            assert all(
                v.axiom not in ("agreement", "validity") for v in check.violations
            ), (seed, check.violations)
            assert check.ok, (seed, check.violations)


class TestWeakerProblemsDodgeTheTheorem:
    """Section 4's framing: "our results do not apply to some problems
    that are weaker than consensus, such as k-set-consensus."  The very
    attacks that kill the consensus candidates bounce off the Section 4
    system when judged as a 2-set-consensus solver."""

    def test_lemma7_style_attack_fails_on_kset_boost(self):
        from repro.analysis import liveness_attack

        params = classic_parameters(4)
        system = kset_boost_system(params)
        root = system.initialization({0: 0, 1: 1, 2: 2, 3: 3}).final_state
        # Fail one whole group's endpoints (the harshest Lemma 7 shape):
        # the OTHER group's wait-free service keeps serving, so its
        # members decide and the attack cannot certify a violation.
        violation = liveness_attack(system, root, victims=[0, 1], horizon=100_000)
        assert violation is None

    def test_every_two_victim_attack_fails(self):
        from repro.analysis import liveness_attack

        params = classic_parameters(4)
        for victims in all_failure_sets(range(4), exactly=2):
            system = kset_boost_system(params)
            root = system.initialization(
                {0: 0, 1: 1, 2: 2, 3: 3}
            ).final_state
            violation = liveness_attack(
                system, root, victims=sorted(victims), horizon=100_000
            )
            assert violation is None, victims

    def test_three_victim_attack_also_fails(self):
        # Even n - 1 = 3 failures: wait-freedom of the boosted system.
        from repro.analysis import liveness_attack

        params = classic_parameters(4)
        system = kset_boost_system(params)
        root = system.initialization({0: 0, 1: 1, 2: 2, 3: 3}).final_state
        violation = liveness_attack(
            system, root, victims=[0, 1, 2], horizon=100_000
        )
        assert violation is None
